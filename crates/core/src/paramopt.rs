//! Section 4.3: choosing FedProxVR's parameters to minimise training time.
//!
//! Problem (23) minimises
//!
//! ```text
//! f(β, μ) = (1/Θ) (1 + γ (5β² − 4β)/8)
//! ```
//!
//! over β > 3 and μ with Θ > 0, where θ² is eliminated via eq. (22) and
//! `γ = d_cmp / d_com` is the compute/communication weight factor. The
//! problem is non-convex but two-dimensional, so (as the paper notes) a
//! numerical method finds the global optimum: a dense log-grid scan
//! followed by Nelder–Mead refinement in an unconstrained
//! reparameterisation `(log(β − 3), log(μ − λ))`.

use crate::theory::{federated_factor, Lemma1, TheoryParams};
use serde::{Deserialize, Serialize};

/// The optimum of problem (23) for one γ.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimalParams {
    /// Weight factor γ = d_cmp / d_com this solution corresponds to.
    pub gamma: f64,
    /// Optimal step-size parameter β*.
    pub beta: f64,
    /// Optimal proximal penalty μ*.
    pub mu: f64,
    /// Implied local accuracy θ (eq. (22)).
    pub theta: f64,
    /// Implied local iterations τ (eq. (16)).
    pub tau: f64,
    /// The federated factor Θ at the optimum.
    pub capital_theta: f64,
    /// Objective value (relative training time, up to the Δ/ε scale).
    pub objective: f64,
}

/// Evaluate the objective of problem (23); `None` when infeasible
/// (β ≤ 3, μ̃ ≤ 0, θ ∉ (0,1), or Θ ≤ 0).
pub fn objective(
    base: &TheoryParams,
    gamma: f64,
    beta: f64,
    mu: f64,
) -> Option<(f64, f64, f64)> {
    let p = TheoryParams { mu, ..*base };
    let theta_sq = Lemma1::theta_sq_at_upper(&p, beta)?;
    if !(0.0..1.0).contains(&theta_sq) {
        return None;
    }
    let theta = theta_sq.sqrt();
    let cap = federated_factor(&p, theta);
    if cap <= 0.0 {
        return None;
    }
    let tau_term = (5.0 * beta * beta - 4.0 * beta) / 8.0;
    Some(((1.0 + gamma * tau_term) / cap, theta, cap))
}

/// Solve problem (23) for one γ. `base.mu` is ignored (μ is a decision
/// variable); `base.lambda`, `base.smoothness`, `base.sigma_bar_sq` are
/// the problem constants.
pub fn solve(base: &TheoryParams, gamma: f64) -> Option<OptimalParams> {
    // Coarse log-grid scan.
    let beta_grid = log_grid(3.0 + 1e-3, 3.0, 2000.0, 80);
    let mu_grid = log_grid(base.lambda + 1e-3, base.lambda, 500.0, 80);
    let mut best: Option<(f64, f64, f64)> = None; // (obj, beta, mu)
    for &beta in &beta_grid {
        for &mu in &mu_grid {
            if let Some((obj, _, _)) = objective(base, gamma, beta, mu) {
                if best.is_none_or(|(b, _, _)| obj < b) {
                    best = Some((obj, beta, mu));
                }
            }
        }
    }
    let (_, b0, m0) = best?;

    // Nelder–Mead in (x, y) = (ln(β−3), ln(μ−λ)).
    let f = |x: f64, y: f64| -> f64 {
        let beta = 3.0 + x.exp();
        let mu = base.lambda + y.exp();
        objective(base, gamma, beta, mu).map_or(f64::INFINITY, |(o, _, _)| o)
    };
    let (x, y) = nelder_mead_2d(f, (b0 - 3.0).ln(), (m0 - base.lambda).ln(), 0.3, 400);
    let beta = 3.0 + x.exp();
    let mu = base.lambda + y.exp();
    let (obj, theta, cap) = objective(base, gamma, beta, mu)?;
    Some(OptimalParams {
        gamma,
        beta,
        mu,
        theta,
        tau: Lemma1::tau_upper_sarah(beta),
        capital_theta: cap,
        objective: obj,
    })
}

/// Sweep γ over `gammas` (Fig. 1's x-axis).
pub fn sweep(base: &TheoryParams, gammas: &[f64]) -> Vec<Option<OptimalParams>> {
    gammas.iter().map(|&g| solve(base, g)).collect()
}

/// Log-spaced grid of offsets above `anchor`, from `lo` to `anchor + span`.
fn log_grid(lo: f64, anchor: f64, span: f64, points: usize) -> Vec<f64> {
    let start = (lo - anchor).max(1e-9).ln();
    let end = span.ln();
    (0..points)
        .map(|i| {
            let t = i as f64 / (points - 1) as f64;
            anchor + (start + t * (end - start)).exp()
        })
        .collect()
}

/// Minimal 2-D Nelder–Mead; returns the best vertex after `iters`
/// iterations. `scale` sets the initial simplex edge.
fn nelder_mead_2d(
    f: impl Fn(f64, f64) -> f64,
    x0: f64,
    y0: f64,
    scale: f64,
    iters: usize,
) -> (f64, f64) {
    let mut simplex = [
        (x0, y0, f(x0, y0)),
        (x0 + scale, y0, f(x0 + scale, y0)),
        (x0, y0 + scale, f(x0, y0 + scale)),
    ];
    for _ in 0..iters {
        simplex.sort_by(|a, b| a.2.total_cmp(&b.2));
        // Destructure the sorted 3-simplex: best, second, worst.
        let [best, second, worst] = &mut simplex;
        let (bx, by, bf) = *best;
        let (sx, sy, sf) = *second;
        let (wx, wy, wf) = *worst;
        // Centroid of the two best.
        let cx = 0.5 * (bx + sx);
        let cy = 0.5 * (by + sy);
        // Reflection.
        let rx = cx + (cx - wx);
        let ry = cy + (cy - wy);
        let rf = f(rx, ry);
        if rf < bf {
            // Expansion.
            let ex = cx + 2.0 * (cx - wx);
            let ey = cy + 2.0 * (cy - wy);
            let ef = f(ex, ey);
            *worst = if ef < rf { (ex, ey, ef) } else { (rx, ry, rf) };
        } else if rf < sf {
            *worst = (rx, ry, rf);
        } else {
            // Contraction.
            let kx = cx + 0.5 * (wx - cx);
            let ky = cy + 0.5 * (wy - cy);
            let kf = f(kx, ky);
            if kf < wf {
                *worst = (kx, ky, kf);
            } else {
                // Shrink toward the best.
                for v in [&mut *second, &mut *worst] {
                    v.0 = bx + 0.5 * (v.0 - bx);
                    v.1 = by + 0.5 * (v.1 - by);
                    v.2 = f(v.0, v.1);
                }
            }
        }
        // Converged?
        let spread = (worst.2 - best.2).abs();
        if spread < 1e-12 * (1.0 + best.2.abs()) {
            break;
        }
    }
    simplex.sort_by(|a, b| a.2.total_cmp(&b.2));
    let [(x, y, _), _, _] = simplex;
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(sigma_sq: f64) -> TheoryParams {
        TheoryParams { smoothness: 1.0, lambda: 0.5, mu: f64::NAN, sigma_bar_sq: sigma_sq }
    }

    #[test]
    fn objective_infeasible_cases() {
        let b = base(1.0);
        assert!(objective(&b, 0.01, 2.0, 5.0).is_none()); // β ≤ 3
        assert!(objective(&b, 0.01, 10.0, 0.4).is_none()); // μ̃ ≤ 0
    }

    #[test]
    fn solve_finds_feasible_optimum() {
        let o = solve(&base(1.0), 1e-3).expect("optimum exists");
        assert!(o.beta > 3.0);
        assert!(o.mu > 0.5);
        assert!(o.capital_theta > 0.0);
        assert!((0.0..1.0).contains(&o.theta));
        assert!(o.objective.is_finite() && o.objective > 0.0);
        // τ matches eq. (16).
        assert!((o.tau - Lemma1::tau_upper_sarah(o.beta)).abs() < 1e-9);
    }

    #[test]
    fn small_gamma_prefers_large_beta() {
        // Fig. 1 observation: expensive communication (small γ) ⇒ large
        // optimal β and τ; cheap communication ⇒ small β.
        let cheap_comm = solve(&base(1.0), 1.0).unwrap();
        let dear_comm = solve(&base(1.0), 1e-4).unwrap();
        assert!(
            dear_comm.beta > 2.0 * cheap_comm.beta,
            "γ=1e-4 β={} vs γ=1 β={}",
            dear_comm.beta,
            cheap_comm.beta
        );
        assert!(dear_comm.tau > cheap_comm.tau);
    }

    #[test]
    fn heterogeneity_decreases_theta_and_factor() {
        // Fig. 1 observation: larger σ̄² ⇒ smaller θ* and smaller Θ*.
        let lo = solve(&base(0.1), 1e-2).unwrap();
        let hi = solve(&base(10.0), 1e-2).unwrap();
        assert!(hi.theta < lo.theta, "θ: {} vs {}", hi.theta, lo.theta);
        assert!(hi.capital_theta < lo.capital_theta);
    }

    #[test]
    fn refinement_not_worse_than_grid() {
        // The Nelder–Mead step must never return something worse than a
        // fresh grid scan at moderate resolution.
        let b = base(1.0);
        let gamma = 5e-3;
        let o = solve(&b, gamma).unwrap();
        let mut best_grid = f64::INFINITY;
        for i in 0..60 {
            for j in 0..60 {
                let beta = 3.0 + 0.2 * ((i as f64 / 59.0) * 8.0).exp();
                let mu = 0.5 + 0.05 * ((j as f64 / 59.0) * 8.0).exp();
                if let Some((v, _, _)) = objective(&b, gamma, beta, mu) {
                    best_grid = best_grid.min(v);
                }
            }
        }
        assert!(o.objective <= best_grid * 1.01, "{} vs grid {}", o.objective, best_grid);
    }

    #[test]
    fn sweep_matches_individual_solves() {
        let b = base(1.0);
        let gs = [1e-3, 1e-2];
        let s = sweep(&b, &gs);
        assert_eq!(s.len(), 2);
        let o0 = solve(&b, 1e-3).unwrap();
        assert!((s[0].unwrap().objective - o0.objective).abs() < 1e-9);
    }

    #[test]
    fn nelder_mead_minimises_quadratic() {
        let (x, y) = nelder_mead_2d(|x, y| (x - 2.0).powi(2) + (y + 1.0).powi(2), 0.0, 0.0, 0.5, 300);
        assert!((x - 2.0).abs() < 1e-4);
        assert!((y + 1.0).abs() < 1e-4);
    }
}
