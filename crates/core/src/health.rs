//! Online algorithm-health monitoring — the data source behind `fedscope`.
//!
//! A [`HealthMonitor`] sits beside the training loop in armed-telemetry
//! runs, assembles one [`Event::Health`] sample per evaluated round, and
//! raises typed [`Event::Anomaly`] records when the trajectory violates
//! what the paper's theory predicts:
//!
//! * **θ-violation** — the measured local accuracy ratio of criterion
//!   (11) exceeds Remark 2(1)'s admissible ceiling `θ_max(σ̄²)`,
//! * **VR-ineffective** — the SVRG/SARAH direction second moment is not
//!   shrinking relative to its full-gradient anchor, so variance
//!   reduction is buying nothing,
//! * **starvation** — a participating device contributed almost no
//!   gradient work relative to the round's busiest device,
//! * **non-finite / loss-guard** — the trainer's existing divergence
//!   checks, forwarded here so the trace carries the *cause*.
//!
//! The monitor follows the fedtrace observability rules: it only reads
//! quantities the trainer already computed (plus direction-norm probes
//! that never touch the training state), so an armed run stays
//! bitwise-identical to a disarmed one in its training outputs. The
//! module itself is always compiled — arming is the caller's decision —
//! which keeps its logic unit-testable without cargo features.

use crate::algorithm::Algorithm;
use crate::config::FedConfig;
use crate::theory::{self, Lemma1, TheoryParams};
use fedprox_optim::{DirectionStats, EstimatorKind};
use fedprox_telemetry::event::{AnomalyRule, Event};

/// Thresholds and theory context for the anomaly rules.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Lemma 1 lower edge on θ for the configured τ (inverse of
    /// eq. (55)); `None` when β ≤ 3 or μ̃ ≤ 0.
    pub theta_lo: Option<f64>,
    /// Remark 2(1) ceiling `θ_max(σ̄²)`; `None` when σ̄² was unmeasurable.
    pub theta_hi: Option<f64>,
    /// Problem constants for the Theorem 1 envelope, when known.
    pub theory: Option<TheoryParams>,
    /// Whether the run uses a variance-reduced estimator (enables the
    /// VR-ineffective rule).
    pub vr_active: bool,
    /// VR-ineffective fires when `mean ‖v‖² / mean ‖v⁰‖²` exceeds this.
    pub vr_ratio_limit: f64,
    /// Starvation fires for a device whose per-round gradient work falls
    /// below this share of the round's maximum.
    pub starvation_share: f64,
    /// Participation-gap floor on the per-round responder fraction;
    /// `None` (non-resilient runs) disables the rule.
    pub participation_floor: Option<f64>,
    /// Consecutive rounds the responder fraction must stay below the
    /// floor before the participation-gap rule fires (once per run).
    pub participation_window: usize,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            theta_lo: None,
            theta_hi: None,
            theory: None,
            vr_active: false,
            vr_ratio_limit: 16.0,
            starvation_share: 0.1,
            participation_floor: None,
            participation_window: 3,
        }
    }
}

impl HealthConfig {
    /// Derive a config from a run's [`FedConfig`] and the empirical σ̄²
    /// measured at the initial model (when measurable). The bounded
    /// non-convexity constant λ is unobservable at runtime, so the
    /// theory context optimistically uses λ = 0 (i.e. μ̃ = μ): the
    /// resulting θ-range is a *necessary* condition, never a spuriously
    /// strict one.
    pub fn from_run(cfg: &FedConfig, sigma_bar_sq: Option<f64>) -> Self {
        let vr_active = matches!(
            cfg.algorithm,
            Algorithm::Fsvrg
                | Algorithm::FedProxVr(EstimatorKind::Svrg)
                | Algorithm::FedProxVr(EstimatorKind::Sarah)
        );
        let theory = sigma_bar_sq.map(|s| TheoryParams {
            smoothness: cfg.smoothness,
            lambda: 0.0,
            mu: cfg.mu,
            sigma_bar_sq: s,
        });
        let theta_lo =
            theory.as_ref().and_then(|p| Lemma1::theta_min_for_tau(p, cfg.beta, cfg.tau));
        let theta_hi = sigma_bar_sq.map(theory::theta_max);
        // Resilient runs watch for sustained participation shortfalls
        // just above where the quorum policy would start skipping
        // rounds: a quorum-adjacent floor, never below half the fleet.
        let participation_floor = cfg
            .resilience
            .as_ref()
            .map(|r| (1.25 * r.quorum.min_weight).clamp(0.5, 1.0));
        HealthConfig {
            theta_lo,
            theta_hi,
            theory,
            vr_active,
            participation_floor,
            ..Default::default()
        }
    }
}

/// Clamp a possibly non-finite measurement so the JSONL encoding (which
/// maps non-finite floats to `null`) never loses an anomaly's value.
fn clamp_finite(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        f64::MAX
    }
}

/// Assembles health samples and evaluates anomaly rules over one run.
#[derive(Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    samples: Vec<Event>,
    anomalies: Vec<Event>,
    pending_dir: DirectionStats,
    prev_loss: Option<f64>,
    delta0: Option<f64>,
    theta_ref: Option<f64>,
    gap_streak: usize,
    gap_fired: bool,
}

impl HealthMonitor {
    /// A monitor with the given rule configuration.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            samples: Vec::new(),
            anomalies: Vec::new(),
            pending_dir: DirectionStats::default(),
            prev_loss: None,
            delta0: None,
            theta_ref: None,
            gap_streak: 0,
            gap_fired: false,
        }
    }

    /// Feed per-round observations that exist whether or not the round
    /// is evaluated: the merged estimator direction statistics of the
    /// round's local solves and each participant's gradient-work count.
    /// Direction statistics accumulate until the next
    /// [`HealthMonitor::observe_eval`] drains them; the starvation rule
    /// fires immediately (it needs no evaluation).
    pub fn note_round(&mut self, round: usize, dir: &DirectionStats, device_evals: &[(usize, u64)]) {
        self.pending_dir.merge(dir);
        let max = device_evals.iter().map(|&(_, e)| e).max().unwrap_or(0);
        if max == 0 {
            return;
        }
        let floor = self.cfg.starvation_share * max as f64;
        for &(id, evals) in device_evals {
            if (evals as f64) < floor {
                self.anomalies.push(Event::Anomaly {
                    round: round as u32,
                    rule: AnomalyRule::Starvation,
                    device: Some(id as u32),
                    value: evals as f64,
                    limit: floor,
                });
            }
        }
    }

    /// Record an evaluated round: emits one [`Event::Health`] sample
    /// (draining the pending direction statistics) and runs the
    /// θ-violation and VR-ineffective rules. Rounds whose loss or gap is
    /// non-finite produce no sample — the trainer's divergence guards
    /// report those through [`HealthMonitor::observe_loss_guard`] /
    /// [`HealthMonitor::observe_non_finite`] instead.
    pub fn observe_eval(
        &mut self,
        round: usize,
        train_loss: f64,
        grad_norm_sq: f64,
        theta: Option<f64>,
    ) {
        if !train_loss.is_finite() || !grad_norm_sq.is_finite() {
            return;
        }
        let dir = std::mem::take(&mut self.pending_dir);
        let loss_delta = self.prev_loss.map_or(0.0, |p| train_loss - p);
        self.prev_loss = Some(train_loss);
        if self.delta0.is_none() {
            // Δ(w̄⁰) of Corollary 1 is F̄(w̄⁰) − F̄*; with non-negative
            // losses the initial loss itself is a usable upper proxy.
            self.delta0 = Some(train_loss);
        }
        if self.theta_ref.is_none() {
            self.theta_ref = theta;
        }

        if let (Some(t), Some(hi)) = (theta, self.cfg.theta_hi) {
            if t > hi {
                self.anomalies.push(Event::Anomaly {
                    round: round as u32,
                    rule: AnomalyRule::ThetaViolation,
                    device: None,
                    value: clamp_finite(t),
                    limit: hi,
                });
            }
        }

        let anchor_mean = if dir.solves > 0 { dir.anchor_sq / dir.solves as f64 } else { 0.0 };
        if self.cfg.vr_active && dir.steps >= 2 && anchor_mean > 0.0 && anchor_mean.is_finite() {
            let ratio = dir.mean_sq / anchor_mean;
            if ratio > self.cfg.vr_ratio_limit {
                self.anomalies.push(Event::Anomaly {
                    round: round as u32,
                    rule: AnomalyRule::VrIneffective,
                    device: None,
                    value: clamp_finite(ratio),
                    limit: self.cfg.vr_ratio_limit,
                });
            }
        }

        // Theorem 1 envelope: Δ/(Θ·t), using the first measured θ (or
        // the admissible ceiling when θ was never measured).
        let bound = if round >= 1 {
            let theta_for_bound = self.theta_ref.or(self.cfg.theta_hi);
            match (&self.cfg.theory, theta_for_bound, self.delta0) {
                (Some(p), Some(t), Some(d0)) => {
                    let cap_theta = theory::federated_factor(p, t);
                    if cap_theta > 0.0 {
                        theory::stationarity_bound(d0, cap_theta, round)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        } else {
            None
        };

        self.samples.push(Event::Health {
            round: round as u32,
            train_loss,
            loss_delta,
            grad_norm_sq,
            theta,
            theta_lo: self.cfg.theta_lo,
            theta_hi: self.cfg.theta_hi,
            bound,
            dir_mean_sq: dir.mean_sq,
            dir_m2: dir.m2_sq,
            dir_anchor_sq: anchor_mean,
            dir_steps: dir.steps,
            skew: None,
        });
    }

    /// Feed one round's responder fraction (resilient runs only; local
    /// backends call this as rounds finish, the networked backend
    /// backfills from the runtime's participation records). The
    /// participation-gap rule fires once per run, when the fraction has
    /// stayed below the configured floor for `participation_window`
    /// consecutive rounds.
    pub fn note_participation(&mut self, round: usize, fraction: f64) {
        let Some(floor) = self.cfg.participation_floor else {
            return;
        };
        if fraction < floor {
            self.gap_streak += 1;
            if !self.gap_fired && self.gap_streak >= self.cfg.participation_window.max(1) {
                self.gap_fired = true;
                self.anomalies.push(Event::Anomaly {
                    round: round as u32,
                    rule: AnomalyRule::ParticipationGap,
                    device: None,
                    value: clamp_finite(fraction),
                    limit: floor,
                });
            }
        } else {
            self.gap_streak = 0;
        }
    }

    /// Forward the trainer's non-finite-parameters divergence check.
    pub fn observe_non_finite(&mut self, round: usize, device: Option<usize>) {
        self.anomalies.push(Event::Anomaly {
            round: round as u32,
            rule: AnomalyRule::NonFinite,
            device: device.map(|d| d as u32),
            value: f64::MAX,
            limit: f64::MAX,
        });
    }

    /// Forward the trainer's loss-guard divergence check.
    pub fn observe_loss_guard(&mut self, round: usize, loss: f64, guard: f64) {
        self.anomalies.push(Event::Anomaly {
            round: round as u32,
            rule: AnomalyRule::LossGuard,
            device: None,
            value: clamp_finite(loss),
            limit: guard,
        });
    }

    /// Backfill per-round straggler skew (slowest finish over median
    /// finish, minus one) from the networked backend's report; local
    /// backends never call this, leaving `skew` as `None`.
    pub fn set_skews(&mut self, skews: &[f64]) {
        for s in &mut self.samples {
            if let Event::Health { round, skew, .. } = s {
                let r = *round as usize;
                if let Some(&sk) = r.checked_sub(1).and_then(|i| skews.get(i)) {
                    *skew = Some(sk);
                }
            }
        }
    }

    /// Number of health samples assembled so far.
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }

    /// Number of anomalies raised so far.
    pub fn anomaly_count(&self) -> usize {
        self.anomalies.len()
    }

    /// Consume the monitor, yielding samples then anomalies (readers
    /// re-sort by round, so the relative order is immaterial).
    pub fn into_events(self) -> Vec<Event> {
        let mut out = self.samples;
        out.extend(self.anomalies);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule_rounds(events: &[Event], rule: AnomalyRule) -> Vec<u32> {
        events
            .iter()
            .filter_map(|e| match e {
                Event::Anomaly { round, rule: r, .. } if *r == rule => Some(*round),
                _ => None,
            })
            .collect()
    }

    fn dirs(steps: u64, mean_sq: f64, anchor_sq: f64) -> DirectionStats {
        DirectionStats { solves: 1, steps, mean_sq, m2_sq: 0.0, anchor_sq }
    }

    #[test]
    fn theta_violation_fires_only_above_ceiling() {
        let cfg = HealthConfig { theta_hi: Some(0.5), ..Default::default() };
        let mut m = HealthMonitor::new(cfg);
        m.observe_eval(1, 1.0, 0.5, Some(0.4));
        m.observe_eval(2, 0.9, 0.4, Some(0.8));
        m.observe_eval(3, 0.8, 0.3, None); // unmeasured θ cannot fire
        let events = m.into_events();
        assert_eq!(rule_rounds(&events, AnomalyRule::ThetaViolation), vec![2]);
    }

    #[test]
    fn vr_ineffective_needs_vr_and_bad_ratio() {
        let fire = |vr_active: bool, mean_sq: f64| -> usize {
            let cfg = HealthConfig { vr_active, vr_ratio_limit: 4.0, ..Default::default() };
            let mut m = HealthMonitor::new(cfg);
            m.note_round(1, &dirs(10, mean_sq, 1.0), &[]);
            m.observe_eval(1, 1.0, 0.5, None);
            rule_rounds(&m.into_events(), AnomalyRule::VrIneffective).len()
        };
        assert_eq!(fire(true, 100.0), 1);
        assert_eq!(fire(true, 2.0), 0); // ratio under the limit
        assert_eq!(fire(false, 100.0), 0); // plain SGD: rule disabled
    }

    #[test]
    fn starvation_attributes_the_idle_device() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.note_round(3, &DirectionStats::default(), &[(0, 1000), (1, 20), (2, 980)]);
        let events = m.into_events();
        assert_eq!(rule_rounds(&events, AnomalyRule::Starvation), vec![3]);
        match &events[0] {
            Event::Anomaly { device, value, limit, .. } => {
                assert_eq!(*device, Some(1));
                assert_eq!(*value, 20.0);
                assert!((limit - 100.0).abs() < 1e-12);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn divergence_forwards_are_clamped_finite() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe_loss_guard(5, f64::INFINITY, 1e9);
        m.observe_non_finite(6, Some(2));
        let events = m.into_events();
        assert_eq!(rule_rounds(&events, AnomalyRule::LossGuard), vec![5]);
        assert_eq!(rule_rounds(&events, AnomalyRule::NonFinite), vec![6]);
        for e in &events {
            if let Event::Anomaly { value, limit, .. } = e {
                assert!(value.is_finite() && limit.is_finite());
            }
        }
    }

    #[test]
    fn samples_carry_deltas_dirs_and_backfilled_skew() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe_eval(0, 2.0, 1.0, None);
        m.note_round(1, &dirs(4, 3.0, 2.0), &[]);
        m.observe_eval(1, 1.5, 0.8, None);
        m.observe_eval(2, 1.6, 0.9, None);
        assert_eq!(m.sample_count(), 3);
        assert_eq!(m.anomaly_count(), 0);
        m.set_skews(&[0.25, 0.5]);
        let events = m.into_events();
        match &events[1] {
            Event::Health { loss_delta, dir_mean_sq, dir_anchor_sq, dir_steps, skew, .. } => {
                assert!((loss_delta + 0.5).abs() < 1e-12);
                assert_eq!(*dir_mean_sq, 3.0);
                assert_eq!(*dir_anchor_sq, 2.0);
                assert_eq!(*dir_steps, 4);
                assert_eq!(*skew, Some(0.25));
            }
            other => panic!("unexpected event {other:?}"),
        }
        match &events[2] {
            Event::Health { loss_delta, dir_steps, skew, .. } => {
                // Pending dirs were drained by the previous sample.
                assert!((loss_delta - 0.1).abs() < 1e-12);
                assert_eq!(*dir_steps, 0);
                assert_eq!(*skew, Some(0.5));
            }
            other => panic!("unexpected event {other:?}"),
        }
        // Round 0 never gets a skew (no transfers happened yet).
        match &events[0] {
            Event::Health { skew, .. } => assert_eq!(*skew, None),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn non_finite_evals_produce_no_sample() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe_eval(1, f64::INFINITY, 0.5, None);
        m.observe_eval(2, 1.0, f64::NAN, None);
        assert_eq!(m.sample_count(), 0);
    }

    #[test]
    fn theorem1_bound_present_and_decaying_for_good_params() {
        let theory = TheoryParams { smoothness: 1.0, lambda: 0.0, mu: 60.0, sigma_bar_sq: 0.1 };
        let cfg = HealthConfig {
            theory: Some(theory),
            theta_hi: Some(theory::theta_max(0.1)),
            ..Default::default()
        };
        let mut m = HealthMonitor::new(cfg);
        m.observe_eval(0, 2.0, 1.0, Some(0.01));
        m.observe_eval(1, 1.5, 0.8, Some(0.01));
        m.observe_eval(2, 1.2, 0.6, Some(0.01));
        let events = m.into_events();
        let bounds: Vec<Option<f64>> = events
            .iter()
            .filter_map(|e| match e {
                Event::Health { bound, .. } => Some(*bound),
                _ => None,
            })
            .collect();
        assert_eq!(bounds[0], None); // round 0: no iterations yet
        let b1 = bounds[1].expect("bound at round 1");
        let b2 = bounds[2].expect("bound at round 2");
        assert!(b1 > 0.0 && b2 > 0.0 && b2 < b1, "envelope must decay: {b1} vs {b2}");
        // Θ ≤ 0 (μ̃ too small) ⇒ no bound rather than a bogus one.
        let bad = TheoryParams { smoothness: 1.0, lambda: 0.0, mu: 0.6, sigma_bar_sq: 0.1 };
        let mut m2 = HealthMonitor::new(HealthConfig {
            theory: Some(bad),
            theta_hi: Some(theory::theta_max(0.1)),
            ..Default::default()
        });
        m2.observe_eval(0, 2.0, 1.0, Some(0.5));
        m2.observe_eval(1, 1.5, 0.8, Some(0.5));
        let events2 = m2.into_events();
        for e in &events2 {
            if let Event::Health { bound, .. } = e {
                assert_eq!(*bound, None);
            }
        }
    }

    #[test]
    fn participation_gap_needs_a_sustained_shortfall() {
        let cfg = HealthConfig {
            participation_floor: Some(0.75),
            participation_window: 3,
            ..Default::default()
        };
        let mut m = HealthMonitor::new(cfg);
        // Two short dips separated by a recovery: streak resets, no fire.
        m.note_participation(1, 0.5);
        m.note_participation(2, 0.5);
        m.note_participation(3, 1.0);
        m.note_participation(4, 0.5);
        m.note_participation(5, 0.5);
        assert_eq!(m.anomaly_count(), 0);
        // Third consecutive round below the floor fires, exactly once.
        m.note_participation(6, 0.25);
        m.note_participation(7, 0.25);
        assert_eq!(m.anomaly_count(), 1);
        let events = m.into_events();
        assert_eq!(rule_rounds(&events, AnomalyRule::ParticipationGap), vec![6]);
        match &events[0] {
            Event::Anomaly { value, limit, device, .. } => {
                assert_eq!(*value, 0.25);
                assert_eq!(*limit, 0.75);
                assert_eq!(*device, None);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn participation_gap_disabled_without_floor() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        for r in 1..=10 {
            m.note_participation(r, 0.0);
        }
        assert_eq!(m.anomaly_count(), 0);
    }

    #[test]
    fn from_run_derives_quorum_adjacent_participation_floor() {
        use crate::algorithm::Algorithm;
        use fedprox_faults::{QuorumPolicy, Resilience};
        let plain = FedConfig::new(Algorithm::FedAvg);
        assert!(HealthConfig::from_run(&plain, None).participation_floor.is_none());
        let resilient = plain
            .clone()
            .with_resilience(Resilience::default().with_quorum(QuorumPolicy::weight_fraction(0.6)));
        let floor = HealthConfig::from_run(&resilient, None)
            .participation_floor
            .expect("resilient run must enable the rule");
        assert!((floor - 0.75).abs() < 1e-12, "floor {floor}");
        // A permissive quorum still gets the half-fleet default floor.
        let lax = plain.with_resilience(Resilience::default());
        let floor = HealthConfig::from_run(&lax, None).participation_floor.unwrap();
        assert_eq!(floor, 0.5);
    }

    #[test]
    fn from_run_derives_theory_range() {
        use crate::algorithm::Algorithm;
        let fed = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Sarah))
            .with_beta(10.0)
            .with_tau(200)
            .with_mu(1.0);
        let cfg = HealthConfig::from_run(&fed, Some(0.5));
        assert!(cfg.vr_active);
        let hi = cfg.theta_hi.expect("theta_hi");
        assert!((hi - theory::theta_max(0.5)).abs() < 1e-12);
        let lo = cfg.theta_lo.expect("theta_lo");
        assert!(lo > 0.0 && lo < 2.0);
        // β ≤ 3 ⇒ no lower edge; unmeasured σ̄² ⇒ no range at all.
        let fed3 = FedConfig::new(Algorithm::FedAvg).with_beta(3.0);
        let cfg3 = HealthConfig::from_run(&fed3, Some(0.5));
        assert!(cfg3.theta_lo.is_none());
        assert!(!cfg3.vr_active);
        let cfg_none = HealthConfig::from_run(&fed, None);
        assert!(cfg_none.theta_lo.is_none() && cfg_none.theta_hi.is_none());
        assert!(cfg_none.theory.is_none());
    }
}
