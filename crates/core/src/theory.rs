//! The paper's convergence theory, executable.
//!
//! * **Lemma 1** — conditions on the step-size parameter β and local
//!   iteration count τ under which a device reaches a θ-accurate local
//!   solution (eq. (11)): lower bound (55), SARAH upper bound (13),
//!   SVRG upper bound (14) with its auxiliary constant `a` (65),
//! * **eq. (15)/(16)** — the smallest feasible β (and the τ it implies)
//!   found by root-solving lower = upper,
//! * **eq. (22)** — θ² as a function of (β, μ) once τ is pinned to its
//!   upper bound,
//! * **Theorem 1** — the federated factor Θ and the `O(Δ/(ΘT))`
//!   stationarity bound,
//! * **Corollary 1** — the global iteration count `T ≥ Δ/(Θ ε)`,
//! * **eq. (19)** — training time `𝒯 = T (d_com + d_cmp τ)`.

use serde::{Deserialize, Serialize};

/// Problem constants of Assumption 1 plus the control knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TheoryParams {
    /// Per-sample smoothness L.
    pub smoothness: f64,
    /// Bounded non-convexity λ (−λ-strong convexity of F_n).
    pub lambda: f64,
    /// Proximal penalty μ.
    pub mu: f64,
    /// Data heterogeneity σ̄².
    pub sigma_bar_sq: f64,
}

impl TheoryParams {
    /// The paper's Fig. 1 constants: L = 1, λ = 0.5.
    pub fn fig1(mu: f64, sigma_bar_sq: f64) -> Self {
        TheoryParams { smoothness: 1.0, lambda: 0.5, mu, sigma_bar_sq }
    }

    /// Pool heterogeneous per-device constants `(L_n, λ_n)` with weights
    /// `D_n/D` into the `L̄`, `λ̄` the paper's Section 3 note says may be
    /// substituted into Theorem 1 (Lemma 1 takes each device's own pair;
    /// use the *max* for a uniformly valid bound — also returned).
    ///
    /// Returns `(weighted-average params, worst-case params)`.
    pub fn pooled(
        per_device: &[(f64, f64)],
        weights: &[f64],
        mu: f64,
        sigma_bar_sq: f64,
    ) -> (Self, Self) {
        assert_eq!(per_device.len(), weights.len(), "pooled: length mismatch");
        assert!(!per_device.is_empty(), "pooled: no devices");
        let wsum: f64 = weights.iter().sum();
        assert!(wsum > 0.0, "pooled: zero total weight");
        let mut l_bar = 0.0;
        let mut lam_bar = 0.0;
        let mut l_max = 0.0f64;
        let mut lam_max = 0.0f64;
        for (&(l, lam), &w) in per_device.iter().zip(weights) {
            assert!(l > 0.0 && lam >= 0.0 && w >= 0.0, "pooled: invalid constants");
            l_bar += w * l;
            lam_bar += w * lam;
            l_max = l_max.max(l);
            lam_max = lam_max.max(lam);
        }
        (
            TheoryParams { smoothness: l_bar / wsum, lambda: lam_bar / wsum, mu, sigma_bar_sq },
            TheoryParams { smoothness: l_max, lambda: lam_max, mu, sigma_bar_sq },
        )
    }

    /// Effective strong convexity μ̃ = μ − λ of the surrogate J_n.
    pub fn mu_tilde(&self) -> f64 {
        self.mu - self.lambda
    }

    /// Whether the surrogate is strongly convex (`μ̃ > 0`), required by
    /// every bound below.
    pub fn valid(&self) -> bool {
        self.mu_tilde() > 0.0 && self.smoothness > 0.0
    }
}

/// Lemma 1: local-convergence conditions.
#[derive(Debug, Clone, Copy)]
pub struct Lemma1;

impl Lemma1 {
    /// Lower bound on τ (eq. (55)):
    /// `τ ≥ 3 (β²L² + μ²) / (θ² μ̃ L (β − 3))`. Requires β > 3 and μ̃ > 0;
    /// returns `None` otherwise.
    pub fn tau_lower(p: &TheoryParams, beta: f64, theta: f64) -> Option<f64> {
        if beta <= 3.0 || !p.valid() || theta <= 0.0 {
            return None;
        }
        let l = p.smoothness;
        Some(3.0 * (beta * beta * l * l + p.mu * p.mu)
            / (theta * theta * p.mu_tilde() * l * (beta - 3.0)))
    }

    /// SARAH upper bound on τ (eq. (13)): `τ ≤ (5β² − 4β)/8`.
    pub fn tau_upper_sarah(beta: f64) -> f64 {
        (5.0 * beta * beta - 4.0 * beta) / 8.0
    }

    /// The smallest SVRG auxiliary constant `a` satisfying
    /// `a − 4 ≥ 4 √(a (τ+1))` (eq. (65)). Substituting `x = √a` gives
    /// `x² − 4√(τ+1) x − 4 ≥ 0`, whose positive root is
    /// `x* = 2√(τ+1) + 2√(τ+2)`.
    pub fn svrg_a_min(tau: usize) -> f64 {
        let t1 = (tau as f64 + 1.0).sqrt();
        let t2 = (tau as f64 + 2.0).sqrt();
        let x = 2.0 * t1 + 2.0 * t2;
        x * x
    }

    /// SVRG upper bound on τ (eq. (14)): the largest τ with
    /// `τ ≤ (5β² − 4β)/(8 a_min(τ)) − 2` (the bound is self-referential
    /// through `a`, so we scan downward from the SARAH bound).
    pub fn tau_upper_svrg(beta: f64) -> f64 {
        let cap = Self::tau_upper_sarah(beta).floor();
        if cap < 0.0 {
            return -1.0;
        }
        let mut tau = cap as i64;
        while tau >= 0 {
            let rhs = (5.0 * beta * beta - 4.0 * beta) / (8.0 * Self::svrg_a_min(tau as usize))
                - 2.0;
            if (tau as f64) <= rhs {
                return tau as f64;
            }
            tau -= 1;
        }
        -1.0
    }

    /// Feasibility check for a concrete (β, τ, θ) triple.
    pub fn feasible(p: &TheoryParams, beta: f64, tau: usize, theta: f64, svrg: bool) -> bool {
        let Some(lo) = Self::tau_lower(p, beta, theta) else { return false };
        let hi = if svrg { Self::tau_upper_svrg(beta) } else { Self::tau_upper_sarah(beta) };
        (tau as f64) >= lo && (tau as f64) <= hi
    }

    /// Solve eq. (15): the smallest β > 3 with
    /// `tau_lower(β, θ) = tau_upper_sarah(β)`; eq. (16)'s τ follows.
    /// Returns `None` when no crossing exists below `beta_cap`.
    pub fn beta_min_sarah(p: &TheoryParams, theta: f64, beta_cap: f64) -> Option<BetaStar> {
        if !p.valid() || theta <= 0.0 {
            return None;
        }
        // g(β) = upper − lower: negative just above 3 (lower → ∞), and
        // grows ~ β² − O(β) for large β, so a unique sign change exists
        // whenever g(beta_cap) > 0. Bisection.
        let g = |beta: f64| -> f64 {
            Self::tau_upper_sarah(beta) - Self::tau_lower(p, beta, theta).unwrap_or(f64::MAX)
        };
        let mut lo = 3.0 + 1e-9;
        let mut hi = beta_cap;
        if g(hi) < 0.0 {
            return None;
        }
        // Find a definitely-negative starting point near 3.
        if g(lo) > 0.0 {
            // Already feasible arbitrarily close to 3 — extremely large θ.
            let beta = lo;
            let tau = Self::tau_upper_sarah(beta);
            return Some(BetaStar { beta, tau });
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if g(mid) >= 0.0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let beta = hi;
        Some(BetaStar { beta, tau: Self::tau_upper_sarah(beta) })
    }

    /// Inverse of eq. (55): the smallest local accuracy θ a device can
    /// certify with `tau` local iterations,
    /// `θ_min = √(3 (β²L² + μ²) / (τ μ̃ L (β − 3)))`. Solving eq. (55)
    /// for θ instead of τ gives fedscope a *lower* edge for the measured
    /// accuracy ratio: a θ below this was not earned by Lemma 1's
    /// budget. Requires β > 3, μ̃ > 0, τ ≥ 1; returns `None` otherwise.
    pub fn theta_min_for_tau(p: &TheoryParams, beta: f64, tau: usize) -> Option<f64> {
        if beta <= 3.0 || !p.valid() || tau == 0 {
            return None;
        }
        let l = p.smoothness;
        Some(
            (3.0 * (beta * beta * l * l + p.mu * p.mu)
                / (tau as f64 * p.mu_tilde() * l * (beta - 3.0)))
                .sqrt(),
        )
    }

    /// eq. (22): θ² when τ is pinned to the SARAH upper bound:
    /// `θ² = 24 (β²L² + μ²) / (μ̃ L (5β² − 4β)(β − 3))`.
    pub fn theta_sq_at_upper(p: &TheoryParams, beta: f64) -> Option<f64> {
        if beta <= 3.0 || !p.valid() {
            return None;
        }
        let l = p.smoothness;
        Some(
            24.0 * (beta * beta * l * l + p.mu * p.mu)
                / (p.mu_tilde() * l * (5.0 * beta * beta - 4.0 * beta) * (beta - 3.0)),
        )
    }
}

/// Output of the eq. (15)/(16) solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BetaStar {
    /// The smallest feasible β.
    pub beta: f64,
    /// The matching τ (eq. (16)).
    pub tau: f64,
}

/// Theorem 1's federated factor Θ:
/// `Θ = (1/μ)(1 − θ√(2(1+σ̄²)) − (2L/μ̃)√((1+θ²)(1+σ̄²))
///        − (2Lμ/μ̃²)(1+θ²)(1+σ̄²))`.
///
/// ```
/// use fedprox_core::theory::{federated_factor, theta_max, TheoryParams};
/// let p = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: 60.0, sigma_bar_sq: 0.1 };
/// // A tiny local accuracy keeps Θ positive…
/// assert!(federated_factor(&p, 0.01) > 0.0);
/// // …while θ beyond Remark 2(1)'s cap can only hurt.
/// let t = theta_max(0.1);
/// assert!(federated_factor(&p, t * 1.5) < federated_factor(&p, 0.01));
/// ```
pub fn federated_factor(p: &TheoryParams, theta: f64) -> f64 {
    let l = p.smoothness;
    let mt = p.mu_tilde();
    let s = 1.0 + p.sigma_bar_sq;
    let t2 = 1.0 + theta * theta;
    (1.0 - theta * (2.0 * s).sqrt()
        - 2.0 * l / mt * (t2 * s).sqrt()
        - 2.0 * l * p.mu / (mt * mt) * t2 * s)
        / p.mu
}

/// Remark 2(1): the largest θ compatible with Θ > 0 from the first
/// negative term alone: `θ < (2(1+σ̄²))^{−1/2}`.
pub fn theta_max(sigma_bar_sq: f64) -> f64 {
    1.0 / (2.0 * (1.0 + sigma_bar_sq)).sqrt()
}

/// Corollary 1: global iterations to reach an ε-accurate solution,
/// `T ≥ Δ(w̄⁰) / (Θ ε)`. Returns `None` when Θ ≤ 0 (no guarantee).
pub fn global_iterations(delta0: f64, capital_theta: f64, epsilon: f64) -> Option<f64> {
    if capital_theta <= 0.0 || epsilon <= 0.0 || delta0 < 0.0 {
        return None;
    }
    Some(delta0 / (capital_theta * epsilon))
}

/// eq. (17): the bound on the averaged stationarity gap after `t` rounds.
pub fn stationarity_bound(delta0: f64, capital_theta: f64, t: usize) -> Option<f64> {
    if capital_theta <= 0.0 || t == 0 {
        return None;
    }
    Some(delta0 / (capital_theta * t as f64))
}

/// eq. (19): total training time `𝒯 = T (d_com + d_cmp τ)`.
pub fn training_time(t: f64, d_com: f64, d_cmp: f64, tau: f64) -> f64 {
    t * (d_com + d_cmp * tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(mu: f64) -> TheoryParams {
        TheoryParams::fig1(mu, 1.0)
    }

    #[test]
    fn pooled_constants_average_and_worst_case() {
        let per_device = [(1.0, 0.1), (3.0, 0.5), (2.0, 0.3)];
        let weights = [0.5, 0.25, 0.25];
        let (avg, worst) = TheoryParams::pooled(&per_device, &weights, 2.0, 1.0);
        assert!((avg.smoothness - (0.5 + 0.75 + 0.5)).abs() < 1e-12);
        assert!((avg.lambda - (0.05 + 0.125 + 0.075)).abs() < 1e-12);
        assert_eq!(worst.smoothness, 3.0);
        assert_eq!(worst.lambda, 0.5);
        // Worst-case bounds are never looser than the average's.
        assert!(worst.mu_tilde() <= avg.mu_tilde());
        // Unnormalised weights are normalised.
        let (avg2, _) = TheoryParams::pooled(&per_device, &[2.0, 1.0, 1.0], 2.0, 1.0);
        assert!((avg2.smoothness - avg.smoothness).abs() < 1e-12);
    }

    #[test]
    fn mu_tilde_and_validity() {
        assert_eq!(p(2.0).mu_tilde(), 1.5);
        assert!(p(2.0).valid());
        assert!(!p(0.4).valid()); // μ < λ
    }

    #[test]
    fn tau_lower_requires_beta_above_3() {
        assert!(Lemma1::tau_lower(&p(2.0), 3.0, 0.5).is_none());
        assert!(Lemma1::tau_lower(&p(2.0), 2.0, 0.5).is_none());
        assert!(Lemma1::tau_lower(&p(2.0), 5.0, 0.5).is_some());
    }

    #[test]
    fn tau_lower_scales_as_inverse_theta_sq() {
        // Remark 1(2): τ = Ω(1/θ²).
        let a = Lemma1::tau_lower(&p(2.0), 10.0, 0.4).unwrap();
        let b = Lemma1::tau_lower(&p(2.0), 10.0, 0.2).unwrap();
        assert!((b / a - 4.0).abs() < 1e-9);
    }

    #[test]
    fn tau_lower_increases_with_mu_asymptotically() {
        // Remark 1(4): the lower bound is Ω(μ). The bound is
        // non-monotone for small μ (μ̃ = μ − λ grows from zero faster
        // than μ²), but in the large-μ regime μ²/μ̃ ≈ μ dominates.
        let a = Lemma1::tau_lower(&p(20.0), 10.0, 0.5).unwrap();
        let b = Lemma1::tau_lower(&p(200.0), 10.0, 0.5).unwrap();
        let c = Lemma1::tau_lower(&p(2000.0), 10.0, 0.5).unwrap();
        assert!(b > a, "{b} <= {a}");
        assert!(c > b, "{c} <= {b}");
        // And roughly linearly: ×10 in μ ⇒ ~×10 in the bound.
        assert!((c / b) > 5.0 && (c / b) < 20.0, "ratio {}", c / b);
    }

    #[test]
    fn upper_bounds_grow_quadratically() {
        assert_eq!(Lemma1::tau_upper_sarah(4.0), (5.0 * 16.0 - 16.0) / 8.0);
        let r = Lemma1::tau_upper_sarah(100.0) / Lemma1::tau_upper_sarah(10.0);
        assert!(r > 90.0 && r < 110.0); // ~β² scaling
    }

    #[test]
    fn svrg_a_min_satisfies_inequality() {
        for tau in [0usize, 1, 5, 20, 100] {
            let a = Lemma1::svrg_a_min(tau);
            assert!(
                a - 4.0 >= 4.0 * (a * (tau as f64 + 1.0)).sqrt() - 1e-9,
                "tau={tau} a={a}"
            );
            // And it is tight: slightly smaller a fails.
            let a2 = a * 0.99;
            assert!(a2 - 4.0 < 4.0 * (a2 * (tau as f64 + 1.0)).sqrt());
        }
    }

    #[test]
    fn svrg_upper_bound_stricter_than_sarah() {
        // Remark 1(5): SVRG admits fewer local iterations at equal β.
        for beta in [10.0, 20.0, 50.0] {
            let svrg = Lemma1::tau_upper_svrg(beta);
            let sarah = Lemma1::tau_upper_sarah(beta);
            assert!(svrg < sarah, "beta={beta}: svrg {svrg} vs sarah {sarah}");
        }
    }

    #[test]
    fn svrg_upper_consistent_with_its_a() {
        let beta = 30.0;
        let tau = Lemma1::tau_upper_svrg(beta);
        assert!(tau >= 0.0);
        let a = Lemma1::svrg_a_min(tau as usize);
        assert!(tau <= (5.0 * beta * beta - 4.0 * beta) / (8.0 * a) - 2.0 + 1e-9);
    }

    #[test]
    fn beta_min_solves_eq15() {
        let pp = p(2.0);
        let theta = 0.3;
        let bs = Lemma1::beta_min_sarah(&pp, theta, 1e4).expect("solution");
        assert!(bs.beta > 3.0);
        let lo = Lemma1::tau_lower(&pp, bs.beta, theta).unwrap();
        let hi = Lemma1::tau_upper_sarah(bs.beta);
        assert!((lo - hi).abs() / hi < 1e-6, "lower {lo} vs upper {hi}");
        assert!((bs.tau - hi).abs() < 1e-9);
        // Past β*, a feasible τ window opens: pick τ inside
        // [lower(β*+1), upper(β*+1)].
        let beta2 = bs.beta + 1.0;
        let lo2 = Lemma1::tau_lower(&pp, beta2, theta).unwrap();
        let hi2 = Lemma1::tau_upper_sarah(beta2);
        assert!(lo2 < hi2, "window did not open: [{lo2}, {hi2}]");
        let tau2 = lo2.ceil() as usize;
        assert!(Lemma1::feasible(&pp, beta2, tau2, theta, false));
    }

    #[test]
    fn smaller_theta_needs_larger_beta_min() {
        let pp = p(2.0);
        let b1 = Lemma1::beta_min_sarah(&pp, 0.5, 1e5).unwrap().beta;
        let b2 = Lemma1::beta_min_sarah(&pp, 0.1, 1e5).unwrap().beta;
        assert!(b2 > b1, "{b2} <= {b1}");
    }

    #[test]
    fn theta_min_inverts_tau_lower() {
        let pp = p(2.0);
        let beta = 10.0;
        // θ_min(τ_lower(θ)) = θ for any admissible θ (exact inverse).
        for theta in [0.1, 0.3, 0.5] {
            let tau = Lemma1::tau_lower(&pp, beta, theta).unwrap().ceil() as usize;
            let back = Lemma1::theta_min_for_tau(&pp, beta, tau).unwrap();
            // τ was rounded up, so the recovered θ is at most the original.
            assert!(back <= theta + 1e-12, "theta={theta} back={back}");
            // And with the un-rounded τ it matches to fp precision.
            let tau_exact = Lemma1::tau_lower(&pp, beta, theta).unwrap();
            let exact = (3.0 * (beta * beta + 4.0) / (tau_exact * 1.5 * (beta - 3.0))).sqrt();
            assert!((exact - theta).abs() < 1e-9);
        }
        // More local work certifies a tighter (smaller) θ.
        let a = Lemma1::theta_min_for_tau(&pp, beta, 10).unwrap();
        let b = Lemma1::theta_min_for_tau(&pp, beta, 40).unwrap();
        assert!((a / b - 2.0).abs() < 1e-9, "Ω(1/√τ) scaling: {a} vs {b}");
        // Guard rails.
        assert!(Lemma1::theta_min_for_tau(&pp, 3.0, 10).is_none());
        assert!(Lemma1::theta_min_for_tau(&pp, 10.0, 0).is_none());
        assert!(Lemma1::theta_min_for_tau(&TheoryParams::fig1(0.4, 1.0), 10.0, 10).is_none());
    }

    #[test]
    fn theta_sq_at_upper_matches_manual_eq22() {
        let pp = p(2.0);
        let beta = 8.0;
        let got = Lemma1::theta_sq_at_upper(&pp, beta).unwrap();
        let want = 24.0 * (64.0 + 4.0) / (1.5 * 1.0 * (5.0 * 64.0 - 32.0) * 5.0);
        assert!((got - want).abs() < 1e-12);
        // Consistency: plugging θ from (22) back into the lemma makes the
        // bounds coincide.
        let theta = got.sqrt();
        let lo = Lemma1::tau_lower(&pp, beta, theta).unwrap();
        let hi = Lemma1::tau_upper_sarah(beta);
        assert!((lo - hi).abs() / hi < 1e-9);
    }

    #[test]
    fn federated_factor_positive_for_good_params_negative_for_bad() {
        // Large μ and tiny θ ⇒ Θ > 0.
        let good = TheoryParams::fig1(60.0, 0.1);
        assert!(federated_factor(&good, 0.01) > 0.0);
        // θ beyond θ_max kills the factor.
        let t = theta_max(0.1) * 1.5;
        assert!(federated_factor(&good, t) < federated_factor(&good, 0.01));
        // μ barely above λ ⇒ μ̃ tiny ⇒ Θ < 0.
        let bad = TheoryParams::fig1(0.6, 0.1);
        assert!(federated_factor(&bad, 0.01) < 0.0);
    }

    #[test]
    fn theta_max_decreases_with_heterogeneity() {
        // Remark 2(1): more heterogeneity ⇒ smaller admissible θ.
        assert!(theta_max(10.0) < theta_max(1.0));
        assert!(theta_max(1.0) < theta_max(0.0));
        assert!((theta_max(0.0) - 1.0 / 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn corollary1_iteration_count() {
        assert_eq!(global_iterations(2.0, 0.5, 0.1), Some(40.0));
        assert_eq!(global_iterations(2.0, -0.5, 0.1), None);
        assert_eq!(global_iterations(2.0, 0.5, 0.0), None);
    }

    #[test]
    fn stationarity_bound_decays_as_one_over_t() {
        let b10 = stationarity_bound(1.0, 0.2, 10).unwrap();
        let b100 = stationarity_bound(1.0, 0.2, 100).unwrap();
        assert!((b10 / b100 - 10.0).abs() < 1e-12);
        assert!(stationarity_bound(1.0, 0.2, 0).is_none());
    }

    #[test]
    fn training_time_eq19() {
        assert_eq!(training_time(10.0, 0.5, 0.1, 20.0), 10.0 * (0.5 + 2.0));
    }
}
