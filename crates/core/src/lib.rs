//! FedProxVR — the paper's primary contribution.
//!
//! * [`config`] — experiment configuration ([`config::FedConfig`]),
//! * [`device`] / [`server`] — the two actors of Algorithm 1,
//! * [`algorithm`] — the [`algorithm::FederatedTrainer`] driving global
//!   iterations for FedProxVR (SVRG / SARAH) and the FedAvg baseline,
//! * [`runner`] — sequential, rayon-parallel and networked execution
//!   backends producing identical trajectories for a fixed seed,
//! * [`error`] — typed run failures ([`error::FedError`]): contract
//!   violations and transport errors, as values instead of panics,
//! * [`eval`] — global loss / accuracy / gradient-norm / σ̄² measurement,
//! * [`metrics`] — per-round records and JSON/CSV export,
//! * [`health`] — the [`health::HealthMonitor`] behind `fedscope`:
//!   per-round convergence diagnostics and typed anomaly rules,
//! * [`theory`] — Lemma 1 bounds, Theorem 1's federated factor Θ,
//!   Corollary 1's iteration bound,
//! * [`paramopt`] — the Section 4.3 training-time minimisation
//!   (problem (23)) via grid + Nelder–Mead,
//! * [`search`] — the random hyper-parameter search behind Tables 1–2.

#![warn(missing_docs)]

pub mod algorithm;
pub mod autotune;
pub mod config;
pub mod device;
pub mod error;
pub mod eval;
pub mod health;
pub mod metrics;
pub mod paramopt;
pub mod runner;
pub mod search;
pub mod server;
pub mod theory;

pub use algorithm::{Algorithm, FederatedTrainer};
pub use config::{FedConfig, RunnerKind, SamplerSpec, SimRunnerOptions};
pub use device::Device;
pub use error::FedError;
pub use health::{HealthConfig, HealthMonitor};
pub use metrics::{DivergenceCause, History, RoundRecord};
