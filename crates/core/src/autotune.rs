//! End-to-end parameter selection: the paper's full recipe, automated.
//!
//! Section 4.3 assumes the problem constants are known; Fig. 1's caption
//! notes L and λ "can be estimated by sampling real-world dataset". This
//! module chains everything:
//!
//! 1. estimate L and λ by probing the model on the devices' data
//!    (`fedprox_models::estimate`),
//! 2. measure the heterogeneity σ̄² at the initial model (`eval`),
//! 3. solve problem (23) for the deployment's γ = d_cmp/d_com
//!    (`paramopt`), yielding (β*, μ*, θ*, τ*),
//! 4. emit a ready-to-run [`FedConfig`] plus the full diagnostic trail.

use crate::algorithm::Algorithm;
use crate::config::FedConfig;
use crate::device::Device;
use crate::theory::TheoryParams;
use crate::{eval, paramopt};
use fedprox_models::estimate::{estimate_constants, ConstantEstimates, EstimateConfig};
use fedprox_models::LossModel;
use fedprox_optim::estimator::EstimatorKind;

/// Inputs to the tuner.
#[derive(Debug, Clone)]
pub struct AutoTuneRequest {
    /// Deployment weight factor γ = d_cmp / d_com.
    pub gamma: f64,
    /// Which estimator the tuned config should use.
    pub estimator: EstimatorKind,
    /// Mini-batch size for the tuned config.
    pub batch_size: usize,
    /// Cap on the tuned τ (the theory's τ* can be in the thousands; real
    /// runs usually cap it).
    pub tau_cap: usize,
    /// Probing configuration for the L/λ estimation.
    pub probe: EstimateConfig,
    /// Seed for the emitted config.
    pub seed: u64,
}

impl Default for AutoTuneRequest {
    fn default() -> Self {
        AutoTuneRequest {
            gamma: 1e-2,
            estimator: EstimatorKind::Svrg,
            batch_size: 16,
            tau_cap: 100,
            probe: EstimateConfig::default(),
            seed: 0,
        }
    }
}

/// The tuner's output: the config plus every intermediate quantity.
#[derive(Debug, Clone)]
pub struct AutoTuneReport {
    /// Ready-to-run configuration.
    pub config: FedConfig,
    /// Estimated constants (worst-case L in `smoothness_max`, practical
    /// scale in `smoothness_typical`, non-convexity in `nonconvexity`).
    pub constants: ConstantEstimates,
    /// Measured heterogeneity σ̄² at the initial model.
    pub sigma_bar_sq: f64,
    /// The problem-(23) optimum that produced the config.
    pub optimum: paramopt::OptimalParams,
    /// Whether τ was clipped by `tau_cap`.
    pub tau_clipped: bool,
}

/// Errors the tuner can hit.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoTuneError {
    /// σ̄² could not be measured (zero global gradient at init).
    DegenerateGradient,
    /// Problem (23) had no feasible optimum for these constants.
    Infeasible,
    /// The federation has no devices to probe.
    NoDevices,
}

impl std::fmt::Display for AutoTuneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoTuneError::DegenerateGradient => {
                write!(f, "autotune: global gradient vanished at the initial model")
            }
            AutoTuneError::Infeasible => {
                write!(f, "autotune: problem (23) infeasible for the estimated constants")
            }
            AutoTuneError::NoDevices => {
                write!(f, "autotune: the federation has no devices to probe")
            }
        }
    }
}

impl std::error::Error for AutoTuneError {}

/// Run the full pipeline.
pub fn autotune<M: LossModel>(
    model: &M,
    devices: &[Device],
    req: &AutoTuneRequest,
) -> Result<AutoTuneReport, AutoTuneError> {
    let w0 = model.init_params(req.seed);

    // 1. Constants, probed on the pooled data of a few devices (probing
    //    every device would cost full-gradient passes for nothing — the
    //    constants are properties of the loss family, not the sharding).
    let probe_device = devices
        .iter()
        .max_by_key(|d| d.samples())
        .ok_or(AutoTuneError::NoDevices)?;
    let constants = estimate_constants(model, &probe_device.data, &w0, &req.probe);
    // The paper's theory wants an L that upper-bounds curvature, but the
    // *typical* scale is what makes η = 1/(βL) practical (see the fig2
    // binary's discussion) — split the difference geometrically.
    let l = (constants.smoothness_max * constants.smoothness_typical).max(1e-12).sqrt();
    let lambda = constants.nonconvexity.max(1e-3); // keep μ̃ > 0 meaningful

    // 2. Heterogeneity.
    let sigma_bar_sq = eval::empirical_sigma_bar_sq(model, devices, &w0)
        .ok_or(AutoTuneError::DegenerateGradient)?;

    // 3. Problem (23).
    let base = TheoryParams { smoothness: l, lambda, mu: f64::NAN, sigma_bar_sq };
    let optimum = paramopt::solve(&base, req.gamma).ok_or(AutoTuneError::Infeasible)?;

    // 4. Emit.
    let tau_star = optimum.tau.round() as usize;
    let tau = tau_star.min(req.tau_cap).max(1);
    let config = FedConfig::new(Algorithm::FedProxVr(req.estimator))
        .with_beta(optimum.beta)
        .with_smoothness(l)
        .with_tau(tau)
        .with_mu(optimum.mu)
        .with_batch_size(req.batch_size)
        .with_seed(req.seed);
    Ok(AutoTuneReport {
        config,
        constants,
        sigma_bar_sq,
        optimum,
        tau_clipped: tau != tau_star,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FederatedTrainer;
    use crate::config::RunnerKind;
    use fedprox_data::split::split_federation;
    use fedprox_data::synthetic::{generate, SyntheticConfig};
    use fedprox_models::MultinomialLogistic;

    fn federation(seed: u64) -> (Vec<Device>, fedprox_data::Dataset) {
        let shards =
            generate(&SyntheticConfig { seed, ..Default::default() }, &[100, 140, 80]);
        let (train, test) = split_federation(&shards, seed);
        (train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect(), test)
    }

    #[test]
    fn produces_feasible_config() {
        let (devices, _) = federation(1);
        let model = MultinomialLogistic::new(60, 10);
        let report = autotune(&model, &devices, &AutoTuneRequest::default()).unwrap();
        assert!(report.config.beta > 3.0);
        assert!(report.config.mu > 0.0);
        assert!(report.config.tau >= 1 && report.config.tau <= 100);
        assert!(report.sigma_bar_sq > 0.0);
        assert!(report.optimum.capital_theta > 0.0);
        assert!(report.constants.smoothness_max > 0.0);
    }

    #[test]
    fn tuned_config_actually_trains() {
        let (devices, test) = federation(2);
        let model = MultinomialLogistic::new(60, 10);
        let report = autotune(
            &model,
            &devices,
            &AutoTuneRequest { tau_cap: 20, ..Default::default() },
        )
        .unwrap();
        let cfg = report
            .config
            .with_rounds(8)
            .with_eval_every(8)
            .with_runner(RunnerKind::Parallel);
        let h = FederatedTrainer::new(&model, &devices, &test, cfg).run().expect("run");
        assert!(!h.diverged(), "tuned config diverged");
        assert!(
            h.final_loss().unwrap() < h.records[0].train_loss,
            "tuned config failed to make progress"
        );
    }

    #[test]
    fn smaller_gamma_yields_more_local_work() {
        let (devices, _) = federation(3);
        let model = MultinomialLogistic::new(60, 10);
        let tune = |gamma: f64| {
            autotune(
                &model,
                &devices,
                &AutoTuneRequest { gamma, tau_cap: usize::MAX, ..Default::default() },
            )
            .unwrap()
        };
        let expensive_comm = tune(1e-4);
        let cheap_comm = tune(1.0);
        assert!(
            expensive_comm.config.tau > cheap_comm.config.tau,
            "γ=1e-4 τ={} should exceed γ=1 τ={}",
            expensive_comm.config.tau,
            cheap_comm.config.tau
        );
    }

    #[test]
    fn deterministic() {
        let (devices, _) = federation(4);
        let model = MultinomialLogistic::new(60, 10);
        let a = autotune(&model, &devices, &AutoTuneRequest::default()).unwrap();
        let b = autotune(&model, &devices, &AutoTuneRequest::default()).unwrap();
        assert_eq!(a.config.beta, b.config.beta);
        assert_eq!(a.config.mu, b.config.mu);
        assert_eq!(a.sigma_bar_sq, b.sigma_bar_sq);
    }
}
