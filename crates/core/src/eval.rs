//! Global evaluation: loss, gradient norm, accuracy, and the empirical
//! heterogeneity σ̄² of Assumption 1.

use crate::device::Device;
use fedprox_data::Dataset;
use fedprox_models::LossModel;
use fedprox_tensor::vecops;
use rayon::prelude::*;

/// Global training loss `F̄(w) = Σ_n (D_n/D) F_n(w)` (eq. (2)),
/// parallel over devices.
pub fn global_loss<M: LossModel>(model: &M, devices: &[Device], w: &[f64]) -> f64 {
    let total: usize = devices.iter().map(Device::samples).sum();
    assert!(total > 0, "global_loss: empty federation");
    let weighted: f64 = devices
        .par_iter()
        .map(|d| d.samples() as f64 * model.full_loss(w, &d.data))
        .sum();
    weighted / total as f64
}

/// Global gradient `∇F̄(w)` into `out`, parallel over devices.
pub fn global_grad<M: LossModel>(model: &M, devices: &[Device], w: &[f64], out: &mut [f64]) {
    let total: usize = devices.iter().map(Device::samples).sum();
    assert!(total > 0, "global_grad: empty federation");
    // Per-device gradients in parallel, combined in device order so the
    // result is independent of thread scheduling.
    let partials: Vec<Vec<f64>> = devices
        .par_iter()
        .map(|d| {
            let mut g = vec![0.0; model.dim()];
            model.full_grad(w, &d.data, &mut g);
            vecops::scale(d.samples() as f64 / total as f64, &mut g);
            g
        })
        .collect();
    out.fill(0.0);
    for p in &partials {
        vecops::add_assign(out, p);
    }
}

/// `‖∇F̄(w)‖²` — the paper's stationarity gap (eq. (12)).
pub fn stationarity_gap<M: LossModel>(model: &M, devices: &[Device], w: &[f64]) -> f64 {
    let mut g = vec![0.0; model.dim()];
    global_grad(model, devices, w, &mut g);
    vecops::norm_sq(&g)
}

/// Test accuracy of the global model.
pub fn test_accuracy<M: LossModel>(model: &M, test: &Dataset, w: &[f64]) -> f64 {
    model.accuracy(w, test)
}

/// Empirical σ̄² of Assumption 1, eq. (5): with
/// `σ_n = ‖∇F_n(w) − ∇F̄(w)‖ / ‖∇F̄(w)‖`, returns `Σ_n (D_n/D) σ_n²`.
/// Returns `None` when `‖∇F̄(w)‖` is numerically zero (the ratio is
/// undefined at stationary points).
pub fn empirical_sigma_bar_sq<M: LossModel>(
    model: &M,
    devices: &[Device],
    w: &[f64],
) -> Option<f64> {
    let mut gbar = vec![0.0; model.dim()];
    global_grad(model, devices, w, &mut gbar);
    let denom = vecops::norm_sq(&gbar);
    if denom < 1e-24 {
        return None;
    }
    let total: usize = devices.iter().map(Device::samples).sum();
    let sum: f64 = devices
        .par_iter()
        .map(|d| {
            let mut g = vec![0.0; model.dim()];
            model.full_grad(w, &d.data, &mut g);
            d.samples() as f64 / total as f64 * vecops::dist_sq(&g, &gbar)
        })
        .sum();
    Some(sum / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_models::LinearRegression;
    use fedprox_tensor::Matrix;

    fn device_with(points: &[([f64; 2], f64)], id: usize) -> Device {
        let mut f = Matrix::zeros(points.len(), 2);
        let mut y = Vec::new();
        for (i, (x, t)) in points.iter().enumerate() {
            f.row_mut(i).copy_from_slice(x);
            y.push(*t);
        }
        Device::new(id, Dataset::new(f, y, 0))
    }

    #[test]
    fn global_loss_is_sample_weighted() {
        let m = LinearRegression::new(2);
        // Device A: 1 sample with loss ½(1)² at w = 0; target 1, x = (1,0).
        let a = device_with(&[([1.0, 0.0], 1.0)], 0);
        // Device B: 3 samples, each zero loss at w = 0 (targets 0).
        let b = device_with(&[([1.0, 0.0], 0.0); 3], 1);
        let w = vec![0.0, 0.0];
        let got = global_loss(&m, &[a, b], &w);
        assert!((got - 0.5 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn global_grad_matches_pooled_dataset() {
        let m = LinearRegression::new(2);
        let a = device_with(&[([1.0, 0.0], 1.0), ([0.0, 1.0], -1.0)], 0);
        let b = device_with(&[([1.0, 1.0], 2.0)], 1);
        let w = vec![0.3, -0.7];
        let mut got = vec![0.0; 2];
        global_grad(&m, &[a.clone(), b.clone()], &w, &mut got);
        let pooled = Dataset::concat(&[&a.data, &b.data]);
        let mut want = vec![0.0; 2];
        m.full_grad(&w, &pooled, &mut want);
        for (g, wv) in got.iter().zip(&want) {
            assert!((g - wv).abs() < 1e-12);
        }
        // Loss agrees too.
        let gl = global_loss(&m, &[a, b], &w);
        assert!((gl - m.full_loss(&w, &pooled)).abs() < 1e-12);
    }

    #[test]
    fn stationarity_gap_zero_at_minimum() {
        let m = LinearRegression::new(2);
        // Single device whose exact solution is w = (2, −1).
        let d = device_with(
            &[([1.0, 0.0], 2.0), ([0.0, 1.0], -1.0), ([1.0, 1.0], 1.0)],
            0,
        );
        assert!(stationarity_gap(&m, &[d], &[2.0, -1.0]) < 1e-20);
    }

    #[test]
    fn sigma_bar_sq_zero_for_identical_devices() {
        let m = LinearRegression::new(2);
        let pts = [([1.0, 0.0], 1.0), ([0.0, 1.0], 2.0)];
        let a = device_with(&pts, 0);
        let b = device_with(&pts, 1);
        let s = empirical_sigma_bar_sq(&m, &[a, b], &[0.5, 0.5]).unwrap();
        assert!(s < 1e-20, "sigma {s}");
    }

    #[test]
    fn sigma_bar_sq_grows_with_divergence() {
        let m = LinearRegression::new(2);
        let a = device_with(&[([1.0, 0.0], 5.0)], 0);
        let b = device_with(&[([1.0, 0.0], -5.0)], 1);
        let similar = device_with(&[([1.0, 0.0], 0.9)], 2);
        let similar2 = device_with(&[([1.0, 0.0], 1.1)], 3);
        let w = vec![0.0, 0.0];
        let het = empirical_sigma_bar_sq(&m, &[a, b], &w);
        let hom = empirical_sigma_bar_sq(&m, &[similar, similar2], &w).unwrap();
        // Opposite targets: mean gradient ≈ 0 → σ̄² undefined or huge.
        match het {
            None => {}
            Some(v) => assert!(v > 100.0 * hom),
        }
        assert!(hom < 0.02, "hom {hom}");
    }
}
