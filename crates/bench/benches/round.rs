//! Meso-benchmarks: one full federated round for each figure's workload
//! shape, plus the sequential-vs-parallel runner ablation (DESIGN.md) and
//! the server aggregation step.
//!
//! `bench_fig2_round` / `bench_fig3_round` / `bench_fig4_round` are the
//! `cargo bench` counterparts of the figure binaries: same model, same
//! data protocol, one global iteration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fedprox_bench::{fashion_federation, mnist_federation, synthetic_federation};
use fedprox_core::{runner, server, Algorithm, FedConfig};
use fedprox_models::{Cnn, CnnSpec, LossModel, MultinomialLogistic};
use fedprox_optim::estimator::EstimatorKind;

fn cfg() -> FedConfig {
    FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
        .with_beta(5.0)
        .with_smoothness(5.0)
        .with_tau(5)
        .with_mu(0.1)
        .with_batch_size(4)
        .with_seed(1)
}

fn bench_fig2_round(c: &mut Criterion) {
    let fed = fashion_federation(8, 40, 100, 1);
    let model = MultinomialLogistic::new(784, 10);
    let w0 = model.init_params(1);
    let cfg = cfg();
    let mut g = c.benchmark_group("fig2_round");
    g.sample_size(10);
    g.bench_function("logistic_8dev", |bch| {
        bch.iter(|| {
            runner::run_round_parallel(&model, &fed.devices, black_box(&w0), &cfg, 0)
        })
    });
    g.finish();
}

fn bench_fig3_round(c: &mut Criterion) {
    let fed = mnist_federation(4, 30, 60, 1);
    let model = Cnn::new(CnnSpec::tiny());
    // Downsample the 784-dim images to the tiny spec's 8x8 inputs.
    let devices: Vec<fedprox_core::Device> = fed
        .devices
        .iter()
        .map(|d| {
            let side = 8;
            let feats: Vec<f64> = (0..d.data.len())
                .flat_map(|i| {
                    let x = d.data.x(i);
                    (0..side * side).map(move |j| {
                        let (r, c) = (j / side, j % side);
                        x[(r * 3) * 28 + c * 3]
                    })
                })
                .collect();
            let labels: Vec<f64> =
                (0..d.data.len()).map(|i| (d.data.class_of(i) % 3) as f64).collect();
            fedprox_core::Device::new(
                d.id,
                fedprox_data::Dataset::new(
                    fedprox_tensor::Matrix::from_vec(d.data.len(), side * side, feats),
                    labels,
                    3,
                ),
            )
        })
        .collect();
    let w0 = model.init_params(1);
    let cfg = cfg();
    let mut g = c.benchmark_group("fig3_round");
    g.sample_size(10);
    g.bench_function("cnn_tiny_4dev", |bch| {
        bch.iter(|| runner::run_round_parallel(&model, &devices, black_box(&w0), &cfg, 0))
    });
    g.finish();
}

fn bench_fig4_round(c: &mut Criterion) {
    let fed = synthetic_federation(1.0, 1.0, 8, 40, 120, 1);
    let model = MultinomialLogistic::new(60, 10);
    let w0 = model.init_params(1);
    let cfg = cfg();
    let mut g = c.benchmark_group("fig4_round");
    g.sample_size(20);
    g.bench_function("synthetic_8dev", |bch| {
        bch.iter(|| {
            runner::run_round_parallel(&model, &fed.devices, black_box(&w0), &cfg, 0)
        })
    });
    g.finish();
}

fn bench_runner_ablation(c: &mut Criterion) {
    // Ablation: sequential vs rayon-parallel device execution.
    let fed = synthetic_federation(1.0, 1.0, 16, 80, 160, 2);
    let model = MultinomialLogistic::new(60, 10);
    let w0 = model.init_params(2);
    let cfg = cfg().with_tau(10);
    let mut g = c.benchmark_group("runner_ablation");
    g.sample_size(10);
    g.bench_function("sequential_16dev", |bch| {
        bch.iter(|| {
            runner::run_round_sequential(&model, &fed.devices, black_box(&w0), &cfg, 0)
        })
    });
    g.bench_function("parallel_16dev", |bch| {
        bch.iter(|| {
            runner::run_round_parallel(&model, &fed.devices, black_box(&w0), &cfg, 0)
        })
    });
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    // Server-side cost (Algorithm 1 line 12) at CNN scale.
    let dim = 135_000;
    let n = 100;
    let locals_data: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64; dim]).collect();
    let weights = vec![1.0 / n as f64; n];
    let mut out = vec![0.0; dim];
    c.bench_function("aggregate_100dev_135k", |bch| {
        bch.iter(|| {
            let locals: Vec<(&[f64], f64)> = locals_data
                .iter()
                .zip(&weights)
                .map(|(w, &p)| (w.as_slice(), p))
                .collect();
            server::aggregate(black_box(&locals), &mut out)
        })
    });
}

fn bench_design_ablations(c: &mut Criterion) {
    // Per-round cost of the design knobs DESIGN.md calls out: iterate
    // rule (uniform-random keeps one extra candidate copy), partial
    // participation (less work per round), and the sparse composite prox.
    use fedprox_optim::solver::IterateChoice;
    let fed = synthetic_federation(1.0, 1.0, 12, 60, 140, 3);
    let model = MultinomialLogistic::new(60, 10);
    let w0 = model.init_params(3);
    let mut g = c.benchmark_group("design_ablations");
    g.sample_size(10);

    let base = cfg().with_tau(10);
    let all: Vec<usize> = (0..fed.devices.len()).collect();
    g.bench_function("iterate_last", |bch| {
        bch.iter(|| {
            runner::run_round_subset(&model, &fed.devices, &all, black_box(&w0), &base, 0, true, None)
        })
    });
    let random_iter = base.clone().with_iterate_choice(IterateChoice::UniformRandom);
    g.bench_function("iterate_uniform_random", |bch| {
        bch.iter(|| {
            runner::run_round_subset(
                &model, &fed.devices, &all, black_box(&w0), &random_iter, 0, true, None,
            )
        })
    });
    let half: Vec<usize> = (0..fed.devices.len() / 2).collect();
    g.bench_function("participation_half", |bch| {
        bch.iter(|| {
            runner::run_round_subset(&model, &fed.devices, &half, black_box(&w0), &base, 0, true, None)
        })
    });
    let sparse = base.clone().with_l1(0.01);
    g.bench_function("sparse_l1_prox", |bch| {
        bch.iter(|| {
            runner::run_round_subset(
                &model, &fed.devices, &all, black_box(&w0), &sparse, 0, true, None,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig2_round,
    bench_fig3_round,
    bench_fig4_round,
    bench_runner_ablation,
    bench_aggregation,
    bench_design_ablations
);
criterion_main!(benches);
