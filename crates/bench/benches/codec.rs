//! Wire-codec throughput: the communication substrate's per-message cost
//! at the paper's two model scales (logistic ≈ 7.9k params, CNN ≈ 135k).

// Bench code: unwrap on setup data is the intended error policy.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fedprox_net::codec::{decode, encode, encoded_len};
use fedprox_net::{Compressor, Message};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for &(label, dim) in &[("logistic_7850", 7850usize), ("cnn_135k", 135_000)] {
        let msg = Message::LocalModel {
            device: 3,
            round: 17,
            params: (0..dim).map(|i| i as f64 * 0.001).collect(),
            weight: 0.01,
            grad_evals: 4096,
            compute_time: 0.25,
        };
        let bytes = encoded_len(&msg) as u64;
        g.throughput(Throughput::Bytes(bytes));
        g.bench_with_input(BenchmarkId::new("encode", label), &msg, |bch, m| {
            bch.iter(|| encode(black_box(m)))
        });
        let wire = encode(&msg);
        g.bench_with_input(BenchmarkId::new("decode", label), &wire, |bch, w| {
            bch.iter(|| decode(black_box(w)).unwrap())
        });
    }
    g.finish();
}

fn bench_compression(c: &mut Criterion) {
    let mut g = c.benchmark_group("compress");
    let dim = 135_000;
    let v: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
    for (label, scheme) in [
        ("topk_1pct", Compressor::TopK { k: dim / 100 }),
        ("uniform_8bit", Compressor::Uniform { bits: 8 }),
    ] {
        g.throughput(Throughput::Bytes((dim * 8) as u64));
        g.bench_with_input(BenchmarkId::new("compress_cnn", label), &scheme, |bch, s| {
            bch.iter(|| s.compress(black_box(&v)))
        });
        let compressed = scheme.compress(&v);
        g.bench_with_input(BenchmarkId::new("decompress_cnn", label), &compressed, |bch, cc| {
            bch.iter(|| Compressor::decompress(black_box(cc)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_codec, bench_compression);
criterion_main!(benches);
