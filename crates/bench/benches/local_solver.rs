//! Cost of one device's local update (Algorithm 1 lines 3–10) as τ and
//! the estimator vary — the quantity the paper's d_cmp·τ term models.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedprox_data::synthetic::{generate, SyntheticConfig};
use fedprox_models::MultinomialLogistic;
use fedprox_optim::estimator::EstimatorKind;
use fedprox_optim::solver::{IterateChoice, LocalSolver, LocalSolverConfig};
use fedprox_optim::{QuadraticProx, StepSize};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_local_solve(c: &mut Criterion) {
    let data = &generate(&SyntheticConfig { seed: 2, ..Default::default() }, &[400])[0];
    let model = MultinomialLogistic::new(60, 10);
    let w0 = fedprox_models::LossModel::init_params(&model, 2);
    let prox = QuadraticProx::new(0.5, w0.clone());
    let solver = LocalSolver;

    let mut g = c.benchmark_group("local_solve");
    g.sample_size(20);
    for tau in [5usize, 20] {
        for kind in [EstimatorKind::Sgd, EstimatorKind::Svrg, EstimatorKind::Sarah] {
            let cfg = LocalSolverConfig {
                kind,
                step: StepSize::paper(5.0, 3.0),
                tau,
                batch_size: 16,
                choice: IterateChoice::Last,
            };
            g.bench_with_input(
                BenchmarkId::new(format!("tau{tau}"), kind.name()),
                &cfg,
                |bch, cfg| {
                    bch.iter(|| {
                        let mut rng = StdRng::seed_from_u64(3);
                        solver.solve(&model, data, &prox, black_box(&w0), cfg, &mut rng)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_local_solve);
criterion_main!(benches);
