//! Per-step cost of the gradient estimators of eq. (8) and the ablation
//! of the closed-form vs iterative proximal operator (DESIGN.md).
//!
//! The paper's cost model charges 1 gradient per SGD step and 2 per
//! VR step; these benches verify that the constant factors match.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedprox_data::synthetic::{generate, SyntheticConfig};
use fedprox_models::MultinomialLogistic;
use fedprox_optim::estimator::{Estimator, EstimatorKind};
use fedprox_optim::{IterativeProx, Proximal, QuadraticProx};

fn bench_estimator_step(c: &mut Criterion) {
    let data = &generate(&SyntheticConfig { seed: 1, ..Default::default() }, &[500])[0];
    let model = MultinomialLogistic::new(60, 10);
    let w0 = fedprox_models::LossModel::init_params(&model, 1);
    let wt: Vec<f64> = w0.iter().map(|v| v + 0.01).collect();
    let batch: Vec<usize> = (0..32).collect();

    let mut g = c.benchmark_group("estimator_step");
    for kind in [EstimatorKind::Sgd, EstimatorKind::Svrg, EstimatorKind::Sarah] {
        g.bench_with_input(BenchmarkId::new("step_b32", kind.name()), &kind, |bch, &k| {
            let mut est = Estimator::begin(k, &model, data, &w0);
            bch.iter(|| est.step(&model, data, black_box(&batch), black_box(&wt)))
        });
    }
    g.bench_function("begin_full_grad_500", |bch| {
        bch.iter(|| Estimator::begin(EstimatorKind::Svrg, &model, data, black_box(&w0)))
    });
    g.finish();
}

fn bench_prox_ablation(c: &mut Criterion) {
    // Ablation: eq. (10)'s closed form vs a generic 50-iteration
    // numerical prox — the design choice DESIGN.md calls out.
    let dim = 610;
    let anchor = vec![0.25; dim];
    let x = vec![1.0; dim];
    let mut out = vec![0.0; dim];
    let closed = QuadraticProx::new(0.5, anchor.clone());
    let iterative = IterativeProx::new(QuadraticProx::new(0.5, anchor), 50, 0.1);

    let mut g = c.benchmark_group("prox_ablation");
    g.bench_function("closed_form_610", |bch| {
        bch.iter(|| closed.prox(0.04, black_box(&x), &mut out))
    });
    g.bench_function("iterative50_610", |bch| {
        bch.iter(|| iterative.prox(0.04, black_box(&x), &mut out))
    });
    g.finish();
}

criterion_group!(benches, bench_estimator_step, bench_prox_ablation);
criterion_main!(benches);
