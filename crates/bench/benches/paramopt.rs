//! Cost of the Fig. 1 parameter optimization (problem (23)): one γ solve
//! and a full sweep. Also benches the Lemma 1 root solve of eq. (15).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fedprox_core::paramopt;
use fedprox_core::theory::{Lemma1, TheoryParams};

fn bench_paramopt(c: &mut Criterion) {
    let base = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: f64::NAN, sigma_bar_sq: 1.0 };
    let mut g = c.benchmark_group("paramopt");
    g.sample_size(10);
    g.bench_function("solve_single_gamma", |bch| {
        bch.iter(|| paramopt::solve(black_box(&base), 1e-2))
    });
    let gammas: Vec<f64> = (0..8).map(|i| 10f64.powf(-4.0 + i as f64 * 0.5)).collect();
    g.bench_function("sweep_8_gammas", |bch| {
        bch.iter(|| paramopt::sweep(black_box(&base), black_box(&gammas)))
    });
    g.finish();
}

fn bench_lemma1(c: &mut Criterion) {
    let p = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: 2.0, sigma_bar_sq: 1.0 };
    c.bench_function("beta_min_bisection", |bch| {
        bch.iter(|| Lemma1::beta_min_sarah(black_box(&p), 0.3, 1e5))
    });
    c.bench_function("tau_upper_svrg_scan", |bch| {
        bch.iter(|| Lemma1::tau_upper_svrg(black_box(50.0)))
    });
}

criterion_group!(benches, bench_paramopt, bench_lemma1);
criterion_main!(benches);
