//! Micro-benchmarks of the tensor substrate: the kernels every training
//! step is built from. Regressions here multiply into every experiment.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fedprox_tensor::conv::{
    conv2d_backward, conv2d_forward, maxpool2d_forward, Conv2dSpec, ConvScratch, Pool2dSpec,
};
use fedprox_tensor::{activations, vecops, Matrix};

fn pseudo(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

fn bench_vecops(c: &mut Criterion) {
    let mut g = c.benchmark_group("vecops");
    for &n in &[1_000usize, 100_000] {
        let a = pseudo(n, 1);
        let b = pseudo(n, 2);
        g.bench_with_input(BenchmarkId::new("dot", n), &n, |bch, _| {
            bch.iter(|| vecops::dot(black_box(&a), black_box(&b)))
        });
        g.bench_with_input(BenchmarkId::new("par_dot", n), &n, |bch, _| {
            bch.iter(|| vecops::par_dot(black_box(&a), black_box(&b)))
        });
        let mut y = pseudo(n, 3);
        g.bench_with_input(BenchmarkId::new("axpy", n), &n, |bch, _| {
            bch.iter(|| vecops::axpy(0.5, black_box(&a), black_box(&mut y)))
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[32usize, 128] {
        let a = Matrix::from_vec(n, n, pseudo(n * n, 4));
        let b = Matrix::from_vec(n, n, pseudo(n * n, 5));
        g.bench_with_input(BenchmarkId::new("square", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)))
        });
    }
    // Logistic-regression shape: (classes x features) · feature vector.
    let w = Matrix::from_vec(10, 784, pseudo(7840, 6));
    let x = pseudo(784, 7);
    g.bench_function("matvec_10x784", |bch| bch.iter(|| black_box(&w).matvec(black_box(&x))));
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut g = c.benchmark_group("conv2d");
    // The paper CNN's first layer (28x28, 5x5, 1→32).
    let spec = Conv2dSpec::same(1, 32, 5, 28, 28);
    let input = pseudo(spec.input_len(), 8);
    let weight = pseudo(spec.weight_len(), 9);
    let bias = pseudo(spec.out_ch, 10);
    let mut out = vec![0.0; spec.output_len()];
    let mut scratch = ConvScratch::new(&spec);
    g.bench_function("forward_28x28_1to32_k5", |bch| {
        bch.iter(|| {
            conv2d_forward(&spec, black_box(&input), &weight, &bias, &mut out, &mut scratch)
        })
    });
    let go = pseudo(spec.output_len(), 11);
    let mut gw = vec![0.0; spec.weight_len()];
    let mut gb = vec![0.0; spec.out_ch];
    let mut gi = vec![0.0; spec.input_len()];
    conv2d_forward(&spec, &input, &weight, &bias, &mut out, &mut scratch);
    g.bench_function("backward_28x28_1to32_k5", |bch| {
        bch.iter(|| {
            conv2d_backward(
                &spec,
                black_box(&input),
                black_box(&go),
                &weight,
                &mut gw,
                &mut gb,
                &mut gi,
                &mut scratch,
            )
        })
    });
    let pool = Pool2dSpec { channels: 32, height: 28, width: 28, size: 2 };
    let pin = pseudo(pool.input_len(), 12);
    let mut pout = vec![0.0; pool.output_len()];
    let mut parg = vec![0usize; pool.output_len()];
    g.bench_function("maxpool_32x28x28", |bch| {
        bch.iter(|| maxpool2d_forward(&pool, black_box(&pin), &mut pout, &mut parg))
    });
    g.finish();
}

fn bench_activations(c: &mut Criterion) {
    let mut g = c.benchmark_group("activations");
    let logits = pseudo(10, 13);
    g.bench_function("softmax_10", |bch| {
        bch.iter(|| {
            let mut l = logits.clone();
            activations::softmax_inplace(black_box(&mut l));
            l
        })
    });
    g.bench_function("cross_entropy_grad_10", |bch| {
        let mut out = vec![0.0; 10];
        bch.iter(|| {
            activations::cross_entropy_grad_from_logits(black_box(&logits), 3, &mut out)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_vecops, bench_matmul, bench_conv, bench_activations);
criterion_main!(benches);
