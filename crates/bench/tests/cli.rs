//! End-to-end tests of the experiment binaries as real processes.

use std::process::Command;

#[test]
fn fedrun_executes_a_spec_and_writes_output() {
    let dir = std::env::temp_dir().join("fedprox-fedrun-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("spec.json");
    std::fs::write(
        &spec_path,
        r#"{
            "dataset": {"kind": "synthetic", "alpha": 0.5, "beta": 0.5},
            "model": {"kind": "logistic"},
            "algorithms": ["fedavg", "fedproxvr-svrg"],
            "devices": 3, "min_size": 20, "max_size": 40,
            "rounds": 3, "eval_every": 3, "smoothness": 3.0
        }"#,
    )
    .unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_fedrun"))
        .arg(&spec_path)
        .arg("--out")
        .arg(&dir)
        .output()
        .expect("fedrun should start");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fedavg"), "stdout: {stdout}");
    assert!(stdout.contains("fedproxvr-svrg"));
    // JSON artifacts exist and parse as histories.
    for name in ["fedrun_fedavg.json", "fedrun_fedproxvr-svrg.json"] {
        let text = std::fs::read_to_string(dir.join(name)).expect(name);
        let h = fedprox_core::History::from_json(&text).expect("valid history JSON");
        assert_eq!(h.rounds_run, 3);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fedrun_rejects_bad_spec() {
    let dir = std::env::temp_dir().join("fedprox-fedrun-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let spec_path = dir.join("bad.json");
    std::fs::write(&spec_path, "{not json").unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_fedrun")).arg(&spec_path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("invalid spec"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig1_binary_prints_the_sweep() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig1_param_opt"))
        .output()
        .expect("fig1 should start");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sigma_bar^2 = 0.1"));
    assert!(stdout.contains("sigma_bar^2 = 10"));
    assert!(stdout.contains("beta_min (eq. 15)"));
}

#[test]
fn experiment_binaries_accept_help() {
    for bin in [
        env!("CARGO_BIN_EXE_fig2_convex"),
        env!("CARGO_BIN_EXE_fig3_nonconvex"),
        env!("CARGO_BIN_EXE_fig4_mu_effect"),
        env!("CARGO_BIN_EXE_table1_convex"),
        env!("CARGO_BIN_EXE_table2_nonconvex"),
    ] {
        let out = Command::new(bin).arg("--help").output().unwrap();
        assert!(out.status.success(), "{bin} --help failed");
        assert!(String::from_utf8_lossy(&out.stdout).contains("--scale"));
    }
}
