//! Printing and persisting experiment results.

use fedprox_core::History;
use serde::Serialize;
use std::fs;
use std::path::Path;

/// Print labelled convergence curves side by side — one row per evaluated
/// round, matching the series the paper plots (training loss and test
/// accuracy vs global iteration).
pub fn print_histories(title: &str, histories: &[(String, &History)]) {
    println!("\n== {title} ==");
    if histories.is_empty() {
        println!("(no runs)");
        return;
    }
    print!("{:>6}", "round");
    for (label, _) in histories {
        print!(" | {label:>22}");
    }
    println!();
    print!("{:>6}", "");
    for _ in histories {
        print!(" | {:>11} {:>10}", "loss", "acc");
    }
    println!();
    let max_records = histories.iter().map(|(_, h)| h.records.len()).max().unwrap_or(0);
    for i in 0..max_records {
        let round = histories
            .iter()
            .filter_map(|(_, h)| h.records.get(i).map(|r| r.round))
            .next()
            .unwrap_or(0);
        print!("{round:>6}");
        for (_, h) in histories {
            match h.records.get(i) {
                Some(r) => {
                    print!(" | {:>11.5} {:>9.2}%", r.train_loss, r.test_accuracy * 100.0)
                }
                None => print!(" | {:>11} {:>10}", "-", "-"),
            }
        }
        println!();
    }
    for (label, h) in histories {
        println!(
            "-- {label}: best acc {:.2}%, final loss {}, diverged: {}",
            h.best_accuracy() * 100.0,
            h.final_loss().map_or("n/a".into(), |l| format!("{l:.5}")),
            h.diverged()
        );
    }
}

/// Write any serializable value as pretty JSON under `dir/name.json`.
pub fn write_json<T: Serialize>(dir: &str, name: &str, value: &T) {
    let dir = Path::new(dir);
    if let Err(e) = fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_json_roundtrip() {
        let dir = std::env::temp_dir().join("fedprox-report-test");
        let dir_s = dir.to_str().unwrap();
        write_json(dir_s, "probe", &vec![1, 2, 3]);
        let read = std::fs::read_to_string(dir.join("probe.json")).unwrap();
        let back: Vec<i32> = serde_json::from_str(&read).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
