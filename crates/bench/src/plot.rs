//! Minimal SVG line charts for convergence curves — so the figure
//! binaries emit an actual figure next to the JSON series, with zero
//! plotting dependencies.

use fedprox_core::History;
use std::fmt::Write as _;

/// Which metric of a [`History`] to plot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Training loss (left axis of the paper's figures).
    TrainLoss,
    /// Test accuracy (right axis of the paper's figures).
    TestAccuracy,
    /// Stationarity gap `‖∇F̄‖²`.
    GradNormSq,
}

impl Metric {
    fn extract(&self, h: &History) -> Vec<(f64, f64)> {
        h.records
            .iter()
            .map(|r| {
                let y = match self {
                    Metric::TrainLoss => r.train_loss,
                    Metric::TestAccuracy => r.test_accuracy,
                    Metric::GradNormSq => r.grad_norm_sq,
                };
                (r.round as f64, y)
            })
            .filter(|(_, y)| y.is_finite())
            .collect()
    }

    fn label(&self) -> &'static str {
        match self {
            Metric::TrainLoss => "training loss",
            Metric::TestAccuracy => "test accuracy",
            Metric::GradNormSq => "||grad F||^2",
        }
    }
}

/// Chart geometry and options.
#[derive(Debug, Clone)]
pub struct PlotOptions {
    /// Total width in px.
    pub width: f64,
    /// Total height in px.
    pub height: f64,
    /// Plot the y axis in log10 (loss curves).
    pub log_y: bool,
    /// Chart title.
    pub title: String,
}

impl Default for PlotOptions {
    fn default() -> Self {
        PlotOptions { width: 640.0, height: 400.0, log_y: false, title: String::new() }
    }
}

const MARGIN_L: f64 = 60.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 46.0;
const PALETTE: [&str; 6] = ["#4363d8", "#e6194B", "#3cb44b", "#f58231", "#911eb4", "#469990"];

/// Render labelled histories as one SVG line chart.
pub fn render_svg(series: &[(String, &History)], metric: Metric, opts: &PlotOptions) -> String {
    let data: Vec<(String, Vec<(f64, f64)>)> = series
        .iter()
        .map(|(label, h)| (label.clone(), metric.extract(h)))
        .filter(|(_, pts)| !pts.is_empty())
        .collect();

    let mut svg = String::new();
    let (w, h) = (opts.width, opts.height);
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    if data.is_empty() {
        svg.push_str("<text x=\"20\" y=\"30\">no data</text></svg>");
        return svg;
    }

    // Bounds.
    let tx = |v: f64| v;
    let ty = |v: f64| if opts.log_y { v.max(1e-12).log10() } else { v };
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, pts) in &data {
        for &(x, y) in pts {
            x0 = x0.min(tx(x));
            x1 = x1.max(tx(x));
            y0 = y0.min(ty(y));
            y1 = y1.max(ty(y));
        }
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }
    let plot_w = w - MARGIN_L - MARGIN_R;
    let plot_h = h - MARGIN_T - MARGIN_B;
    let px = |x: f64| MARGIN_L + (tx(x) - x0) / (x1 - x0) * plot_w;
    let py = |y: f64| MARGIN_T + (1.0 - (ty(y) - y0) / (y1 - y0)) * plot_h;

    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_L,
        MARGIN_T + plot_h,
        MARGIN_L + plot_w,
        MARGIN_T + plot_h
    );
    let _ = write!(
        svg,
        r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="black"/>"#,
        MARGIN_L, MARGIN_T, MARGIN_L, MARGIN_T + plot_h
    );

    // Ticks (5 per axis).
    for i in 0..=4 {
        let fx = x0 + (x1 - x0) * i as f64 / 4.0;
        let sx = MARGIN_L + plot_w * i as f64 / 4.0;
        let _ = write!(
            svg,
            r#"<line x1="{sx}" y1="{}" x2="{sx}" y2="{}" stroke="black"/><text x="{sx}" y="{}" font-size="11" text-anchor="middle">{:.0}</text>"#,
            MARGIN_T + plot_h,
            MARGIN_T + plot_h + 5.0,
            MARGIN_T + plot_h + 18.0,
            fx
        );
        let fy = y0 + (y1 - y0) * i as f64 / 4.0;
        let sy = MARGIN_T + plot_h * (1.0 - i as f64 / 4.0);
        let label = if opts.log_y { format!("1e{fy:.1}") } else { format!("{fy:.3}") };
        let _ = write!(
            svg,
            r#"<line x1="{}" y1="{sy}" x2="{}" y2="{sy}" stroke="black"/><text x="{}" y="{}" font-size="11" text-anchor="end">{label}</text>"#,
            MARGIN_L - 5.0,
            MARGIN_L,
            MARGIN_L - 8.0,
            sy + 4.0
        );
    }

    // Axis labels and title.
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" font-size="13" text-anchor="middle">global round</text>"#,
        MARGIN_L + plot_w / 2.0,
        h - 8.0
    );
    let _ = write!(
        svg,
        r#"<text x="14" y="{}" font-size="13" text-anchor="middle" transform="rotate(-90 14 {})">{}</text>"#,
        MARGIN_T + plot_h / 2.0,
        MARGIN_T + plot_h / 2.0,
        metric.label()
    );
    if !opts.title.is_empty() {
        let _ = write!(
            svg,
            r#"<text x="{}" y="20" font-size="15" text-anchor="middle" font-weight="bold">{}</text>"#,
            w / 2.0,
            xml_escape(&opts.title)
        );
    }

    // Series.
    for (i, (label, pts)) in data.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for &(x, y) in pts {
            let _ = write!(path, "{:.2},{:.2} ", px(x), py(y));
        }
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
            path.trim_end()
        );
        // Legend entry.
        let ly = MARGIN_T + 14.0 * i as f64 + 6.0;
        let lx = MARGIN_L + plot_w - 150.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/><text x="{}" y="{}" font-size="11">{}</text>"#,
            lx + 18.0,
            lx + 24.0,
            ly + 4.0,
            xml_escape(label)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Write a chart beside the JSON output: `dir/name.svg`.
pub fn write_svg(
    dir: &str,
    name: &str,
    series: &[(String, &History)],
    metric: Metric,
    opts: &PlotOptions,
) {
    let svg = render_svg(series, metric, opts);
    let path = std::path::Path::new(dir).join(format!("{name}.svg"));
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, svg)) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        println!("wrote {}", path.display());
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_core::config::ConfigSummary;
    use fedprox_core::RoundRecord;

    fn history(losses: &[f64]) -> History {
        History {
            config: ConfigSummary {
                algorithm: "fedavg".into(),
                beta: 5.0,
                tau: 10,
                mu: 0.0,
                batch_size: 8,
                rounds: losses.len(),
                eta: 0.1,
                seed: 0,
                l1: 0.0,
                participation: 1.0,
                uniform_random_iterate: false,
            },
            records: losses
                .iter()
                .enumerate()
                .map(|(i, &l)| RoundRecord {
                    round: i,
                    train_loss: l,
                    test_accuracy: 1.0 - l / 10.0,
                    grad_norm_sq: l * l,
                    theta_measured: None,
                    sim_time: 0.0,
                    bytes: 0,
                    grad_evals: 0,
                })
                .collect(),
            divergence: fedprox_core::DivergenceCause::None,
            rounds_run: losses.len(),
            total_sim_time: 0.0,
            final_model: vec![],
            participation: Vec::new(),
        }
    }

    #[test]
    fn svg_structure_contains_series_and_axes() {
        let a = history(&[3.0, 2.0, 1.0, 0.5]);
        let b = history(&[3.0, 2.5, 2.0, 1.8]);
        let series = vec![("fedavg".to_string(), &a), ("fedproxvr<svrg>".to_string(), &b)];
        let svg = render_svg(
            &series,
            Metric::TrainLoss,
            &PlotOptions { title: "Fig 2 & friends".into(), ..Default::default() },
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("training loss"));
        assert!(svg.contains("global round"));
        // XML escaping in labels/titles.
        assert!(svg.contains("fedproxvr&lt;svrg&gt;"));
        assert!(svg.contains("Fig 2 &amp; friends"));
        assert!(!svg.contains("<svrg>"));
    }

    #[test]
    fn log_scale_handles_small_values() {
        let a = history(&[1.0, 0.1, 0.01, 0.001]);
        let series = vec![("x".to_string(), &a)];
        let svg = render_svg(
            &series,
            Metric::TrainLoss,
            &PlotOptions { log_y: true, ..Default::default() },
        );
        assert!(svg.contains("1e")); // log tick labels
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn empty_series_is_safe() {
        let svg = render_svg(&[], Metric::TestAccuracy, &PlotOptions::default());
        assert!(svg.contains("no data"));
    }

    #[test]
    fn nonfinite_points_are_dropped() {
        let mut a = history(&[1.0, 2.0]);
        a.records[1].train_loss = f64::INFINITY;
        let series = vec![("x".to_string(), &a)];
        let svg = render_svg(&series, Metric::TrainLoss, &PlotOptions::default());
        // Only one finite point — still renders without NaN coordinates.
        assert!(!svg.contains("NaN"));
        assert!(!svg.contains("inf"));
    }

    #[test]
    fn accuracy_metric_extracts_correct_field() {
        let a = history(&[5.0]);
        let pts = Metric::TestAccuracy.extract(&a);
        assert_eq!(pts, vec![(0.0, 0.5)]);
        let g = Metric::GradNormSq.extract(&a);
        assert_eq!(g, vec![(0.0, 25.0)]);
    }
}
