//! Federation builders for the paper's three datasets.
//!
//! Each builder reproduces the paper's protocol: power-law shard sizes in
//! the reported per-dataset range, two of ten labels per device (image
//! datasets), and a 75/25 train/test split with the test parts pooled.
//! For MNIST-like data, real IDX files are used automatically when found
//! under `data/mnist/` (see `fedprox_data::idx`).

use fedprox_core::Device;
use fedprox_data::images::{generate, ImageConfig};
use fedprox_data::partition::{power_law_sizes, PartitionSpec, Partitioner};
use fedprox_data::split::split_federation;
use fedprox_data::synthetic::{self, SyntheticConfig};
use fedprox_data::Dataset;
use std::path::Path;

/// A ready-to-train federation.
pub struct Federation {
    /// Devices with their shards.
    pub devices: Vec<Device>,
    /// Pooled test set.
    pub test: Dataset,
    /// Dataset name.
    pub name: &'static str,
}

impl Federation {
    fn from_shards(shards: Vec<Dataset>, seed: u64, name: &'static str) -> Self {
        let (train, test) = split_federation(&shards, seed ^ 0x75);
        let devices = train.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
        Federation { devices, test, name }
    }

    /// Export as the serializable [`fedprox_data::FederatedDataset`]
    /// bundle (e.g. to ship one generated federation to another tool).
    pub fn to_federated_dataset(&self) -> fedprox_data::FederatedDataset {
        fedprox_data::FederatedDataset {
            shards: self.devices.iter().map(|d| d.data.clone()).collect(),
            test: self.test.clone(),
            name: self.name.to_string(),
        }
    }

    /// Rebuild devices from an imported bundle.
    pub fn from_federated_dataset(fd: fedprox_data::FederatedDataset) -> (Vec<Device>, Dataset) {
        let devices =
            fd.shards.into_iter().enumerate().map(|(i, s)| Device::new(i, s)).collect();
        (devices, fd.test)
    }
}

/// Synthetic(α, β) federation (the paper's range [37, 3277] at paper
/// scale).
pub fn synthetic_federation(
    alpha: f64,
    beta: f64,
    devices: usize,
    min_size: usize,
    max_size: usize,
    seed: u64,
) -> Federation {
    let sizes = power_law_sizes(devices, min_size, max_size, 1.5, seed);
    let cfg = SyntheticConfig { alpha, beta, seed, ..Default::default() };
    Federation::from_shards(synthetic::generate(&cfg, &sizes), seed, "synthetic")
}

fn image_federation(
    img: ImageConfig,
    devices: usize,
    min_size: usize,
    max_size: usize,
    seed: u64,
    name: &'static str,
    real_dir: &str,
) -> Federation {
    // Prefer real IDX files when present.
    if let Ok(Some((train, _test))) = fedprox_data::idx::load_mnist_dir(Path::new(real_dir)) {
        let sizes = power_law_sizes(devices, min_size, max_size, 1.5, seed);
        let shards = Partitioner::new(
            PartitionSpec::LabelShards { sizes, labels_per_device: 2 },
            seed,
        )
        .partition(&train);
        return Federation::from_shards(shards, seed, name);
    }
    let sizes = power_law_sizes(devices, min_size, max_size, 1.5, seed);
    let total: usize = sizes.iter().sum();
    // Generate a pool ~2x the demand so 2-label sharding has headroom.
    let pool = generate(&img, (2 * total).max(200));
    let shards = Partitioner::new(
        PartitionSpec::LabelShards { sizes, labels_per_device: 2 },
        seed,
    )
    .partition(&pool);
    Federation::from_shards(shards, seed, name)
}

/// MNIST-like federation (paper range [454, 3939] at paper scale).
pub fn mnist_federation(
    devices: usize,
    min_size: usize,
    max_size: usize,
    seed: u64,
) -> Federation {
    image_federation(
        ImageConfig::mnist(seed),
        devices,
        min_size,
        max_size,
        seed,
        "mnist-like",
        "data/mnist",
    )
}

/// Fashion-MNIST-like federation (paper range [37, 1350] at paper scale).
pub fn fashion_federation(
    devices: usize,
    min_size: usize,
    max_size: usize,
    seed: u64,
) -> Federation {
    image_federation(
        ImageConfig::fashion(seed),
        devices,
        min_size,
        max_size,
        seed,
        "fashion-like",
        "data/fashion-mnist",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_federation_shapes() {
        let f = synthetic_federation(1.0, 1.0, 5, 20, 60, 3);
        assert_eq!(f.devices.len(), 5);
        assert!(!f.test.is_empty());
        assert_eq!(f.test.dim(), 60);
        for d in &f.devices {
            assert!(d.samples() >= 15); // 75% of 20
        }
    }

    #[test]
    fn image_federations_have_two_labels_per_device() {
        for f in [fashion_federation(6, 30, 80, 4), mnist_federation(6, 30, 80, 4)] {
            assert_eq!(f.devices.len(), 6);
            for d in &f.devices {
                assert!(
                    d.data.distinct_labels().len() <= 2,
                    "{}: device {} has labels {:?}",
                    f.name,
                    d.id,
                    d.data.distinct_labels()
                );
            }
            assert_eq!(f.test.dim(), 784);
        }
    }

    #[test]
    fn federated_dataset_roundtrip() {
        let f = synthetic_federation(1.0, 1.0, 4, 20, 50, 5);
        let bundle = f.to_federated_dataset();
        assert_eq!(bundle.num_devices(), 4);
        assert!((bundle.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Serialize → parse → rebuild.
        let json = serde_json::to_string(&bundle).unwrap();
        let back: fedprox_data::FederatedDataset = serde_json::from_str(&json).unwrap();
        let (devices, test) = Federation::from_federated_dataset(back);
        assert_eq!(devices.len(), f.devices.len());
        for (a, b) in devices.iter().zip(&f.devices) {
            assert_eq!(a.data.len(), b.data.len());
            assert_eq!(a.data.labels(), b.data.labels());
        }
        assert_eq!(test.len(), f.test.len());
    }

    #[test]
    fn deterministic_builders() {
        let a = synthetic_federation(0.5, 0.5, 3, 10, 30, 7);
        let b = synthetic_federation(0.5, 0.5, 3, 10, 30, 7);
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x.data, y.data);
        }
        assert_eq!(a.test, b.test);
    }
}
