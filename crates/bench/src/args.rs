//! Minimal CLI argument handling shared by the experiment binaries.

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Shape-preserving reduction: few devices, short horizon; finishes
    /// in seconds. The default.
    Small,
    /// The paper's sizes (100 devices for convex, 10 for CNN, T ≈ 800+).
    Paper,
}

/// Options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Scale preset.
    pub scale: Scale,
    /// Override the number of global rounds (applies after the preset).
    pub rounds: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Directory for JSON output (created if missing); `None` = print only.
    pub out: Option<String>,
    /// Write a fedtrace JSONL event trace to this path (requires the
    /// `telemetry` feature; warns and stays off otherwise). Default off.
    pub trace: Option<String>,
    /// Write a fedscope health JSONL trace (per-round `health` samples +
    /// typed `anomaly` events, readable by the `fedscope` binary) to this
    /// path. Same feature gate and warning path as `trace`. Default off.
    pub health: Option<String>,
    /// Write a fedprof span-tree profile (per-path `path_stat` records
    /// with self/total time and — with the counting allocator compiled
    /// in — bytes/allocs attribution, readable by the `fedprof` binary)
    /// to this path. Same feature gate and warning path as `trace`.
    /// Default off.
    pub prof: Option<String>,
    /// Write the correlated observability stream (run-ledger header +
    /// simulation events + post-mortem markers, readable by the
    /// `fedobs` binary) to this path. Same feature gate and warning
    /// path as `trace`. Default off.
    pub obs: Option<String>,
    /// Run on the simulated-network backend instead of the in-process
    /// parallel runner. Math is bit-identical (see
    /// `tests/bit_identical_backends`-style guarantees); the networked
    /// substrate additionally produces per-device timing, straggler-lag
    /// and wire-byte telemetry. Default off.
    pub net: bool,
    /// Tensor kernel selected by `--kernel` (`None` = leave the process
    /// default, tiled-par). All kernels are bitwise interchangeable, so
    /// this only changes speed — pair it with `--prof` to profile the
    /// same run under the naive reference and the tiled kernels.
    pub kernel: Option<fedprox_tensor::kernel::Kernel>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: Scale::Small,
            rounds: None,
            seed: 1,
            out: None,
            trace: None,
            health: None,
            prof: None,
            obs: None,
            net: false,
            kernel: None,
        }
    }
}

impl CommonArgs {
    /// The runner these flags select: the rayon-parallel in-process
    /// backend by default, the simulated network with `--net`.
    pub fn runner(&self) -> fedprox_core::RunnerKind {
        if self.net {
            fedprox_core::RunnerKind::Network(fedprox_core::config::NetRunnerOptions::default())
        } else {
            fedprox_core::RunnerKind::Parallel
        }
    }

    /// Canonical description of this invocation for the run ledger's
    /// config digest: every field that shapes the trajectory, in a
    /// fixed order. Two invocations with equal descriptions produce
    /// bitwise-identical runs (output paths deliberately excluded).
    pub fn describe(&self, program: &str) -> String {
        format!(
            "{program} scale={:?} rounds={:?} seed={} net={}",
            self.scale, self.rounds, self.seed, self.net
        )
    }
}

/// Parse `--scale small|paper`, `--rounds N`, `--seed N`, `--out DIR`,
/// `--trace PATH`, `--health PATH`, `--prof PATH`, `--obs PATH`,
/// `--net`, and
/// `--kernel reference|tiled|tiled-par` from an iterator of CLI
/// arguments (`--kernel` also applies the selection, process-wide).
/// Unknown flags abort with a usage message naming `program`.
// Exiting with a usage message is the intended CLI behaviour here, not
// a disguised panic path.
#[allow(clippy::exit)]
pub fn parse_args(program: &str, argv: impl Iterator<Item = String>) -> CommonArgs {
    let mut args = CommonArgs::default();
    let mut it = argv.peekable();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{program}: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => {
                args.scale = match value("--scale").as_str() {
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => {
                        eprintln!("{program}: unknown scale '{other}' (small|paper)");
                        std::process::exit(2);
                    }
                }
            }
            "--rounds" => {
                args.rounds = Some(value("--rounds").parse().unwrap_or_else(|_| {
                    eprintln!("{program}: --rounds must be an integer");
                    std::process::exit(2);
                }))
            }
            "--seed" => {
                args.seed = value("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("{program}: --seed must be an integer");
                    std::process::exit(2);
                })
            }
            "--out" => args.out = Some(value("--out")),
            "--kernel" => {
                use fedprox_tensor::kernel::Kernel;
                let k = match value("--kernel").as_str() {
                    "reference" => Kernel::Reference,
                    "tiled" => Kernel::Tiled,
                    "tiled-par" => Kernel::TiledParallel,
                    other => {
                        eprintln!(
                            "{program}: unknown kernel '{other}' (reference|tiled|tiled-par)"
                        );
                        std::process::exit(2);
                    }
                };
                // Applied immediately: the selector is process-global and
                // every experiment binary should honour the flag without
                // per-binary wiring.
                fedprox_tensor::kernel::set_kernel(k);
                args.kernel = Some(k);
            }
            "--trace" => args.trace = Some(value("--trace")),
            "--health" => args.health = Some(value("--health")),
            "--prof" => args.prof = Some(value("--prof")),
            "--obs" => args.obs = Some(value("--obs")),
            "--net" => args.net = true,
            "--help" | "-h" => {
                println!(
                    "usage: {program} [--scale small|paper] [--rounds N] [--seed N] [--out DIR] \
                     [--trace PATH] [--health PATH] [--prof PATH] [--obs PATH] [--net] \
                     [--kernel reference|tiled|tiled-par]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("{program}: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> CommonArgs {
        parse_args("test", v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.scale, Scale::Small);
        assert_eq!(a.rounds, None);
        assert_eq!(a.seed, 1);
        assert!(a.out.is_none());
        assert!(a.trace.is_none(), "--trace must default to off");
        assert!(a.health.is_none(), "--health must default to off");
        assert!(a.prof.is_none(), "--prof must default to off");
        assert!(a.obs.is_none(), "--obs must default to off");
        assert!(!a.net, "--net must default to off");
        assert!(matches!(a.runner(), fedprox_core::RunnerKind::Parallel));
    }

    #[test]
    fn full_flags() {
        let a = parse(&[
            "--scale", "paper", "--rounds", "42", "--seed", "9", "--out", "/tmp/x", "--trace",
            "/tmp/t.jsonl", "--health", "/tmp/h.jsonl", "--prof", "/tmp/p.jsonl", "--obs",
            "/tmp/o.jsonl", "--net",
        ]);
        assert_eq!(a.scale, Scale::Paper);
        assert_eq!(a.rounds, Some(42));
        assert_eq!(a.seed, 9);
        assert_eq!(a.out.as_deref(), Some("/tmp/x"));
        assert_eq!(a.trace.as_deref(), Some("/tmp/t.jsonl"));
        assert_eq!(a.health.as_deref(), Some("/tmp/h.jsonl"));
        assert_eq!(a.prof.as_deref(), Some("/tmp/p.jsonl"));
        assert_eq!(a.obs.as_deref(), Some("/tmp/o.jsonl"));
        assert!(a.net);
        assert!(matches!(a.runner(), fedprox_core::RunnerKind::Network(_)));
    }

    #[test]
    fn kernel_flag_selects_and_applies() {
        use fedprox_tensor::kernel::{self, Kernel};
        let before = kernel::active();
        let a = parse(&["--kernel", "reference"]);
        assert_eq!(a.kernel, Some(Kernel::Reference));
        assert_eq!(kernel::active(), Kernel::Reference);
        kernel::set_kernel(before);
    }
}
