//! `--trace` / `--health` support: arm the fedtrace collector for the
//! duration of a run, then drain the events once and fan them out — the
//! full event stream to the `--trace` JSONL (plus the aggregated per-run
//! summary tables), and just the `health` / `anomaly` events to the
//! `--health` JSONL for the `fedscope` binary.
//!
//! The session is a no-op when built without the `telemetry` feature —
//! it warns once per requested flag that it was ignored — and when no
//! path was given, so binaries can call it unconditionally.

/// Scoped tracing for one experiment run.
///
/// ```ignore
/// let trace = TraceSession::start_with_health(args.trace.as_deref(), args.health.as_deref());
/// // ... run the experiment ...
/// trace.finish(); // writes JSONL file(s) + prints the summary
/// ```
#[derive(Debug)]
pub struct TraceSession {
    path: Option<String>,
    health_path: Option<String>,
}

impl TraceSession {
    /// Arm the collector if a trace path was requested (and the
    /// instrumentation is compiled in). Equivalent to
    /// [`TraceSession::start_with_health`] with no health path.
    pub fn start(path: Option<&str>) -> Self {
        Self::start_with_health(path, None)
    }

    /// Arm the collector if either a full-trace or a health-trace path
    /// was requested (and the instrumentation is compiled in).
    pub fn start_with_health(path: Option<&str>, health: Option<&str>) -> Self {
        #[cfg(feature = "telemetry")]
        if path.is_some() || health.is_some() {
            fedprox_telemetry::collector::arm();
        }
        #[cfg(not(feature = "telemetry"))]
        for (flag, requested) in [("--trace", path.is_some()), ("--health", health.is_some())] {
            if requested {
                eprintln!(
                    "warning: {flag} ignored: telemetry instrumentation not compiled in \
                     (rebuild with `--features telemetry`)"
                );
            }
        }
        TraceSession { path: path.map(str::to_string), health_path: health.map(str::to_string) }
    }

    /// Whether this session is actually recording.
    pub fn active(&self) -> bool {
        cfg!(feature = "telemetry") && (self.path.is_some() || self.health_path.is_some())
    }

    /// Drain the collector once, write the requested JSONL file(s), and
    /// print the aggregated summary tables (full-trace sessions only).
    /// A no-op for inactive sessions.
    pub fn finish(self) {
        #[cfg(feature = "telemetry")]
        if self.path.is_some() || self.health_path.is_some() {
            use fedprox_telemetry::event::Event;
            use fedprox_telemetry::{collector, jsonl, summary};
            let events = collector::drain();
            collector::disarm();
            if let Some(path) = &self.path {
                match std::fs::write(path, jsonl::to_jsonl(&events)) {
                    Ok(()) => println!("trace: {} events written to {path}", events.len()),
                    Err(e) => eprintln!("trace: failed to write {path}: {e}"),
                }
                let report = summary::TelemetryReport::from_events(&events);
                print!("{}", report.render(10));
            }
            if let Some(path) = &self.health_path {
                let health: Vec<Event> = events
                    .iter()
                    .filter(|e| matches!(e, Event::Health { .. } | Event::Anomaly { .. }))
                    .cloned()
                    .collect();
                match std::fs::write(path, jsonl::to_jsonl(&health)) {
                    Ok(()) => println!(
                        "health: {} events written to {path} (inspect with `fedscope {path}`)",
                        health.len()
                    ),
                    Err(e) => eprintln!("health: failed to write {path}: {e}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; serialize the tests that arm it.
    #[cfg(feature = "telemetry")]
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "telemetry")]
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn inactive_without_path() {
        let t = TraceSession::start(None);
        assert!(!t.active());
        t.finish(); // must be a no-op either way
        let t2 = TraceSession::start_with_health(None, None);
        assert!(!t2.active());
        t2.finish();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn active_roundtrip_writes_jsonl() {
        let _serial = guard();
        let dir = std::env::temp_dir().join("fedprox_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let t = TraceSession::start(Some(&path_str));
        assert!(t.active());
        fedprox_telemetry::counter!("bench.test_marker", 3u32);
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            fedprox_telemetry::event::Event::Counter { name, value: 3 } if name == "bench.test_marker"
        )));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn health_file_contains_only_health_events() {
        let _serial = guard();
        use fedprox_telemetry::event::{AnomalyRule, Event};
        let dir = std::env::temp_dir().join("fedprox_health_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let t = TraceSession::start_with_health(None, Some(&path_str));
        assert!(t.active());
        fedprox_telemetry::counter!("bench.noise_marker", 1u32);
        fedprox_telemetry::collector::record_event(Event::Anomaly {
            round: 2,
            rule: AnomalyRule::LossGuard,
            device: None,
            value: 12.0,
            limit: 9.0,
        });
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        assert_eq!(events.len(), 1, "counters must be filtered out: {events:?}");
        assert!(matches!(events[0], Event::Anomaly { round: 2, .. }));
        std::fs::remove_file(&path).ok();
    }
}
