//! `--trace` support: arm the fedtrace collector for the duration of a
//! run, then drain the events to a JSONL file and print the aggregated
//! per-run summary (the same tables the standalone `fedtrace` binary
//! renders from a saved trace).
//!
//! The session is a no-op when built without the `telemetry` feature —
//! it warns once that the flag was ignored — and when no `--trace` path
//! was given, so binaries can call it unconditionally.

/// Scoped tracing for one experiment run.
///
/// ```ignore
/// let trace = TraceSession::start(args.trace.as_deref());
/// // ... run the experiment ...
/// trace.finish(); // writes JSONL + prints the summary
/// ```
#[derive(Debug)]
pub struct TraceSession {
    path: Option<String>,
}

impl TraceSession {
    /// Arm the collector if a trace path was requested (and the
    /// instrumentation is compiled in).
    pub fn start(path: Option<&str>) -> Self {
        #[cfg(feature = "telemetry")]
        if path.is_some() {
            fedprox_telemetry::collector::arm();
        }
        #[cfg(not(feature = "telemetry"))]
        if path.is_some() {
            eprintln!(
                "warning: --trace ignored: telemetry instrumentation not compiled in \
                 (rebuild with `--features telemetry`)"
            );
        }
        TraceSession { path: path.map(str::to_string) }
    }

    /// Whether this session is actually recording.
    pub fn active(&self) -> bool {
        cfg!(feature = "telemetry") && self.path.is_some()
    }

    /// Drain the collector, write the JSONL trace, and print the
    /// aggregated summary tables. A no-op for inactive sessions.
    pub fn finish(self) {
        #[cfg(feature = "telemetry")]
        if let Some(path) = &self.path {
            use fedprox_telemetry::{collector, jsonl, summary};
            let events = collector::drain();
            collector::disarm();
            match std::fs::write(path, jsonl::to_jsonl(&events)) {
                Ok(()) => println!("trace: {} events written to {path}", events.len()),
                Err(e) => eprintln!("trace: failed to write {path}: {e}"),
            }
            let report = summary::TelemetryReport::from_events(&events);
            print!("{}", report.render(10));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_without_path() {
        let t = TraceSession::start(None);
        assert!(!t.active());
        t.finish(); // must be a no-op either way
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn active_roundtrip_writes_jsonl() {
        let dir = std::env::temp_dir().join("fedprox_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let t = TraceSession::start(Some(&path_str));
        assert!(t.active());
        fedprox_telemetry::counter!("bench.test_marker", 3u32);
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            fedprox_telemetry::event::Event::Counter { name, value: 3 } if name == "bench.test_marker"
        )));
        std::fs::remove_file(&path).ok();
    }
}
