//! `--trace` / `--health` / `--prof` support: arm the fedtrace collector
//! for the duration of a run, then fan the recorded events out — the
//! full event stream to the `--trace` JSONL (plus the aggregated per-run
//! summary tables), the `health` / `anomaly` events to the `--health`
//! JSONL for the `fedscope` binary, and the span-tree `path_stat`
//! records to the `--prof` JSONL for the `fedprof` binary.
//!
//! A `--trace` session streams: the collector appends completed raw
//! records to the trace file incrementally (flushing on every round
//! end), so memory stays bounded on long runs and the file can be
//! tailed live; `finish` appends the aggregate tail. `--health` /
//! `--prof`-only sessions buffer in memory — their outputs are
//! aggregate-sized anyway.
//!
//! The session is a no-op when built without the `telemetry` feature —
//! it warns once per requested flag that it was ignored — and when no
//! path was given, so binaries can call it unconditionally.

/// Scoped tracing for one experiment run.
///
/// ```ignore
/// let trace = TraceSession::start_full(
///     args.trace.as_deref(), args.health.as_deref(), args.prof.as_deref());
/// // ... run the experiment ...
/// trace.finish(); // writes JSONL file(s) + prints the summary
/// ```
#[derive(Debug)]
pub struct TraceSession {
    path: Option<String>,
    health_path: Option<String>,
    prof_path: Option<String>,
    obs_path: Option<String>,
    /// Whether the streaming sink actually attached to `path` (only
    /// consulted by `finish`, which is compiled out without telemetry).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    streamed: bool,
}

/// What the run ledger records about this invocation. The config and
/// fault-plan descriptions are canonical strings (see
/// [`CommonArgs::describe`](crate::args::CommonArgs::describe));
/// `TraceSession` digests them (FNV-1a 64) into the [`RunMeta`] header
/// stitched into every JSONL sink, so any two output files can be
/// provably joined — or refused — offline.
///
/// [`RunMeta`]: fedprox_telemetry::event::Event::RunMeta
#[derive(Debug, Clone)]
pub struct RunInfo {
    /// Canonical config description (digested, never stored raw).
    pub config: String,
    /// Master seed.
    pub seed: u64,
    /// Canonical fault-plan description; empty for fault-free runs.
    pub faults: String,
}

impl RunInfo {
    /// A fault-free run's ledger identity.
    pub fn new(config: impl Into<String>, seed: u64) -> Self {
        RunInfo { config: config.into(), seed, faults: String::new() }
    }

    /// Attach a canonical fault-plan description.
    #[must_use]
    pub fn with_faults(mut self, faults: impl Into<String>) -> Self {
        self.faults = faults.into();
        self
    }

    /// The ledger header event for this run, digests applied. Public
    /// so fedperf can stamp the same identity into its reports.
    #[cfg(feature = "telemetry")]
    pub fn to_event(&self) -> fedprox_telemetry::event::Event {
        fedprox_telemetry::event::Event::RunMeta {
            version: 1,
            config: fedprox_obs::fnv64(&self.config),
            seed: self.seed,
            kernel: fedprox_tensor::kernel::active().name().to_string(),
            faults: fedprox_obs::fnv64(&self.faults),
            features: compiled_features(),
            crates: format!("fedprox={}", env!("CARGO_PKG_VERSION")),
        }
    }
}

/// Comma-joined compiled feature set of the bench binary, in a fixed
/// order (currently only `telemetry` can be on when this is reachable).
#[cfg(feature = "telemetry")]
fn compiled_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    if cfg!(feature = "telemetry") {
        feats.push("telemetry");
    }
    feats.join(",")
}

impl TraceSession {
    /// Arm the collector if a trace path was requested (and the
    /// instrumentation is compiled in). Equivalent to
    /// [`TraceSession::start_full`] with only a trace path.
    pub fn start(path: Option<&str>) -> Self {
        Self::start_full(path, None, None)
    }

    /// Arm the collector if either a full-trace or a health-trace path
    /// was requested. Equivalent to [`TraceSession::start_full`] with no
    /// profile path.
    pub fn start_with_health(path: Option<&str>, health: Option<&str>) -> Self {
        Self::start_full(path, health, None)
    }

    /// Arm the collector if any output path was requested (and the
    /// instrumentation is compiled in). With a trace path, also attach
    /// the collector's streaming sink; with the perfbench counting
    /// allocator compiled in, install it as the span allocation probe so
    /// profiles carry bytes/allocs per path.
    pub fn start_full(path: Option<&str>, health: Option<&str>, prof: Option<&str>) -> Self {
        Self::start_impl(path, health, prof, None, None)
    }

    /// Arm the collector with the full output fan-out plus the run
    /// ledger: `info`'s [`RunMeta`] header is recorded first, so it
    /// lands as the leading line of the streamed trace and is stitched
    /// into every extraction (`--health`, `--prof`, `--obs`) at
    /// [`finish`](TraceSession::finish). The experiment binaries all
    /// start their sessions through here.
    ///
    /// [`RunMeta`]: fedprox_telemetry::event::Event::RunMeta
    pub fn start_run(
        path: Option<&str>,
        health: Option<&str>,
        prof: Option<&str>,
        obs: Option<&str>,
        info: &RunInfo,
    ) -> Self {
        Self::start_impl(path, health, prof, obs, Some(info))
    }

    fn start_impl(
        path: Option<&str>,
        health: Option<&str>,
        prof: Option<&str>,
        obs: Option<&str>,
        info: Option<&RunInfo>,
    ) -> Self {
        #[cfg(feature = "telemetry")]
        let streamed = {
            let mut streamed = false;
            if path.is_some() || health.is_some() || prof.is_some() || obs.is_some() {
                fedprox_perfbench::alloc::install_telemetry_probe();
                fedprox_telemetry::collector::arm();
                if let Some(p) = path {
                    match fedprox_telemetry::collector::stream_to(p) {
                        Ok(()) => streamed = true,
                        Err(e) => eprintln!(
                            "trace: cannot stream to {p}: {e}; falling back to end-of-run write"
                        ),
                    }
                }
                // Record the ledger header first, before any run event:
                // streamed traces carry it as their first structured
                // line, and every extraction re-emits it as a header.
                if let Some(info) = info {
                    fedprox_telemetry::collector::record_event(info.to_event());
                }
            }
            streamed
        };
        #[cfg(not(feature = "telemetry"))]
        let streamed = false;
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = info;
            for (flag, requested) in [
                ("--trace", path.is_some()),
                ("--health", health.is_some()),
                ("--prof", prof.is_some()),
                ("--obs", obs.is_some()),
            ] {
                if requested {
                    eprintln!(
                        "warning: {flag} ignored: telemetry instrumentation not compiled in \
                         (rebuild with `--features telemetry`)"
                    );
                }
            }
        }
        TraceSession {
            path: path.map(str::to_string),
            health_path: health.map(str::to_string),
            prof_path: prof.map(str::to_string),
            obs_path: obs.map(str::to_string),
            streamed,
        }
    }

    /// Whether this session is actually recording.
    pub fn active(&self) -> bool {
        cfg!(feature = "telemetry")
            && (self.path.is_some()
                || self.health_path.is_some()
                || self.prof_path.is_some()
                || self.obs_path.is_some())
    }

    /// Drain the collector once, write the requested JSONL file(s), and
    /// print the aggregated summary tables (full-trace sessions only).
    /// Streamed sessions append the aggregate tail to the already-written
    /// file and re-read it so the summary covers the whole run. A no-op
    /// for inactive sessions.
    pub fn finish(self) {
        #[cfg(feature = "telemetry")]
        if self.active() {
            use fedprox_telemetry::event::Event;
            use fedprox_telemetry::{collector, jsonl, summary};
            let mut events = collector::drain();
            collector::disarm();
            if let Some(path) = &self.path {
                if self.streamed {
                    // The raw stream is already on disk; append the
                    // aggregate tail, then re-read the whole file so the
                    // summary (and the health/prof extractions below)
                    // see streamed events too.
                    use std::io::Write as _;
                    let appended = std::fs::OpenOptions::new()
                        .append(true)
                        .open(path)
                        .and_then(|mut f| f.write_all(jsonl::to_jsonl(&events).as_bytes()));
                    if let Err(e) = appended {
                        eprintln!("trace: failed to append aggregates to {path}: {e}");
                    }
                    match std::fs::read_to_string(path)
                        .map_err(|e| e.to_string())
                        .and_then(|t| jsonl::parse(&t).map_err(|e| e.to_string()))
                    {
                        Ok(all) => {
                            println!("trace: {} events written to {path} (streamed)", all.len());
                            events = all;
                        }
                        Err(e) => eprintln!("trace: failed to re-read {path}: {e}"),
                    }
                } else {
                    match std::fs::write(path, jsonl::to_jsonl(&events)) {
                        Ok(()) => println!("trace: {} events written to {path}", events.len()),
                        Err(e) => eprintln!("trace: failed to write {path}: {e}"),
                    }
                }
                let report = summary::TelemetryReport::from_events(&events);
                print!("{}", report.render(10));
            }
            if let Some(path) = &self.health_path {
                let health: Vec<Event> = events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            Event::RunMeta { .. } | Event::Health { .. } | Event::Anomaly { .. }
                        )
                    })
                    .cloned()
                    .collect();
                match std::fs::write(path, jsonl::to_jsonl(&health)) {
                    Ok(()) => println!(
                        "health: {} events written to {path} (inspect with `fedscope {path}`)",
                        health.len()
                    ),
                    Err(e) => eprintln!("health: failed to write {path}: {e}"),
                }
            }
            if let Some(path) = &self.prof_path {
                let prof: Vec<Event> = events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            Event::RunMeta { .. }
                                | Event::PathStat { .. }
                                | Event::TraceTruncated { .. }
                        )
                    })
                    .cloned()
                    .collect();
                match std::fs::write(path, jsonl::to_jsonl(&prof)) {
                    Ok(()) => println!(
                        "prof: {} span-tree paths written to {path} \
                         (inspect with `fedprof report {path}`)",
                        prof.len()
                    ),
                    Err(e) => eprintln!("prof: failed to write {path}: {e}"),
                }
            }
            if let Some(path) = &self.obs_path {
                // The correlated stream: ledger header + simulation and
                // health observations + post-mortem markers, in arrival
                // order — everything `fedobs` joins on, nothing
                // host-dependent.
                let obs: Vec<Event> = events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            Event::RunMeta { .. }
                                | Event::DeviceRound { .. }
                                | Event::Bytes { .. }
                                | Event::RoundEnd { .. }
                                | Event::Health { .. }
                                | Event::Anomaly { .. }
                                | Event::Participation { .. }
                                | Event::Postmortem { .. }
                        )
                    })
                    .cloned()
                    .collect();
                match std::fs::write(path, jsonl::to_jsonl(&obs)) {
                    Ok(()) => println!(
                        "obs: {} events written to {path} \
                         (inspect with `fedobs critpath {path}`)",
                        obs.len()
                    ),
                    Err(e) => eprintln!("obs: failed to write {path}: {e}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; serialize the tests that arm it.
    #[cfg(feature = "telemetry")]
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "telemetry")]
    fn guard() -> std::sync::MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn inactive_without_path() {
        let t = TraceSession::start(None);
        assert!(!t.active());
        t.finish(); // must be a no-op either way
        let t2 = TraceSession::start_with_health(None, None);
        assert!(!t2.active());
        t2.finish();
        let t3 = TraceSession::start_full(None, None, None);
        assert!(!t3.active());
        t3.finish();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn active_roundtrip_writes_jsonl() {
        let _serial = guard();
        let dir = std::env::temp_dir().join("fedprox_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let t = TraceSession::start(Some(&path_str));
        assert!(t.active());
        fedprox_telemetry::counter!("bench.test_marker", 3u32);
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        assert!(events.iter().any(|e| matches!(
            e,
            fedprox_telemetry::event::Event::Counter { name, value: 3 } if name == "bench.test_marker"
        )));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn health_file_contains_only_health_events() {
        let _serial = guard();
        use fedprox_telemetry::event::{AnomalyRule, Event};
        let dir = std::env::temp_dir().join("fedprox_health_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("h.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let t = TraceSession::start_with_health(None, Some(&path_str));
        assert!(t.active());
        fedprox_telemetry::counter!("bench.noise_marker", 1u32);
        fedprox_telemetry::collector::record_event(Event::Anomaly {
            round: 2,
            rule: AnomalyRule::LossGuard,
            device: None,
            value: 12.0,
            limit: 9.0,
        });
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        assert_eq!(events.len(), 1, "counters must be filtered out: {events:?}");
        assert!(matches!(events[0], Event::Anomaly { round: 2, .. }));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn prof_file_contains_path_stats() {
        let _serial = guard();
        use fedprox_telemetry::event::Event;
        let dir = std::env::temp_dir().join("fedprox_prof_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let t = TraceSession::start_full(None, None, Some(&path_str));
        assert!(t.active());
        {
            fedprox_telemetry::span!("bench", "outer");
            fedprox_telemetry::span!("bench", "inner");
        }
        fedprox_telemetry::counter!("bench.noise_marker", 1u32);
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        assert!(
            events.iter().all(|e| matches!(e, Event::PathStat { .. })),
            "prof file must carry only span-tree records: {events:?}"
        );
        assert!(events.iter().any(
            |e| matches!(e, Event::PathStat { path, .. } if path == "outer/inner")
        ));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn obs_file_carries_ledger_header_and_sim_events() {
        let _serial = guard();
        use fedprox_telemetry::event::Event;
        let dir = std::env::temp_dir().join("fedprox_obs_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("o.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let info = RunInfo::new("test config=1", 7).with_faults("crash 1:3");
        let t = TraceSession::start_run(None, None, None, Some(&path_str), &info);
        assert!(t.active());
        fedprox_telemetry::counter!("bench.noise_marker", 1u32);
        fedprox_telemetry::collector::record_event(Event::RoundEnd {
            round: 0,
            sim_time_s: 0.5,
        });
        fedprox_telemetry::collector::trigger_postmortem("quorum_skip", 1, Some(1));
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        // Header first, then the run events, marker included; counters
        // filtered out.
        assert!(
            matches!(&events[0], Event::RunMeta { seed: 7, faults, .. }
                if faults == &fedprox_obs::fnv64("crash 1:3")),
            "ledger header must lead the obs stream: {events:?}"
        );
        assert!(events.iter().any(|e| matches!(e, Event::RoundEnd { .. })));
        assert!(events.iter().any(
            |e| matches!(e, Event::Postmortem { round: 1, device: Some(1), .. })
        ));
        assert!(events.iter().all(|e| e.kind() != "counter"));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn health_and_prof_extractions_carry_the_header() {
        let _serial = guard();
        use fedprox_telemetry::event::Event;
        let dir = std::env::temp_dir().join("fedprox_header_stitch_test");
        std::fs::create_dir_all(&dir).unwrap();
        let hp = dir.join("h.jsonl");
        let pp = dir.join("p.jsonl");
        let info = RunInfo::new("stitch test", 3);
        let t = TraceSession::start_run(
            None,
            Some(hp.to_str().unwrap()),
            Some(pp.to_str().unwrap()),
            None,
            &info,
        );
        {
            fedprox_telemetry::span!("bench", "stitched_op");
        }
        t.finish();
        for path in [&hp, &pp] {
            let text = std::fs::read_to_string(path).unwrap();
            let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
            assert!(
                matches!(&events[0], Event::RunMeta { seed: 3, .. }),
                "{path:?} must lead with the ledger header: {events:?}"
            );
            std::fs::remove_file(path).ok();
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn streamed_trace_file_covers_the_whole_run() {
        let _serial = guard();
        use fedprox_telemetry::event::Event;
        let dir = std::env::temp_dir().join("fedprox_stream_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.jsonl");
        let path_str = path.to_str().unwrap().to_string();
        let t = TraceSession::start(Some(&path_str));
        assert!(t.active());
        {
            fedprox_telemetry::span!("bench", "streamed_op");
        }
        fedprox_telemetry::collector::record_event(Event::RoundEnd {
            round: 0,
            sim_time_s: 1.0,
        });
        // The round-end flush must have hit the disk mid-run.
        let mid = std::fs::read_to_string(&path).unwrap();
        assert!(!mid.is_empty(), "streaming sink wrote nothing before finish()");
        t.finish();
        let text = std::fs::read_to_string(&path).unwrap();
        let events = fedprox_telemetry::jsonl::parse(&text).unwrap();
        assert!(events.iter().any(|e| matches!(e, Event::RoundEnd { .. })));
        assert!(events.iter().any(|e| matches!(e, Event::Span { .. })));
        assert!(events.iter().any(|e| matches!(e, Event::PathStat { .. })));
        std::fs::remove_file(&path).ok();
    }
}
