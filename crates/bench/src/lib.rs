//! Shared plumbing for the experiment binaries that regenerate every
//! figure and table of the paper (see DESIGN.md §3 for the index).
//!
//! Each binary accepts `--scale small|paper` (default `small`): the
//! `paper` preset matches the paper's device counts, shard-size ranges and
//! round budgets; `small` is a shape-preserving reduction that finishes in
//! seconds and is what `cargo bench` and CI exercise. Results are printed
//! as aligned tables and, with `--out DIR`, written as JSON series.

// fedlint: allow(clippy-allow-sync) — crate-wide: the experiment harness is R1-exempt; aborting a figure run with context is its error policy
#![allow(clippy::unwrap_used, clippy::expect_used)]
#![warn(missing_docs)]

pub mod args;
pub mod datasets;
pub mod plot;
pub mod report;
pub mod spec;
pub mod trace;

pub use args::{parse_args, CommonArgs, Scale};
pub use datasets::{fashion_federation, mnist_federation, synthetic_federation, Federation};
pub use report::{print_histories, write_json};
pub use trace::{RunInfo, TraceSession};
