//! Declarative experiment specification for the `fedrun` CLI: a JSON
//! document describing dataset, model, algorithms and hyper-parameters,
//! runnable without writing Rust.

use crate::datasets::{fashion_federation, mnist_federation, synthetic_federation, Federation};
use fedprox_core::{Algorithm, FedConfig, History, RunnerKind};
use fedprox_models::{Cnn, CnnSpec, LossModel, Mlp, MultinomialLogistic};
use fedprox_optim::estimator::EstimatorKind;
use serde::{Deserialize, Serialize};

/// Which dataset to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum DatasetSpec {
    /// Synthetic(α, β).
    Synthetic {
        /// Model-heterogeneity α.
        alpha: f64,
        /// Feature-heterogeneity β.
        beta: f64,
    },
    /// MNIST-like images (or real files from `data/mnist`).
    Mnist,
    /// Fashion-MNIST-like images.
    Fashion,
}

/// Which model to train.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum ModelSpec {
    /// Multinomial logistic regression (dim inferred from the dataset).
    Logistic,
    /// One-hidden-layer MLP.
    Mlp {
        /// Hidden-layer width.
        hidden: usize,
    },
    /// The two-layer CNN; `preset` is "paper", "small", or "tiny".
    Cnn {
        /// Architecture preset name.
        preset: String,
    },
}

/// A full experiment specification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Dataset to build.
    pub dataset: DatasetSpec,
    /// Model to train.
    pub model: ModelSpec,
    /// Algorithm names (see [`parse_algorithm`]).
    pub algorithms: Vec<String>,
    /// Number of devices.
    pub devices: usize,
    /// Smallest shard.
    pub min_size: usize,
    /// Largest shard.
    pub max_size: usize,
    /// Step-size parameter β.
    #[serde(default = "default_beta")]
    pub beta: f64,
    /// Smoothness estimate L.
    #[serde(default = "default_smoothness")]
    pub smoothness: f64,
    /// Local iterations τ.
    #[serde(default = "default_tau")]
    pub tau: usize,
    /// Proximal penalty μ.
    #[serde(default = "default_mu")]
    pub mu: f64,
    /// Mini-batch size B.
    #[serde(default = "default_batch")]
    pub batch: usize,
    /// Global rounds T.
    #[serde(default = "default_rounds")]
    pub rounds: usize,
    /// Master seed.
    #[serde(default)]
    pub seed: u64,
    /// Evaluation cadence.
    #[serde(default = "default_eval_every")]
    pub eval_every: usize,
    /// Device participation fraction.
    #[serde(default = "default_participation")]
    pub participation: f64,
}

fn default_beta() -> f64 {
    5.0
}
fn default_smoothness() -> f64 {
    5.0
}
fn default_tau() -> usize {
    10
}
fn default_mu() -> f64 {
    0.1
}
fn default_batch() -> usize {
    8
}
fn default_rounds() -> usize {
    50
}
fn default_eval_every() -> usize {
    5
}
fn default_participation() -> f64 {
    1.0
}

/// Parse an algorithm name as printed by [`Algorithm::name`].
pub fn parse_algorithm(name: &str) -> Option<Algorithm> {
    Some(match name {
        "fedavg" => Algorithm::FedAvg,
        "fedprox" => Algorithm::FedProx,
        "fsvrg" => Algorithm::Fsvrg,
        "fedproxvr-svrg" => Algorithm::FedProxVr(EstimatorKind::Svrg),
        "fedproxvr-sarah" => Algorithm::FedProxVr(EstimatorKind::Sarah),
        "fedproxvr-sgd" => Algorithm::FedProxVr(EstimatorKind::Sgd),
        "fedproxvr-gd" => Algorithm::FedProxVr(EstimatorKind::FullGd),
        _ => return None,
    })
}

impl ExperimentSpec {
    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Build the federation this spec describes.
    pub fn build_federation(&self) -> Federation {
        match &self.dataset {
            DatasetSpec::Synthetic { alpha, beta } => synthetic_federation(
                *alpha,
                *beta,
                self.devices,
                self.min_size,
                self.max_size,
                self.seed,
            ),
            DatasetSpec::Mnist => {
                mnist_federation(self.devices, self.min_size, self.max_size, self.seed)
            }
            DatasetSpec::Fashion => {
                fashion_federation(self.devices, self.min_size, self.max_size, self.seed)
            }
        }
    }

    /// Build the model (needs the dataset's feature dim / class count).
    pub fn build_model(&self, dim: usize, classes: usize) -> Box<dyn LossModel> {
        match &self.model {
            ModelSpec::Logistic => Box::new(MultinomialLogistic::new(dim, classes)),
            ModelSpec::Mlp { hidden } => Box::new(Mlp::new(dim, *hidden, classes)),
            ModelSpec::Cnn { preset } => {
                let spec = match preset.as_str() {
                    "paper" => CnnSpec::paper(),
                    "mcmahan" => CnnSpec::paper_mcmahan(),
                    "small" => CnnSpec::small(),
                    "tiny" => CnnSpec::tiny(),
                    "tiny-hidden" => CnnSpec::tiny_hidden(),
                    other => {
                        panic!("unknown CNN preset '{other}' (paper|mcmahan|small|tiny|tiny-hidden)")
                    }
                };
                assert_eq!(
                    spec.in_ch * spec.side * spec.side,
                    dim,
                    "CNN preset '{preset}' expects {} inputs, dataset has {dim}",
                    spec.in_ch * spec.side * spec.side
                );
                Box::new(Cnn::new(spec))
            }
        }
    }

    /// Run every listed algorithm; returns `(name, history)` pairs.
    pub fn run(&self) -> Vec<(String, History)> {
        let fed = self.build_federation();
        let dim = fed.test.dim();
        let classes = fed.test.num_classes();
        let model = self.build_model(dim, classes);
        self.algorithms
            .iter()
            .map(|name| {
                let alg = parse_algorithm(name)
                    .unwrap_or_else(|| panic!("unknown algorithm '{name}'"));
                let cfg = FedConfig::new(alg)
                    .with_beta(self.beta)
                    .with_smoothness(self.smoothness)
                    .with_tau(self.tau)
                    .with_mu(self.mu)
                    .with_batch_size(self.batch)
                    .with_rounds(self.rounds)
                    .with_seed(self.seed)
                    .with_eval_every(self.eval_every)
                    .with_participation(self.participation)
                    .with_runner(RunnerKind::Parallel);
                let h =
                    fedprox_core::FederatedTrainer::new(&model, &fed.devices, &fed.test, cfg)
                        .run()
                        .unwrap_or_else(|e| panic!("running '{name}': {e}"));
                (name.clone(), h)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "dataset": {"kind": "synthetic", "alpha": 1.0, "beta": 1.0},
        "model": {"kind": "logistic"},
        "algorithms": ["fedavg", "fedproxvr-svrg"],
        "devices": 3,
        "min_size": 30,
        "max_size": 60,
        "rounds": 4,
        "eval_every": 2,
        "seed": 5
    }"#;

    #[test]
    fn parses_with_defaults() {
        let spec = ExperimentSpec::from_json(SPEC).unwrap();
        assert_eq!(spec.devices, 3);
        assert_eq!(spec.beta, 5.0); // default
        assert_eq!(spec.tau, 10); // default
        assert_eq!(spec.participation, 1.0);
    }

    #[test]
    fn runs_end_to_end() {
        let spec = ExperimentSpec::from_json(SPEC).unwrap();
        let results = spec.run();
        assert_eq!(results.len(), 2);
        for (name, h) in &results {
            assert!(!h.diverged(), "{name} diverged");
            assert_eq!(h.rounds_run, 4);
        }
    }

    #[test]
    fn algorithm_names_roundtrip() {
        for alg in [
            Algorithm::FedAvg,
            Algorithm::FedProx,
            Algorithm::Fsvrg,
            Algorithm::FedProxVr(EstimatorKind::Svrg),
            Algorithm::FedProxVr(EstimatorKind::Sarah),
        ] {
            assert_eq!(parse_algorithm(alg.name()), Some(alg));
        }
        assert_eq!(parse_algorithm("nope"), None);
    }

    #[test]
    fn rejects_unknown_algorithm() {
        let spec = ExperimentSpec {
            algorithms: vec!["bogus".into()],
            ..ExperimentSpec::from_json(SPEC).unwrap()
        };
        let r = std::panic::catch_unwind(|| spec.run());
        assert!(r.is_err());
    }

    #[test]
    fn mlp_spec_builds() {
        let mut spec = ExperimentSpec::from_json(SPEC).unwrap();
        spec.model = ModelSpec::Mlp { hidden: 8 };
        spec.rounds = 2;
        let results = spec.run();
        assert!(!results[0].1.diverged());
    }
}
