//! Figure 3: convergence of FedProxVR (SVRG / SARAH) vs FedAvg on the
//! non-convex task — the two-layer CNN on the MNIST-like dataset, B = 64,
//! 10 devices, under (β, τ) = (5, 10) and (7, 20).


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_bench::plot::{write_svg, Metric, PlotOptions};
use fedprox_bench::{
    mnist_federation, parse_args, print_histories, write_json, RunInfo, Scale, TraceSession,
};
use fedprox_core::{Algorithm, FedConfig, FederatedTrainer};
use fedprox_models::{Cnn, CnnSpec};
use fedprox_optim::estimator::EstimatorKind;

fn main() {
    let args = parse_args("fig3_nonconvex", std::env::args().skip(1));
    let info = RunInfo::new(args.describe("fig3_nonconvex"), args.seed);
    let trace = TraceSession::start_run(
        args.trace.as_deref(),
        args.health.as_deref(),
        args.prof.as_deref(),
        args.obs.as_deref(),
        &info,
    );
    // Paper scale: 10 devices, sizes [454, 3939], full 32/64-channel CNN.
    // Small: 6 devices, a scaled-down CNN (identical code paths).
    // Small scale keeps the paper's batch-to-shard ratio (see
    // fig2_convex): B = 16 on shards of 100–250 ≈ B = 64 on 454–3939.
    let (devices_n, lo, hi, rounds, eval_every, spec, batch) = match args.scale {
        Scale::Paper => (10, 454, 3939, 100, 5, CnnSpec::paper(), 64),
        Scale::Small => (5, 100, 250, 40, 10, CnnSpec::small(), 16),
    };
    let rounds = args.rounds.unwrap_or(rounds);

    let fed = mnist_federation(devices_n, lo, hi, args.seed);
    let model = Cnn::new(spec);
    println!(
        "mnist-like federation: {} devices, sizes [{}, {}], test {} samples, CNN dim {}",
        fed.devices.len(),
        fed.devices.iter().map(|d| d.samples()).min().unwrap(),
        fed.devices.iter().map(|d| d.samples()).max().unwrap(),
        fed.test.len(),
        fedprox_models::LossModel::dim(&model),
    );

    let settings: &[(f64, usize, &str)] = match args.scale {
        Scale::Paper => &[(5.0, 10, "(beta=5, tau=10)"), (7.0, 20, "(beta=7, tau=20)")],
        Scale::Small => &[(5.0, 10, "(beta=5, tau=10)"), (7.0, 15, "(beta=7, tau=15)")],
    };

    let algorithms = [
        Algorithm::FedAvg,
        Algorithm::FedProxVr(EstimatorKind::Svrg),
        Algorithm::FedProxVr(EstimatorKind::Sarah),
    ];

    for &(beta, tau, label) in settings {
        let mut results = Vec::new();
        for alg in algorithms {
            let cfg = FedConfig::new(alg)
                .with_beta(beta)
                .with_tau(tau)
                .with_mu(0.01)
                .with_batch_size(batch)
                .with_smoothness(4.0) // empirical curvature scale; η = 1/(4β)
                .with_rounds(rounds)
                .with_seed(args.seed)
                .with_eval_every(eval_every)
                .with_runner(args.runner());
            let h = FederatedTrainer::new(&model, &fed.devices, &fed.test, cfg).run().expect("run");
            results.push((alg.name().to_string(), h));
        }
        let refs: Vec<(String, &fedprox_core::History)> =
            results.iter().map(|(l, h)| (l.clone(), h)).collect();
        print_histories(&format!("Fig. 3 {label}, B={batch} (CNN)"), &refs);
        if let Some(dir) = &args.out {
            let safe = label.replace(['(', ')', '=', ',', ' '], "_");
            for (l, h) in &results {
                write_json(dir, &format!("fig3_{safe}_{l}"), h);
            }
            write_svg(
                dir,
                &format!("fig3_{safe}_loss"),
                &refs,
                Metric::TrainLoss,
                &PlotOptions { title: format!("Fig. 3 {label}: training loss"), ..Default::default() },
            );
            write_svg(
                dir,
                &format!("fig3_{safe}_acc"),
                &refs,
                Metric::TestAccuracy,
                &PlotOptions { title: format!("Fig. 3 {label}: test accuracy"), ..Default::default() },
            );
        }
    }
    trace.finish();
}
