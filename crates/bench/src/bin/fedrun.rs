//! `fedrun` — run a federated-learning experiment from a JSON spec.
//!
//! ```sh
//! cargo run --release -p fedprox-bench --bin fedrun -- spec.json [--out DIR]
//! ```
//!
//! Example spec:
//!
//! ```json
//! {
//!   "dataset": {"kind": "synthetic", "alpha": 1.0, "beta": 1.0},
//!   "model": {"kind": "logistic"},
//!   "algorithms": ["fedavg", "fedproxvr-svrg", "fedproxvr-sarah"],
//!   "devices": 10, "min_size": 40, "max_size": 150,
//!   "beta": 5.0, "tau": 10, "mu": 0.1, "batch": 8, "rounds": 60
//! }
//! ```

use fedprox_bench::report::{print_histories, write_json};
use fedprox_bench::spec::ExperimentSpec;
use fedprox_bench::{RunInfo, TraceSession};
use fedprox_core::History;

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!(
            "usage: fedrun SPEC.json [--out DIR] [--trace PATH] [--health PATH] [--prof PATH] \
             [--obs PATH]"
        );
        std::process::exit(2);
    };
    let mut out = None;
    let mut trace_path = None;
    let mut health_path = None;
    let mut prof_path = None;
    let mut obs_path = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next(),
            "--trace" => trace_path = args.next(),
            "--health" => health_path = args.next(),
            "--prof" => prof_path = args.next(),
            "--obs" => obs_path = args.next(),
            other => {
                eprintln!("fedrun: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    // Spec parsing happens before the trace session starts so the run
    // ledger can digest the full spec text (it IS the configuration).
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("fedrun: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let spec = ExperimentSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("fedrun: invalid spec: {e}");
        std::process::exit(2);
    });
    let info = RunInfo::new(format!("fedrun {text}"), spec.seed);
    let trace = TraceSession::start_run(
        trace_path.as_deref(),
        health_path.as_deref(),
        prof_path.as_deref(),
        obs_path.as_deref(),
        &info,
    );

    let results = spec.run();
    let refs: Vec<(String, &History)> =
        results.iter().map(|(n, h)| (n.clone(), h)).collect();
    print_histories(&format!("fedrun: {path}"), &refs);

    if let Some(dir) = out {
        for (name, h) in &results {
            write_json(&dir, &format!("fedrun_{name}"), h);
        }
    }
    trace.finish();
}
