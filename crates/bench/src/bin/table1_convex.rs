//! Table 1: best-hyper-parameter test accuracies on the convex task
//! (multinomial logistic regression, Fashion-MNIST-like), found by random
//! search per algorithm — reproducing the paper's search protocol.


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_bench::{fashion_federation, parse_args, write_json, RunInfo, Scale, TraceSession};
use fedprox_core::search::{random_search, SearchSpace};
use fedprox_core::{Algorithm, FedConfig};
use fedprox_models::MultinomialLogistic;
use fedprox_optim::estimator::EstimatorKind;

fn main() {
    let args = parse_args("table1_convex", std::env::args().skip(1));
    let info = RunInfo::new(args.describe("table1_convex"), args.seed);
    let trace = TraceSession::start_run(
        args.trace.as_deref(),
        args.health.as_deref(),
        args.prof.as_deref(),
        args.obs.as_deref(),
        &info,
    );
    let (devices_n, lo, hi, trials, space) = match args.scale {
        Scale::Paper => (
            100,
            37,
            1350,
            12,
            SearchSpace {
                taus: vec![10, 20],
                betas: vec![5.0, 7.0, 10.0],
                mus: vec![0.01, 0.1, 0.5],
                batches: vec![16, 32, 64],
                rounds: (600, 1000),
            },
        ),
        Scale::Small => (
            15,
            40,
            150,
            4,
            SearchSpace {
                taus: vec![5, 10, 20],
                betas: vec![5.0, 7.0],
                mus: vec![0.1, 0.5],
                batches: vec![4, 8],
                rounds: (40, 80),
            },
        ),
    };

    let fed = fashion_federation(devices_n, lo, hi, args.seed);
    let model = MultinomialLogistic::new(784, 10);
    // Empirical curvature scale (see fig2_convex for why not the
    // worst-case bound).
    let base = FedConfig::new(Algorithm::FedAvg)
        .with_smoothness(5.0)
        .with_eval_every(5);

    println!("Table 1: convex task (fashion-like), {trials} trials per algorithm");
    println!(
        "{:<20} {:>5} {:>6} {:>6} {:>5} {:>6} {:>10}",
        "Algorithm", "tau", "beta", "mu", "B", "T", "Accuracy"
    );
    let mut results = Vec::new();
    for alg in [
        Algorithm::FedAvg,
        Algorithm::FedProxVr(EstimatorKind::Svrg),
        Algorithm::FedProxVr(EstimatorKind::Sarah),
    ] {
        let r = random_search(
            &model, &fed.devices, &fed.test, alg, &space, trials, args.seed, &base,
        )
        .expect("search");
        let b = &r.best;
        println!(
            "{:<20} {:>5} {:>6} {:>6} {:>5} {:>6} {:>9.2}%",
            r.algorithm,
            b.tau,
            b.beta,
            b.mu,
            b.batch,
            b.rounds,
            b.accuracy * 100.0
        );
        results.push(r);
    }
    if let Some(dir) = &args.out {
        write_json(dir, "table1_convex", &results);
    }
    trace.finish();
}
