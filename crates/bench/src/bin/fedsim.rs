//! `fedsim` — drive the event-driven simulation backend
//! (`fedprox-sim`) over a lazily synthesized power-law population,
//! sampling K clients per round.
//!
//! ```sh
//! cargo run --release -p fedprox-bench --features telemetry --bin fedsim -- \
//!     --devices 1000000 --rounds 5 --sample k:64 --seed 7 --obs run.jsonl
//! ```
//!
//! The population never materializes: a sampled device's shard is
//! synthesized for its round and dropped afterwards, so resident memory
//! is bounded by the active set. With the `telemetry` feature the
//! counting allocator reports per-round allocation traffic, and
//! `--max-round-alloc-mib` turns it into a gate (rounds after the first;
//! round 1 pays one-off warmup such as the aggregation buffers), which
//! is how CI's `fedsim-smoke` stage proves the memory bound.
//!
//! Sampler specs: `full`, `k:K` (uniform-K), `frac:P` (uniform-⌈PN⌉),
//! `weighted:K` (inclusion ∝ device sample count), `bern:P`
//! (independent activation with 1/p-reweighted aggregation). Fault
//! flags address devices by **stable id** and use 1-based rounds,
//! exactly as in `fedresil`.

// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox_bench::report::write_json;
use fedprox_bench::spec::parse_algorithm;
use fedprox_bench::{RunInfo, TraceSession};
use fedprox_core::{FedConfig, RunnerKind, SamplerSpec, SimRunnerOptions};
use fedprox_data::partition::ZipfPopulation;
use fedprox_data::synthetic::{SyntheticConfig, SyntheticPool};
use fedprox_faults::{summarize, FaultPlan, QuorumPolicy, Resilience};
use fedprox_models::MultinomialLogistic;
use fedprox_sim::{LazyPopulation, Population, SimEngine};

// Exiting with a diagnostic is the intended CLI behaviour here, not a
// disguised panic path.
#[allow(clippy::exit)]
fn fail(msg: &str) -> ! {
    eprintln!("fedsim: {msg}");
    std::process::exit(2);
}

#[allow(clippy::exit)]
fn usage() -> ! {
    eprintln!(
        "usage: fedsim [--devices N] [--rounds T] [--seed S] [--algorithm NAME]\n\
         \x20             [--sample full|k:K|frac:P|weighted:K|bern:P] [--shards S]\n\
         \x20             [--min-size N] [--max-size N] [--zipf-alpha A]\n\
         \x20             [--compute-spread F] [--alpha A] [--beta B] [--tau T]\n\
         \x20             [--sec-per-grad-eval S] [--jitter J]\n\
         \x20             [--crash DEV:ROUND]... [--offline DEV:FROM:TO]...\n\
         \x20             [--slow DEV:MULT:FROM:TO]... [--deadline SECONDS]\n\
         \x20             [--quorum-weight F] [--quorum-count N]\n\
         \x20             [--out DIR] [--trace PATH] [--health PATH] [--prof PATH]\n\
         \x20             [--obs PATH] [--expect-sampled N] [--expect-skipped N]\n\
         \x20             [--expect-crashed N] [--max-round-alloc-mib MIB]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    match s.parse::<T>() {
        Ok(v) => v,
        Err(_) => fail(&format!("cannot parse {what} from '{s}'")),
    }
}

fn parts<'a>(spec: &'a str, n: usize, what: &str) -> Vec<&'a str> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != n {
        fail(&format!("{what} wants {n} ':'-separated fields, got '{spec}'"));
    }
    parts
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => fail(&format!("{flag} needs a value")),
    }
}

fn parse_sampler(spec: &str, devices: usize) -> SamplerSpec {
    if spec == "full" {
        return SamplerSpec::Full;
    }
    let p = parts(spec, 2, "--sample");
    match p[0] {
        "k" => SamplerSpec::UniformK(parse(p[1], "sample size")),
        "frac" => {
            let f: f64 = parse(p[1], "sample fraction");
            if !(0.0..=1.0).contains(&f) || f <= 0.0 {
                fail("--sample frac:P wants P in (0, 1]");
            }
            SamplerSpec::UniformK(((f * devices as f64).ceil() as usize).clamp(1, devices))
        }
        "weighted" => SamplerSpec::WeightedK(parse(p[1], "sample size")),
        "bern" => SamplerSpec::Bernoulli(parse(p[1], "activation probability")),
        other => fail(&format!("unknown sampler '{other}' (full|k|frac|weighted|bern)")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut devices = 100_000usize;
    let mut rounds = 5usize;
    let mut seed = 0u64;
    let mut algorithm = String::from("fedproxvr-svrg");
    let mut sample = String::from("k:64");
    let mut shards = 8usize;
    let mut min_size = 40usize;
    let mut max_size = 120usize;
    let mut zipf_alpha = 1.5f64;
    let mut compute_spread = 4.0f64;
    let mut alpha = 1.0f64;
    let mut beta = 1.0f64;
    let mut tau = 5usize;
    let mut sec_per_grad_eval = 1e-6f64;
    let mut jitter = 0.0f64;
    let mut plan = FaultPlan::new();
    let mut deadline = None;
    let mut quorum = QuorumPolicy::default();
    let mut resilient = false;
    let mut out = None;
    let mut trace_path = None;
    let mut health_path = None;
    let mut prof_path = None;
    let mut obs_path = None;
    let mut expect_sampled = None;
    let mut expect_skipped = None;
    let mut expect_crashed = None;
    let mut max_round_alloc_mib: Option<f64> = None;

    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--devices" => devices = parse(&next_value(&mut args, "--devices"), "device count"),
            "--rounds" => rounds = parse(&next_value(&mut args, "--rounds"), "round count"),
            "--seed" => seed = parse(&next_value(&mut args, "--seed"), "seed"),
            "--algorithm" => algorithm = next_value(&mut args, "--algorithm"),
            "--sample" => sample = next_value(&mut args, "--sample"),
            "--shards" => shards = parse(&next_value(&mut args, "--shards"), "shard count"),
            "--min-size" => min_size = parse(&next_value(&mut args, "--min-size"), "size"),
            "--max-size" => max_size = parse(&next_value(&mut args, "--max-size"), "size"),
            "--zipf-alpha" => {
                zipf_alpha = parse(&next_value(&mut args, "--zipf-alpha"), "exponent")
            }
            "--compute-spread" => {
                compute_spread = parse(&next_value(&mut args, "--compute-spread"), "spread")
            }
            "--alpha" => alpha = parse(&next_value(&mut args, "--alpha"), "alpha"),
            "--beta" => beta = parse(&next_value(&mut args, "--beta"), "beta"),
            "--tau" => tau = parse(&next_value(&mut args, "--tau"), "local steps"),
            "--sec-per-grad-eval" => {
                sec_per_grad_eval =
                    parse(&next_value(&mut args, "--sec-per-grad-eval"), "seconds")
            }
            "--jitter" => jitter = parse(&next_value(&mut args, "--jitter"), "jitter"),
            "--crash" => {
                let v = next_value(&mut args, "--crash");
                let p = parts(&v, 2, "--crash");
                plan = plan.crash(parse(p[0], "device"), parse(p[1], "round"));
                resilient = true;
            }
            "--offline" => {
                let v = next_value(&mut args, "--offline");
                let p = parts(&v, 3, "--offline");
                plan = plan.offline(
                    parse(p[0], "device"),
                    parse(p[1], "from-round"),
                    parse(p[2], "to-round"),
                );
                resilient = true;
            }
            "--slow" => {
                let v = next_value(&mut args, "--slow");
                let p = parts(&v, 4, "--slow");
                plan = plan.slow(
                    parse(p[0], "device"),
                    parse(p[1], "multiplier"),
                    parse(p[2], "from-round"),
                    parse(p[3], "to-round"),
                );
                resilient = true;
            }
            "--deadline" => {
                deadline = Some(parse(&next_value(&mut args, "--deadline"), "deadline"));
                resilient = true;
            }
            "--quorum-weight" => {
                quorum.min_weight =
                    parse(&next_value(&mut args, "--quorum-weight"), "weight fraction");
                resilient = true;
            }
            "--quorum-count" => {
                quorum.min_responders =
                    parse(&next_value(&mut args, "--quorum-count"), "responder count");
                resilient = true;
            }
            "--out" => out = Some(next_value(&mut args, "--out")),
            "--trace" => trace_path = Some(next_value(&mut args, "--trace")),
            "--health" => health_path = Some(next_value(&mut args, "--health")),
            "--prof" => prof_path = Some(next_value(&mut args, "--prof")),
            "--obs" => obs_path = Some(next_value(&mut args, "--obs")),
            "--expect-sampled" => {
                expect_sampled =
                    Some(parse::<usize>(&next_value(&mut args, "--expect-sampled"), "count"))
            }
            "--expect-skipped" => {
                expect_skipped =
                    Some(parse::<usize>(&next_value(&mut args, "--expect-skipped"), "count"))
            }
            "--expect-crashed" => {
                expect_crashed =
                    Some(parse::<usize>(&next_value(&mut args, "--expect-crashed"), "count"))
            }
            "--max-round-alloc-mib" => {
                max_round_alloc_mib =
                    Some(parse(&next_value(&mut args, "--max-round-alloc-mib"), "MiB"))
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag '{other}' (try --help)")),
        }
    }
    if devices == 0 || rounds == 0 {
        fail("--devices and --rounds must be positive");
    }
    let sampler = parse_sampler(&sample, devices);

    let info = RunInfo::new(
        format!(
            "fedsim devices={devices} rounds={rounds} seed={seed} \
             algorithm={algorithm} sample={sample} shards={shards} \
             zipf_alpha={zipf_alpha} sizes={min_size}..{max_size}"
        ),
        seed,
    )
    .with_faults(format!("{:?}", plan.faults));
    let trace = TraceSession::start_run(
        trace_path.as_deref(),
        health_path.as_deref(),
        prof_path.as_deref(),
        obs_path.as_deref(),
        &info,
    );

    let Some(alg) = parse_algorithm(&algorithm) else {
        fail(&format!("unknown algorithm '{algorithm}'"));
    };
    let zipf = ZipfPopulation::new(devices, min_size, max_size, zipf_alpha, compute_spread, seed);
    let total_samples = zipf.total_samples();
    let syn = SyntheticConfig { alpha, beta, seed, ..Default::default() };
    let model = MultinomialLogistic::new(syn.dim, syn.num_classes);
    let pool = SyntheticPool::new(syn);
    let population = Population::Lazy(LazyPopulation::new(zipf, pool));

    let mut cfg = FedConfig::new(alg)
        .with_rounds(rounds)
        .with_tau(tau)
        .with_seed(seed)
        .with_runner(RunnerKind::EventDriven(
            SimRunnerOptions::default()
                .with_sampler(sampler)
                .with_shards(shards)
                .with_sec_per_grad_eval(sec_per_grad_eval)
                .with_jitter(jitter),
        ));
    if resilient {
        let mut resilience = Resilience::with_plan(plan).with_quorum(quorum);
        if let Some(d) = deadline {
            resilience = resilience.with_deadline(d);
        }
        cfg = cfg.with_resilience(resilience);
    }

    println!(
        "== fedsim: {devices} devices ({total_samples} samples), {rounds} rounds, \
         sampler {sample}, seed {seed} =="
    );

    // Per-round allocation traffic from the perfbench counting allocator
    // (telemetry builds only). Cumulative alloc traffic, not residency —
    // the honest bound for "memory scales with the active set".
    #[cfg(feature = "telemetry")]
    let mut round_alloc_mib: Vec<f64> = Vec::with_capacity(rounds);
    #[cfg(feature = "telemetry")]
    let mut last_alloc = fedprox_perfbench::alloc::stats();

    let engine = SimEngine::new(&model, population, None, cfg);
    let h = engine
        .run_with(|stats| {
            #[cfg(feature = "telemetry")]
            {
                let now = fedprox_perfbench::alloc::stats();
                let mib = now.since(&last_alloc).bytes as f64 / (1024.0 * 1024.0);
                last_alloc = now;
                round_alloc_mib.push(mib);
                println!(
                    "round {:>4}: active {:>6}, sim time {:>10.3}s, alloc {:>9.2} MiB",
                    stats.round, stats.active, stats.sim_time, mib
                );
            }
            #[cfg(not(feature = "telemetry"))]
            println!(
                "round {:>4}: active {:>6}, sim time {:>10.3}s",
                stats.round, stats.active, stats.sim_time
            );
        })
        .expect("run");

    let s = summarize(&h.participation);
    println!(
        "-- {} rounds: {} skipped, {} crashed device(s), mean responding weight {:.6}, \
         {} deadline miss(es)",
        s.rounds, s.skipped_rounds, s.crashed_devices, s.mean_responder_weight, s.deadline_misses
    );
    println!("-- sim time {:.3}s, diverged: {}", h.total_sim_time, h.diverged());

    let mut bad = false;
    #[cfg(feature = "telemetry")]
    {
        // Round 1 pays one-off warmup (aggregation buffers, the event
        // loop's heaps); the steady-state bound starts at round 2.
        let peak =
            round_alloc_mib.iter().skip(1).fold(0.0f64, |m, &x| m.max(x));
        if round_alloc_mib.len() > 1 {
            println!("-- peak round alloc {peak:.2} MiB (rounds 2+)");
        }
        if let Some(cap) = max_round_alloc_mib {
            if !fedprox_perfbench::alloc::counting_enabled() {
                fail("--max-round-alloc-mib needs the counting allocator (count-alloc feature)");
            }
            if round_alloc_mib.len() > 1 && peak > cap {
                eprintln!("fedsim: peak round alloc {peak:.2} MiB exceeds cap {cap:.2} MiB");
                bad = true;
            }
        }
    }
    #[cfg(not(feature = "telemetry"))]
    if max_round_alloc_mib.is_some() {
        fail("--max-round-alloc-mib needs the telemetry feature (counting allocator)");
    }

    if let Some(dir) = out {
        write_json(&dir, &format!("fedsim_seed{seed}"), &h);
    }
    trace.finish();

    if let Some(want) = expect_sampled {
        for rec in &h.participation {
            let got = rec.sampled.as_ref().map_or(rec.outcomes.len(), Vec::len);
            if got != want {
                eprintln!("fedsim: round {} sampled {got} device(s), expected {want}", rec.round);
                bad = true;
            }
        }
        if h.participation.is_empty() {
            eprintln!("fedsim: --expect-sampled set but no participation was recorded");
            bad = true;
        }
    }
    if let Some(want) = expect_skipped {
        if s.skipped_rounds != want {
            eprintln!("fedsim: expected {want} skipped round(s), recorded {}", s.skipped_rounds);
            bad = true;
        }
    }
    if let Some(want) = expect_crashed {
        if s.crashed_devices != want {
            eprintln!("fedsim: expected {want} crashed device(s), recorded {}", s.crashed_devices);
            bad = true;
        }
    }
    if h.diverged() {
        eprintln!("fedsim: run diverged");
        bad = true;
    }
    #[allow(clippy::exit)]
    if bad {
        std::process::exit(1);
    }
}
