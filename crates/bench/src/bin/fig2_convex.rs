//! Figure 2: convergence of FedProxVR (SVRG / SARAH) vs FedAvg on the
//! convex task — multinomial logistic regression on the Fashion-MNIST-like
//! dataset, B = 32, under three hyper-parameter settings:
//! (β, τ) = (5, 10), (7, 20), and τ above its Lemma 1 upper bound.


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_bench::plot::{write_svg, Metric, PlotOptions};
use fedprox_bench::{
    fashion_federation, parse_args, print_histories, write_json, RunInfo, Scale, TraceSession,
};
use fedprox_core::theory::Lemma1;
use fedprox_core::{Algorithm, FedConfig, FederatedTrainer};
use fedprox_models::MultinomialLogistic;
use fedprox_optim::estimator::EstimatorKind;

fn main() {
    let args = parse_args("fig2_convex", std::env::args().skip(1));
    let info = RunInfo::new(args.describe("fig2_convex"), args.seed);
    let trace = TraceSession::start_run(
        args.trace.as_deref(),
        args.health.as_deref(),
        args.prof.as_deref(),
        args.obs.as_deref(),
        &info,
    );
    // Paper scale: 100 devices, shard sizes [37, 1350], B = 32, T ≈ 200
    // evaluated rounds. Small scale keeps the *batch-to-shard ratio* of
    // the paper (B ≈ 2–8% of a shard) — that ratio controls the gradient
    // noise that variance reduction exists to remove, so shrinking shards
    // without shrinking B would silently erase the effect under study.
    let (devices_n, lo, hi, rounds, eval_every, batch) = match args.scale {
        Scale::Paper => (100, 37, 1350, 200, 5, 32),
        Scale::Small => (20, 40, 150, 120, 5, 4),
    };
    let rounds = args.rounds.unwrap_or(rounds);

    let fed = fashion_federation(devices_n, lo, hi, args.seed);
    let model = MultinomialLogistic::new(784, 10);
    // The step size η = 1/(βL) uses an *empirical* curvature scale, not
    // the worst-case bound `smoothness_bound` (≈ max‖x‖²/2 ≈ 75 for these
    // images), which would make η so small that all algorithms crawl
    // identically. L = 5 is tuned once on the baseline, exactly as the
    // paper tunes η implicitly through its β grid.
    let smoothness = 5.0;
    println!(
        "fashion-like federation: {} devices, sizes [{}, {}], test {} samples, L = {smoothness}",
        fed.devices.len(),
        fed.devices.iter().map(|d| d.samples()).min().unwrap(),
        fed.devices.iter().map(|d| d.samples()).max().unwrap(),
        fed.test.len()
    );

    // (β, τ) settings; the third deliberately violates the Lemma 1 upper
    // bound to reproduce the paper's fluctuation observation.
    let beyond = (Lemma1::tau_upper_sarah(7.0) as usize) + 15;
    let settings = [(5.0, 10usize, "(beta=5, tau=10)"), (7.0, 20, "(beta=7, tau=20)"), (7.0, beyond, "tau above bound")];

    let algorithms = [
        Algorithm::FedAvg,
        Algorithm::FedProxVr(EstimatorKind::Svrg),
        Algorithm::FedProxVr(EstimatorKind::Sarah),
    ];

    for (beta, tau, label) in settings {
        let mut results = Vec::new();
        for alg in algorithms {
            let cfg = FedConfig::new(alg)
                .with_beta(beta)
                .with_tau(tau)
                .with_mu(0.1)
                .with_batch_size(batch)
                .with_smoothness(smoothness)
                .with_rounds(rounds)
                .with_seed(args.seed)
                .with_eval_every(eval_every)
                .with_runner(args.runner());
            let h = FederatedTrainer::new(&model, &fed.devices, &fed.test, cfg).run().expect("run");
            results.push((alg.name().to_string(), h));
        }
        let refs: Vec<(String, &fedprox_core::History)> =
            results.iter().map(|(l, h)| (l.clone(), h)).collect();
        print_histories(&format!("Fig. 2 {label}, B={batch}"), &refs);
        if let Some(dir) = &args.out {
            let safe = label.replace(['(', ')', '=', ',', ' '], "_");
            for (l, h) in &results {
                write_json(dir, &format!("fig2_{safe}_{l}"), h);
            }
            write_svg(
                dir,
                &format!("fig2_{safe}_loss"),
                &refs,
                Metric::TrainLoss,
                &PlotOptions { title: format!("Fig. 2 {label}: training loss"), ..Default::default() },
            );
            write_svg(
                dir,
                &format!("fig2_{safe}_acc"),
                &refs,
                Metric::TestAccuracy,
                &PlotOptions { title: format!("Fig. 2 {label}: test accuracy"), ..Default::default() },
            );
        }
    }
    trace.finish();
}
