//! Table 2: best-hyper-parameter test accuracies on the non-convex task
//! (two-layer CNN, MNIST-like), found by random search per algorithm.


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_bench::{mnist_federation, parse_args, write_json, RunInfo, Scale, TraceSession};
use fedprox_core::search::{random_search, SearchSpace};
use fedprox_core::{Algorithm, FedConfig};
use fedprox_models::{Cnn, CnnSpec};
use fedprox_optim::estimator::EstimatorKind;

fn main() {
    let args = parse_args("table2_nonconvex", std::env::args().skip(1));
    let info = RunInfo::new(args.describe("table2_nonconvex"), args.seed);
    let trace = TraceSession::start_run(
        args.trace.as_deref(),
        args.health.as_deref(),
        args.prof.as_deref(),
        args.obs.as_deref(),
        &info,
    );
    let (devices_n, lo, hi, trials, spec, space) = match args.scale {
        Scale::Paper => (
            10,
            454,
            3939,
            8,
            CnnSpec::paper(),
            SearchSpace {
                taus: vec![10, 20],
                betas: vec![5.0, 7.0, 9.0, 10.0],
                mus: vec![0.01, 0.1],
                batches: vec![16, 32, 64],
                rounds: (600, 1000),
            },
        ),
        Scale::Small => (
            4,
            20,
            50,
            3,
            CnnSpec::tiny(),
            SearchSpace {
                taus: vec![3, 5],
                betas: vec![5.0, 7.0],
                mus: vec![0.01, 0.1],
                batches: vec![8, 16],
                rounds: (8, 15),
            },
        ),
    };

    let fed = mnist_federation(devices_n, lo, hi, args.seed);
    // The tiny spec classifies 3 classes; remap labels for the small run.
    let (devices, test, model) = if spec.classes < 10 {
        let remap = |d: &fedprox_data::Dataset| {
            let side_dim = spec.side * spec.side;
            let feats: Vec<f64> = (0..d.len())
                .flat_map(|i| {
                    // Downsample 28x28 → side x side by strided picking.
                    let stride = 28 / spec.side;
                    let x = d.x(i);
                    (0..side_dim).map(move |j| {
                        let (r, c) = (j / spec.side, j % spec.side);
                        x[(r * stride) * 28 + c * stride]
                    })
                })
                .collect();
            let labels: Vec<f64> =
                (0..d.len()).map(|i| (d.class_of(i) % spec.classes) as f64).collect();
            fedprox_data::Dataset::new(
                fedprox_tensor::Matrix::from_vec(d.len(), side_dim, feats),
                labels,
                spec.classes,
            )
        };
        let devices: Vec<fedprox_core::Device> = fed
            .devices
            .iter()
            .map(|d| fedprox_core::Device::new(d.id, remap(&d.data)))
            .collect();
        (devices, remap(&fed.test), Cnn::new(spec))
    } else {
        (fed.devices, fed.test, Cnn::new(spec))
    };

    let base = FedConfig::new(Algorithm::FedAvg)
        .with_smoothness(2.0)
        .with_eval_every(4);

    println!("Table 2: non-convex task (CNN, mnist-like), {trials} trials per algorithm");
    println!(
        "{:<20} {:>5} {:>6} {:>6} {:>5} {:>6} {:>10}",
        "Algorithm", "tau", "beta", "mu", "B", "T", "Accuracy"
    );
    let mut results = Vec::new();
    for alg in [
        Algorithm::FedAvg,
        Algorithm::FedProxVr(EstimatorKind::Svrg),
        Algorithm::FedProxVr(EstimatorKind::Sarah),
    ] {
        let r = random_search(&model, &devices, &test, alg, &space, trials, args.seed, &base)
            .expect("search");
        let b = &r.best;
        println!(
            "{:<20} {:>5} {:>6} {:>6} {:>5} {:>6} {:>9.2}%",
            r.algorithm,
            b.tau,
            b.beta,
            b.mu,
            b.batch,
            b.rounds,
            b.accuracy * 100.0
        );
        results.push(r);
    }
    if let Some(dir) = &args.out {
        write_json(dir, "table2_nonconvex", &results);
    }
    trace.finish();
}
