//! Figure 4: the effect of the proximal penalty μ on FedProxVR's
//! convergence, on the Synthetic dataset (convex task).
//!
//! The paper observes: μ = 0 diverges; μ > 0 stabilises the loss; and
//! overly large μ slows convergence — the smoothness/speed trade-off of
//! Remark 2(2). Two ingredients expose the μ = 0 divergence: an
//! aggressive step size (β below Lemma 1's feasible range) and — crucial —
//! Algorithm 1's own uniform-random iterate selection (line 10): at μ = 0
//! the inner iterates oscillate, a random one may land anywhere on the
//! oscillation, and aggregation variance explodes. The proximal anchor
//! damps the oscillation amplitude, restoring convergence monotonically
//! in μ.


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_bench::plot::{write_svg, Metric, PlotOptions};
use fedprox_bench::{
    parse_args, print_histories, synthetic_federation, write_json, RunInfo, Scale, TraceSession,
};
use fedprox_core::{Algorithm, FedConfig, FederatedTrainer};
use fedprox_models::MultinomialLogistic;
use fedprox_optim::estimator::EstimatorKind;
use fedprox_optim::solver::IterateChoice;

fn main() {
    let args = parse_args("fig4_mu_effect", std::env::args().skip(1));
    let info = RunInfo::new(args.describe("fig4_mu_effect"), args.seed);
    let trace = TraceSession::start_run(
        args.trace.as_deref(),
        args.health.as_deref(),
        args.prof.as_deref(),
        args.obs.as_deref(),
        &info,
    );
    let (devices_n, lo, hi, rounds, eval_every) = match args.scale {
        Scale::Paper => (100, 37, 3277, 200, 5),
        Scale::Small => (10, 30, 120, 50, 1),
    };
    let rounds = args.rounds.unwrap_or(rounds);

    // Heavy heterogeneity (alpha = beta = 1) as in the paper's Synthetic.
    let fed = synthetic_federation(1.0, 1.0, devices_n, lo, hi, args.seed);
    let model = MultinomialLogistic::new(60, 10);
    println!(
        "synthetic(1,1) federation: {} devices, sizes [{}, {}]",
        fed.devices.len(),
        fed.devices.iter().map(|d| d.samples()).min().unwrap(),
        fed.devices.iter().map(|d| d.samples()).max().unwrap(),
    );

    let mus = [0.0, 0.1, 0.5, 1.0, 2.0];
    let seeds: Vec<u64> = (0..3).map(|k| args.seed + k).collect();
    let mut results = Vec::new();
    for &mu in &mus {
        for &seed in &seeds {
            let cfg = FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
                .with_beta(1.0) // aggressive: η = 1/L, outside Lemma 1's β > 3
                .with_tau(30)
                .with_mu(mu)
                .with_batch_size(16)
                .with_smoothness(1.0) // deliberately optimistic L estimate
                .with_rounds(rounds)
                .with_seed(seed)
                .with_eval_every(eval_every)
                .with_iterate_choice(IterateChoice::UniformRandom) // Alg. 1 line 10
                .with_runner(args.runner());
            let h = FederatedTrainer::new(&model, &fed.devices, &fed.test, cfg).run().expect("run");
            results.push((format!("mu={mu}/s{seed}"), h));
        }
    }

    // Print the first seed's curves (the figure), then summarise across
    // seeds (the aggressive regime is chaotic, so per-seed finals are
    // noisy — the paper's monotone story lives in the medians).
    let refs: Vec<(String, &fedprox_core::History)> = results
        .iter()
        .filter(|(l, _)| l.ends_with(&format!("/s{}", args.seed)))
        .map(|(l, h)| (l.clone(), h))
        .collect();
    print_histories("Fig. 4: effect of proximal penalty mu (Synthetic, SVRG)", &refs);

    println!(
        "\nSummary across {} seeds (tail = mean of last 10 evaluated losses):",
        seeds.len()
    );
    let baseline = results[0].1.records.first().map_or(f64::NAN, |r| r.train_loss);
    for &mu in &mus {
        let mut tails: Vec<f64> = results
            .iter()
            .filter(|(l, _)| l.starts_with(&format!("mu={mu}/")))
            .map(|(_, h)| {
                let tail: Vec<f64> =
                    h.records.iter().rev().take(10).map(|r| r.train_loss).collect();
                fedprox_tensor::vecops::mean(&tail)
            })
            .collect();
        tails.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = tails[tails.len() / 2];
        let worst = *tails.last().unwrap();
        let verdict = if !median.is_finite() || median > baseline {
            "DIVERGED"
        } else if worst > baseline {
            "UNSTABLE (worst seed diverges)"
        } else {
            "converged"
        };
        println!(
            "  mu={mu:>4}: baseline {baseline:.3} -> median tail {median:.4}, worst {worst:.4}  [{verdict}]"
        );
    }

    if let Some(dir) = &args.out {
        for (l, h) in &results {
            write_json(dir, &format!("fig4_{}", l.replace(['.', '/'], "_")), h);
        }
        write_svg(
            dir,
            "fig4_mu_effect_loss",
            &refs,
            Metric::TrainLoss,
            &PlotOptions {
                title: "Fig. 4: training loss vs mu (seed 1)".into(),
                ..Default::default()
            },
        );
    }
    trace.finish();
}
