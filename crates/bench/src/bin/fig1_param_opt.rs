//! Figure 1: the effect of the weight factor γ = d_cmp/d_com on the
//! optimal FedProxVR parameters (β*, μ*, θ*, Θ*) from problem (23),
//! for σ̄² ∈ {0.1, 1, 10} with L = 1, λ = 0.5.
//!
//! Also prints a Lemma 1 sanity panel (`--check-lemma1` effect is always
//! on): τ bounds at representative β and the β_min/τ solution of
//! eqs. (15)/(16).

use fedprox_bench::{parse_args, write_json, RunInfo, TraceSession};
use fedprox_core::paramopt::{self, OptimalParams};
use fedprox_core::theory::{Lemma1, TheoryParams};

fn main() {
    let args = parse_args("fig1_param_opt", std::env::args().skip(1));
    // No federated training happens here (pure theory evaluation), but
    // the flags behave uniformly across all experiment binaries.
    let info = RunInfo::new(args.describe("fig1_param_opt"), args.seed);
    let trace = TraceSession::start_run(
        args.trace.as_deref(),
        args.health.as_deref(),
        args.prof.as_deref(),
        args.obs.as_deref(),
        &info,
    );

    // The γ axis of Fig. 1 (log-spaced).
    let gammas: Vec<f64> = (0..=16).map(|i| 10f64.powf(-4.0 + i as f64 * 0.25)).collect();
    let sigmas = [0.1, 1.0, 10.0];

    println!("Figure 1: optimal parameters of problem (23) vs gamma (L=1, lambda=0.5)");
    let mut all: Vec<OptimalParams> = Vec::new();
    for &s2 in &sigmas {
        let base = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: f64::NAN, sigma_bar_sq: s2 };
        println!("\n-- sigma_bar^2 = {s2}");
        println!(
            "{:>10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>14}",
            "gamma", "beta*", "mu*", "theta*", "tau*", "Theta*", "objective"
        );
        for &gamma in &gammas {
            match paramopt::solve(&base, gamma) {
                Some(o) => {
                    println!(
                        "{:>10.4e} {:>10.3} {:>10.3} {:>10.4} {:>10.1} {:>12.5} {:>14.4e}",
                        gamma, o.beta, o.mu, o.theta, o.tau, o.capital_theta, o.objective
                    );
                    all.push(o);
                }
                None => println!("{gamma:>10.4e} {:>10}", "infeasible"),
            }
        }
    }

    // Lemma 1 sanity panel.
    println!("\nLemma 1 sanity (sigma^2 = 1, mu = 2, theta = 0.3):");
    let p = TheoryParams { smoothness: 1.0, lambda: 0.5, mu: 2.0, sigma_bar_sq: 1.0 };
    println!(
        "{:>8} {:>16} {:>16} {:>16}",
        "beta", "tau_lower", "tau_upper_sarah", "tau_upper_svrg"
    );
    for beta in [5.0, 10.0, 20.0, 50.0, 100.0] {
        let lo = Lemma1::tau_lower(&p, beta, 0.3).map_or("-".into(), |v| format!("{v:.1}"));
        println!(
            "{:>8} {:>16} {:>16.1} {:>16.1}",
            beta,
            lo,
            Lemma1::tau_upper_sarah(beta),
            Lemma1::tau_upper_svrg(beta)
        );
    }
    if let Some(bs) = Lemma1::beta_min_sarah(&p, 0.3, 1e5) {
        println!("beta_min (eq. 15) = {:.3}, tau (eq. 16) = {:.1}", bs.beta, bs.tau);
    }

    if let Some(dir) = &args.out {
        write_json(dir, "fig1_param_opt", &all);
    }
    trace.finish();
}
