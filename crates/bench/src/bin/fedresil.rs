//! `fedresil` — run a seeded fault-injection scenario and report how the
//! run degraded: per-round participation, skipped rounds, crashed
//! devices, and the usual convergence curve.
//!
//! ```sh
//! cargo run --release -p fedprox-bench --bin fedresil -- \
//!     --devices 4 --rounds 6 --seed 11 --crash 1:3 --flaky 2:0.2:1:6
//! ```
//!
//! Fault flags are repeatable and use 1-based global rounds, matching
//! the fault-schedule DSL:
//!
//! * `--crash DEV:ROUND` — device dies permanently at ROUND,
//! * `--offline DEV:FROM:TO` — device sits out rounds FROM..=TO,
//! * `--slow DEV:MULT:FROM:TO` — compute multiplier over a window,
//! * `--flaky DEV:PROB:FROM:TO` — per-attempt link drop probability,
//! * `--random-plan` — a seeded random plan over the whole horizon.
//!
//! `--expect-crashed N` / `--expect-skipped N` turn the run into a
//! check: the process exits non-zero when the recorded participation
//! disagrees, which is how CI's `fedresil-smoke` stage uses it.


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_bench::report::write_json;
use fedprox_bench::spec::parse_algorithm;
use fedprox_bench::{synthetic_federation, RunInfo, TraceSession};
use fedprox_core::config::NetRunnerOptions;
use fedprox_core::{FedConfig, RunnerKind};
use fedprox_faults::{summarize, FaultPlan, FaultRates, QuorumPolicy, Resilience, RetryPolicy};
use fedprox_models::MultinomialLogistic;
use fedprox_net::NetOptions;

// Exiting with a diagnostic is the intended CLI behaviour here, not a
// disguised panic path.
#[allow(clippy::exit)]
fn fail(msg: &str) -> ! {
    eprintln!("fedresil: {msg}");
    std::process::exit(2);
}

#[allow(clippy::exit)]
fn usage() -> ! {
    eprintln!(
        "usage: fedresil [--devices N] [--rounds T] [--seed S] [--algorithm NAME]\n\
         \x20               [--backend net|sequential|parallel] [--sec-per-grad-eval S]\n\
         \x20               [--crash DEV:ROUND]... [--offline DEV:FROM:TO]...\n\
         \x20               [--slow DEV:MULT:FROM:TO]... [--flaky DEV:PROB:FROM:TO]...\n\
         \x20               [--random-plan] [--drop-prob P] [--deadline SECONDS]\n\
         \x20               [--quorum-weight F] [--quorum-count N]\n\
         \x20               [--retries N] [--backoff BASE:CAP]\n\
         \x20               [--out DIR] [--trace PATH] [--health PATH] [--prof PATH]\n\
         \x20               [--obs PATH] [--expect-crashed N] [--expect-skipped N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> T {
    match s.parse::<T>() {
        Ok(v) => v,
        Err(_) => fail(&format!("cannot parse {what} from '{s}'")),
    }
}

fn parts<'a>(spec: &'a str, n: usize, what: &str) -> Vec<&'a str> {
    let parts: Vec<&str> = spec.split(':').collect();
    if parts.len() != n {
        fail(&format!("{what} wants {n} ':'-separated fields, got '{spec}'"));
    }
    parts
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => fail(&format!("{flag} needs a value")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut devices = 4usize;
    let mut rounds = 8usize;
    let mut seed = 0u64;
    let mut algorithm = String::from("fedproxvr-svrg");
    let mut backend = String::from("net");
    let mut sec_per_grad_eval = 1e-6f64;
    let mut plan = FaultPlan::new();
    let mut random_plan = false;
    let mut drop_prob = 0.0f64;
    let mut deadline = None;
    let mut quorum = QuorumPolicy::default();
    let mut retry = RetryPolicy::default();
    let mut out = None;
    let mut trace_path = None;
    let mut health_path = None;
    let mut prof_path = None;
    let mut obs_path = None;
    let mut expect_crashed = None;
    let mut expect_skipped = None;

    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--devices" => devices = parse(&next_value(&mut args, "--devices"), "device count"),
            "--rounds" => rounds = parse(&next_value(&mut args, "--rounds"), "round count"),
            "--seed" => seed = parse(&next_value(&mut args, "--seed"), "seed"),
            "--algorithm" => algorithm = next_value(&mut args, "--algorithm"),
            "--backend" => backend = next_value(&mut args, "--backend"),
            "--sec-per-grad-eval" => {
                sec_per_grad_eval =
                    parse(&next_value(&mut args, "--sec-per-grad-eval"), "seconds")
            }
            "--crash" => {
                let v = next_value(&mut args, "--crash");
                let p = parts(&v, 2, "--crash");
                plan = plan.crash(parse(p[0], "device"), parse(p[1], "round"));
            }
            "--offline" => {
                let v = next_value(&mut args, "--offline");
                let p = parts(&v, 3, "--offline");
                plan = plan.offline(
                    parse(p[0], "device"),
                    parse(p[1], "from-round"),
                    parse(p[2], "to-round"),
                );
            }
            "--slow" => {
                let v = next_value(&mut args, "--slow");
                let p = parts(&v, 4, "--slow");
                plan = plan.slow(
                    parse(p[0], "device"),
                    parse(p[1], "multiplier"),
                    parse(p[2], "from-round"),
                    parse(p[3], "to-round"),
                );
            }
            "--flaky" => {
                let v = next_value(&mut args, "--flaky");
                let p = parts(&v, 4, "--flaky");
                plan = plan.flaky(
                    parse(p[0], "device"),
                    parse(p[1], "drop probability"),
                    parse(p[2], "from-round"),
                    parse(p[3], "to-round"),
                );
            }
            "--random-plan" => random_plan = true,
            "--drop-prob" => {
                drop_prob = parse(&next_value(&mut args, "--drop-prob"), "probability")
            }
            "--deadline" => {
                deadline = Some(parse(&next_value(&mut args, "--deadline"), "deadline"))
            }
            "--quorum-weight" => {
                quorum.min_weight =
                    parse(&next_value(&mut args, "--quorum-weight"), "weight fraction")
            }
            "--quorum-count" => {
                quorum.min_responders =
                    parse(&next_value(&mut args, "--quorum-count"), "responder count")
            }
            "--retries" => {
                retry.max_retries = parse(&next_value(&mut args, "--retries"), "retry count")
            }
            "--backoff" => {
                let v = next_value(&mut args, "--backoff");
                let p = parts(&v, 2, "--backoff");
                retry.base_backoff_s = parse(p[0], "base backoff");
                retry.max_backoff_s = parse(p[1], "backoff cap");
            }
            "--out" => out = Some(next_value(&mut args, "--out")),
            "--trace" => trace_path = Some(next_value(&mut args, "--trace")),
            "--health" => health_path = Some(next_value(&mut args, "--health")),
            "--prof" => prof_path = Some(next_value(&mut args, "--prof")),
            "--obs" => obs_path = Some(next_value(&mut args, "--obs")),
            "--expect-crashed" => {
                expect_crashed =
                    Some(parse::<usize>(&next_value(&mut args, "--expect-crashed"), "count"))
            }
            "--expect-skipped" => {
                expect_skipped =
                    Some(parse::<usize>(&next_value(&mut args, "--expect-skipped"), "count"))
            }
            "--help" | "-h" => usage(),
            other => fail(&format!("unknown flag '{other}' (try --help)")),
        }
    }
    if devices == 0 || rounds == 0 {
        fail("--devices and --rounds must be positive");
    }
    if random_plan {
        if !plan.faults.is_empty() {
            fail("--random-plan cannot be combined with explicit fault flags");
        }
        plan = FaultPlan::random(seed, devices, rounds, &FaultRates::default());
    }

    // The ledger's fault digest covers the *expanded* plan, so a
    // `--random-plan` run and its explicit-flag replay hash the same.
    let info = RunInfo::new(
        format!(
            "fedresil devices={devices} rounds={rounds} seed={seed} \
             algorithm={algorithm} backend={backend} drop_prob={drop_prob}"
        ),
        seed,
    )
    .with_faults(format!("{:?}", plan.faults));
    let trace = TraceSession::start_run(
        trace_path.as_deref(),
        health_path.as_deref(),
        prof_path.as_deref(),
        obs_path.as_deref(),
        &info,
    );

    let Some(alg) = parse_algorithm(&algorithm) else {
        fail(&format!("unknown algorithm '{algorithm}'"));
    };
    let mut resilience = Resilience::with_plan(plan).with_quorum(quorum);
    if let Some(d) = deadline {
        resilience = resilience.with_deadline(d);
    }
    let runner = match backend.as_str() {
        "net" => RunnerKind::Network(NetRunnerOptions {
            net: NetOptions { drop_prob, retry, seed, ..NetOptions::default() },
            sec_per_grad_eval,
        }),
        "sequential" => RunnerKind::Sequential,
        "parallel" => RunnerKind::Parallel,
        other => fail(&format!("unknown backend '{other}' (net|sequential|parallel)")),
    };

    let fed = synthetic_federation(1.0, 1.0, devices, 40, 120, seed);
    let model = MultinomialLogistic::new(fed.test.dim(), fed.test.num_classes());
    let cfg = FedConfig::new(alg)
        .with_rounds(rounds)
        .with_seed(seed)
        .with_resilience(resilience)
        .with_runner(runner);
    let h = fedprox_core::FederatedTrainer::new(&model, &fed.devices, &fed.test, cfg).run().expect("run");

    println!("== fedresil: {} devices, {} rounds, seed {seed} ==", devices, rounds);
    println!(
        "{:>6} | {:>9} {:>7} {:>7} {:>13} {:>11} | {:>7} | skipped",
        "round", "responded", "crashed", "offline", "deadline_miss", "link_failed", "weight"
    );
    for p in &h.participation {
        println!(
            "{:>6} | {:>9} {:>7} {:>7} {:>13} {:>11} | {:>7.4} | {}",
            p.round,
            p.responders(),
            p.count(fedprox_faults::DeviceOutcome::Crashed),
            p.count(fedprox_faults::DeviceOutcome::Offline),
            p.count(fedprox_faults::DeviceOutcome::DeadlineMiss),
            p.count(fedprox_faults::DeviceOutcome::LinkFailed),
            p.responder_weight,
            if p.skipped { "yes" } else { "" },
        );
    }
    let s = summarize(&h.participation);
    println!(
        "-- {} rounds: {} skipped, {} crashed device(s), mean responding weight {:.4}, \
         {} deadline miss(es), {} link failure(s)",
        s.rounds,
        s.skipped_rounds,
        s.crashed_devices,
        s.mean_responder_weight,
        s.deadline_misses,
        s.link_failures
    );
    println!(
        "-- final loss {}, best acc {:.2}%, diverged: {}, sim time {:.3}s",
        h.final_loss().map_or("n/a".into(), |l| format!("{l:.5}")),
        h.best_accuracy() * 100.0,
        h.diverged(),
        h.total_sim_time
    );

    if let Some(dir) = out {
        write_json(&dir, &format!("fedresil_seed{seed}"), &h);
    }
    trace.finish();

    let mut bad = false;
    if let Some(want) = expect_crashed {
        if s.crashed_devices != want {
            eprintln!("fedresil: expected {want} crashed device(s), recorded {}", s.crashed_devices);
            bad = true;
        }
    }
    if let Some(want) = expect_skipped {
        if s.skipped_rounds != want {
            eprintln!("fedresil: expected {want} skipped round(s), recorded {}", s.skipped_rounds);
            bad = true;
        }
    }
    if h.diverged() {
        eprintln!("fedresil: run diverged");
        bad = true;
    }
    if bad {
        std::process::exit(1);
    }
}
