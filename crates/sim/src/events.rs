//! The sharded virtual-time event loop.
//!
//! The networked backend charges each device's download/compute/upload
//! legs by iterating a worker vector; here the same legs become explicit
//! **events** on a virtual-time priority queue, sharded by stable device
//! id so each shard's heap stays small. The dispatcher always pops the
//! globally earliest event by scanning the shard heads, ordered by
//! `(time, stable device id)` with a total order on time — which makes
//! the completion sequence **independent of the shard count**: one shard
//! or sixty-four, the same virtual schedule falls out bitwise (the unit
//! tests lock this invariant; the fault-plan addressing in
//! `fedprox-faults` relies on it).

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One sampled device's three round-trip legs, in virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceTiming {
    /// Stable device id.
    pub device: usize,
    /// Global-model broadcast (server → device).
    pub download: f64,
    /// Local solver time (scaled by gradient evaluations, fault-plan
    /// slow factors and the population's compute heterogeneity).
    pub compute: f64,
    /// Local-model return (device → server).
    pub upload: f64,
}

/// A device's finish: `(stable id, virtual finish time)`.
pub type Finish = (usize, f64);

#[derive(Debug, Clone, Copy, PartialEq)]
enum Leg {
    Download,
    Compute,
    Upload,
}

/// A scheduled state transition for one device. `idx` points at the
/// device's entry in the round's timing slice (an O(1) lookup); ordering
/// only ever consults `(time, stable device id)`.
#[derive(Debug, Clone, Copy)]
struct Ev {
    time: f64,
    device: usize,
    idx: usize,
    leg: Leg,
}

// Equality mirrors `Ord` (which consults only `(time, device)`) so the
// heap's ordering contract holds.
impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Ev {}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then_with(|| self.device.cmp(&other.device))
    }
}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A virtual-time event loop over `S` shard heaps (shard = id mod S).
///
/// Each device holds at most one pending event (its next leg boundary),
/// so a round's queue size is bounded by the active set, never the
/// population.
#[derive(Debug)]
pub struct ShardedEventLoop {
    shards: Vec<BinaryHeap<Reverse<Ev>>>,
}

impl ShardedEventLoop {
    /// Create a loop with `shards` heaps (at least one).
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "event loop needs at least one shard");
        ShardedEventLoop {
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
        }
    }

    /// Number of shard heaps.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn push(&mut self, ev: Ev) {
        let s = ev.device % self.shards.len();
        self.shards[s].push(Reverse(ev));
    }

    /// Pop the globally earliest event by `(time, device id)`.
    fn pop(&mut self) -> Option<Ev> {
        let mut best: Option<(usize, Ev)> = None;
        for (i, heap) in self.shards.iter().enumerate() {
            if let Some(Reverse(head)) = heap.peek() {
                match &best {
                    Some((_, b)) if *head >= *b => {}
                    _ => best = Some((i, *head)),
                }
            }
        }
        let (i, _) = best?;
        self.shards[i].pop().map(|Reverse(ev)| ev)
    }

    /// Run one round starting at virtual time `t0`: every timed device
    /// walks Download → Compute → Upload, and the finishes come back in
    /// completion order (ties broken by stable id). The queues are empty
    /// again on return.
    pub fn run_round(&mut self, t0: f64, timings: &[DeviceTiming]) -> Vec<Finish> {
        debug_assert!(self.shards.iter().all(BinaryHeap::is_empty));
        for (idx, t) in timings.iter().enumerate() {
            self.push(Ev {
                time: t0 + t.download,
                device: t.device,
                idx,
                leg: Leg::Download,
            });
        }
        let mut finishes = Vec::with_capacity(timings.len());
        while let Some(ev) = self.pop() {
            let t = &timings[ev.idx];
            match ev.leg {
                Leg::Download => self.push(Ev {
                    time: ev.time + t.compute,
                    leg: Leg::Compute,
                    ..ev
                }),
                Leg::Compute => self.push(Ev {
                    time: ev.time + t.upload,
                    leg: Leg::Upload,
                    ..ev
                }),
                Leg::Upload => finishes.push((ev.device, ev.time)),
            }
        }
        finishes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timings() -> Vec<DeviceTiming> {
        (0..40)
            .map(|d| DeviceTiming {
                device: d * 3 + 1, // sparse, non-contiguous stable ids
                download: 0.05,
                compute: 0.7 + (d as f64 % 7.0) * 0.31,
                upload: 0.05,
            })
            .collect()
    }

    #[test]
    fn finishes_are_in_completion_order_and_sum_the_legs() {
        let mut el = ShardedEventLoop::new(4);
        let ts = timings();
        let fin = el.run_round(10.0, &ts);
        assert_eq!(fin.len(), ts.len());
        assert!(fin.windows(2).all(|w| w[0].1 <= w[1].1), "not sorted by time");
        for (dev, t) in &fin {
            let src = ts.iter().find(|x| x.device == *dev).unwrap();
            let expect = 10.0 + src.download + src.compute + src.upload;
            assert_eq!(t.to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn completion_order_is_shard_count_invariant() {
        let ts = timings();
        let base = ShardedEventLoop::new(1).run_round(0.0, &ts);
        for shards in [2, 3, 8, 64] {
            let fin = ShardedEventLoop::new(shards).run_round(0.0, &ts);
            assert_eq!(fin.len(), base.len(), "shards = {shards}");
            for ((d0, t0), (d1, t1)) in base.iter().zip(&fin) {
                assert_eq!(d0, d1, "shards = {shards}");
                assert_eq!(t0.to_bits(), t1.to_bits(), "shards = {shards}");
            }
        }
    }

    #[test]
    fn simultaneous_finishes_tie_break_by_stable_id() {
        let ts: Vec<DeviceTiming> = [9, 2, 5]
            .iter()
            .map(|&d| DeviceTiming { device: d, download: 0.1, compute: 1.0, upload: 0.1 })
            .collect();
        let fin = ShardedEventLoop::new(2).run_round(0.0, &ts);
        let order: Vec<usize> = fin.iter().map(|f| f.0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }

    #[test]
    fn empty_round_is_fine() {
        let mut el = ShardedEventLoop::new(8);
        assert!(el.run_round(3.0, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedEventLoop::new(0);
    }
}
