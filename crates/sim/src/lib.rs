//! fedsim — the third execution backend: an event-driven simulation
//! runtime that scales federated training to million-device populations.
//!
//! The thread-per-device actor runtime (`fedprox-net`) tops out at
//! thousands of devices; here a device is a **compact passive state
//! machine** — no thread, no channel, just its stable id, its (possibly
//! lazily synthesized) shard, and per-(round, device) RNG streams —
//! scheduled on a sharded virtual-time event loop ([`events`]) that
//! lifts the clock and the fedresil fault/delay streams out of the
//! actor loop. Per-round client sampling ([`sampler`]) bounds per-round
//! memory by the **active set**, not the population:
//!
//! * [`population`] — materialized (shared `Device` slice) vs lazy
//!   (power-law [`ZipfPopulation`] + [`SyntheticPool`]) populations,
//! * [`sampler`] — uniform-K, weighted-by-`n_k`, and Bernoulli-p (with
//!   1/p aggregation reweighting) client samplers,
//! * [`events`] — the sharded virtual-time event loop,
//! * [`engine`] — [`engine::SimEngine`], driving Algorithm 1 over a
//!   population with the same `FedConfig` the other backends consume
//!   (select it with `RunnerKind::EventDriven`).
//!
//! **Correctness is inherited, not asserted**: on a materialized
//! population with the [`SamplerSpec::Full`] sampler (p = 1) the engine
//! reproduces the strict sequential backend's trajectory bitwise, and
//! with [`SamplerSpec::UniformK`]`(⌈pN⌉)` it reproduces sequential
//! partial participation bitwise (both consume the identical
//! `(seed, round)` sampling stream). The root `tests/sim_runtime.rs`
//! suite proves both.
//!
//! The `fedsim` CLI lives in `fedprox-bench` next to the other scenario
//! runners so it can reuse the `TraceSession` / counting-allocator
//! plumbing without creating a dependency cycle with `fedprox-perfbench`
//! (which macro-benchmarks this crate).
//!
//! [`ZipfPopulation`]: fedprox_data::partition::ZipfPopulation
//! [`SyntheticPool`]: fedprox_data::synthetic::SyntheticPool
//! [`SamplerSpec::Full`]: fedprox_core::SamplerSpec::Full
//! [`SamplerSpec::UniformK`]: fedprox_core::SamplerSpec::UniformK

#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod population;
pub mod sampler;

pub use engine::{RoundStats, SimEngine};
pub use events::{DeviceTiming, ShardedEventLoop};
pub use population::{LazyPopulation, Population};
pub use sampler::Sampler;
