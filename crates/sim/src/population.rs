//! Device populations: materialized (shared with the other backends) or
//! synthesized lazily per sampled device.

use fedprox_core::Device;
use fedprox_data::partition::ZipfPopulation;
use fedprox_data::synthetic::SyntheticPool;

/// A lazily synthesized power-law population: sample counts (and
/// compute-speed heterogeneity) from a [`ZipfPopulation`], shard
/// contents from a [`SyntheticPool`]. A device's shard is built when a
/// round samples it and dropped when the round ends, so resident memory
/// never scales with the population size.
#[derive(Debug, Clone)]
pub struct LazyPopulation {
    /// Per-device sample counts and compute factors (O(1) lookups).
    pub zipf: ZipfPopulation,
    /// Per-device shard synthesis (bitwise equal to eager generation).
    pub pool: SyntheticPool,
}

impl LazyPopulation {
    /// Bundle a size distribution with a shard generator. The pool's
    /// feature dimension must match the model the engine runs.
    pub fn new(zipf: ZipfPopulation, pool: SyntheticPool) -> Self {
        LazyPopulation { zipf, pool }
    }

    /// Synthesize device `d` (stable id preserved).
    pub fn device(&self, d: usize) -> Device {
        Device::new(d, self.pool.device_shard(d, self.zipf.size_of(d)))
    }
}

/// The population a [`crate::engine::SimEngine`] runs over.
pub enum Population<'a> {
    /// Concrete devices shared with the sequential/parallel/networked
    /// backends. Supports full evaluation and the p = 1 bitwise
    /// equivalence with the sequential trajectory.
    Materialized(&'a [Device]),
    /// Power-law synthetic population synthesized per sampled device
    /// (million-device scale; no full-population evaluation).
    Lazy(LazyPopulation),
}

impl Population<'_> {
    /// Number of devices `N`.
    pub fn len(&self) -> usize {
        match self {
            Population::Materialized(d) => d.len(),
            Population::Lazy(l) => l.zipf.len(),
        }
    }

    /// Whether the population is empty (the engine rejects this).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device `d`'s sample count `D_d`.
    pub fn size_of(&self, d: usize) -> usize {
        match self {
            Population::Materialized(devs) => devs[d].samples(),
            Population::Lazy(l) => l.zipf.size_of(d),
        }
    }

    /// Total federation sample count `D`.
    pub fn total_samples(&self) -> u64 {
        match self {
            Population::Materialized(devs) => {
                devs.iter().map(|d| d.samples() as u64).sum()
            }
            Population::Lazy(l) => l.zipf.total_samples(),
        }
    }

    /// Device `d`'s compute-speed multiplier (hardware heterogeneity;
    /// 1.0 for materialized populations).
    pub fn compute_factor_of(&self, d: usize) -> f64 {
        match self {
            Population::Materialized(_) => 1.0,
            Population::Lazy(l) => l.zipf.compute_factor_of(d),
        }
    }
}
