//! [`SimEngine`] — Algorithm 1 on the event-driven backend.
//!
//! The engine drives the same global iteration the sequential backend
//! runs — sample, fault-filter, quorum-gate, local solves, aggregate,
//! evaluate — but devices are passive state machines: a sampled device
//! is (lazily) materialized, runs its τ-step proximal solve, surrenders
//! its delta, and is dropped before the next round. Round timing comes
//! from the sharded virtual-time event loop instead of per-worker
//! charging, and the fedresil fault/delay streams are queried by stable
//! device id at the loop level rather than inside an actor.
//!
//! **Trajectory inheritance.** On a materialized population the engine
//! consumes exactly the sequential backend's streams: the same per-round
//! sampling stream ([`SamplerSpec::UniformK`] with `K = ⌈pN⌉`, or
//! [`SamplerSpec::Full`] for p = 1), the same per-(round, device) local
//! solver streams, the same aggregation order and the same
//! [`server::aggregate`] renormalisation — so its `History` agrees
//! bitwise with `RunnerKind::Sequential` (metric fields; the sim-time
//! and byte columns report the virtual clock, which the sequential
//! backend leaves at zero). `tests/sim_runtime.rs` locks this.

use crate::events::{DeviceTiming, ShardedEventLoop};
use crate::population::Population;
use crate::sampler::{bernoulli_reweight, Sampler};
use fedprox_core::metrics::{DivergenceCause, History, RoundRecord, RunningTotal};
use fedprox_core::{eval, runner, server};
use fedprox_core::{Device, FedConfig, FedError, RunnerKind, SamplerSpec, SimRunnerOptions};
use fedprox_core::device::LocalUpdate;
use fedprox_data::Dataset;
use fedprox_faults::{DeviceOutcome, RoundParticipation};
use fedprox_models::LossModel;
use fedprox_net::VirtualClock;
use fedprox_tensor::vecops;
use rand::Rng;

/// Seed-domain tag for the optional compute-jitter stream (disjoint from
/// the sampling, fault and solver stream families).
const JITTER_TAG: u64 = 0x51D0_77E1;

/// Per-round progress handed to [`SimEngine::run_with`] callbacks (the
/// `fedsim` CLI measures per-round allocation traffic from here).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundStats {
    /// Global round `s` (1-based).
    pub round: usize,
    /// Devices whose local models entered this round's aggregation
    /// (0 for a quorum-skipped round).
    pub active: usize,
    /// Virtual clock after the round.
    pub sim_time: f64,
}

/// The event-driven execution engine.
///
/// Unlike [`fedprox_core::FederatedTrainer`] it accepts a [`Population`]
/// instead of a device slice (so million-device populations never
/// materialize) and an optional test set (lazy populations skip
/// evaluation entirely; their `History.records` only ever carries a
/// divergence marker).
pub struct SimEngine<'a, M: LossModel> {
    model: &'a M,
    population: Population<'a>,
    test: Option<&'a Dataset>,
    cfg: FedConfig,
    opts: SimRunnerOptions,
}

impl<'a, M: LossModel> SimEngine<'a, M> {
    /// Build an engine. Options come from the config's
    /// [`RunnerKind::EventDriven`] when selected, defaults otherwise
    /// (so a config built for another backend still runs, full-sampled).
    ///
    /// FSVRG is rejected: its server-distributed global gradient needs a
    /// full-population pass every round, which contradicts sampling.
    pub fn new(
        model: &'a M,
        population: Population<'a>,
        test: Option<&'a Dataset>,
        cfg: FedConfig,
    ) -> Self {
        assert!(!population.is_empty(), "engine needs at least one device");
        assert!(
            !cfg.algorithm.needs_global_gradient(),
            "FSVRG needs a full-population gradient exchange; the event-driven backend samples"
        );
        if let Population::Materialized(devs) = &population {
            for (i, d) in devs.iter().enumerate() {
                assert_eq!(d.id, i, "device ids must match their position");
            }
        }
        let opts = match &cfg.runner {
            RunnerKind::EventDriven(o) => *o,
            _ => SimRunnerOptions::default(),
        };
        SimEngine { model, population, test, cfg, opts }
    }

    /// The resolved runner options.
    pub fn options(&self) -> &SimRunnerOptions {
        &self.opts
    }

    /// Run from the model's seeded initialisation.
    pub fn run(&self) -> Result<History, FedError> {
        self.run_from(self.model.init_params(self.cfg.seed))
    }

    /// Run from an explicit initial global model.
    pub fn run_from(&self, w0: Vec<f64>) -> Result<History, FedError> {
        self.run_loop(w0, &mut |_| {})
    }

    /// Run from the seeded initialisation with a per-round observer.
    pub fn run_with(&self, mut on_round: impl FnMut(&RoundStats)) -> Result<History, FedError> {
        self.run_loop(self.model.init_params(self.cfg.seed), &mut on_round)
    }

    fn run_loop(
        &self,
        w0: Vec<f64>,
        on_round: &mut dyn FnMut(&RoundStats),
    ) -> Result<History, FedError> {
        let n = self.population.len();
        let dim = w0.len();
        let sampler = Sampler::new(self.opts.sampler);
        let compact = matches!(self.population, Population::Lazy(_));
        // Materialized populations reuse the sequential backend's weight
        // vector bitwise; lazy ones resolve D_d / D per sampled device.
        let dense_weights = match &self.population {
            Population::Materialized(devs) => Some(server::weights_from_sizes(
                &devs.iter().map(|d| d.samples()).collect::<Vec<_>>(),
            )),
            Population::Lazy(_) => None,
        };
        let total_samples = self.population.total_samples() as f64;
        let weight_of = |d: usize| match &dense_weights {
            Some(w) => w[d],
            None => self.population.size_of(d) as f64 / total_samples,
        };

        let mut global = w0;
        let mut agg = vec![0.0; dim];
        let mut records = Vec::new();
        let mut divergence = DivergenceCause::None;
        let mut total_grad_evals = RunningTotal::new();
        let mut rounds_run = 0;
        let mut clock = VirtualClock::default();
        let mut event_loop = ShardedEventLoop::new(self.opts.shards);
        let resil = self.cfg.resilience.as_ref();
        let mut participation: Vec<RoundParticipation> = Vec::new();
        // Participation ledger: resilient runs (as in the other
        // backends) and every lazy run (sampled rounds are the story a
        // million-device run tells; compact records keep them O(K)).
        let record_participation = resil.is_some() || compact;

        if let (Population::Materialized(devs), Some(test)) = (&self.population, self.test) {
            records.push(evaluate(self.model, devs, test, 0, &global, None, 0, 0.0, 0));
        }

        for s in 1..=self.cfg.rounds {
            fedprox_telemetry::span!("sim", "round", "s" => s);
            let sampled = sampler.sample(n, s, self.cfg.seed, |d| self.population.size_of(d));

            // Fault filtering on the sampled set, addressed by stable
            // device id (see `fedprox_faults::PlannedFault::device`).
            // Compact rounds keep outcomes aligned with `sampled`; dense
            // rounds use the sequential backend's full-width layout.
            let mut outcomes =
                vec![DeviceOutcome::NotSelected; if compact { sampled.len() } else { n }];
            let mut active: Vec<usize> = Vec::with_capacity(sampled.len());
            for (j, &d) in sampled.iter().enumerate() {
                let slot = if compact { j } else { d };
                outcomes[slot] = match resil {
                    Some(r) if r.plan.is_crashed(d, s) => DeviceOutcome::Crashed,
                    Some(r) if r.plan.is_offline(d, s) => DeviceOutcome::Offline,
                    _ => {
                        active.push(d);
                        DeviceOutcome::Responded
                    }
                };
            }
            let weight_sum: f64 = active.iter().map(|&d| weight_of(d)).sum();
            let quorum_ok = resil.is_none_or(|r| r.quorum.met(weight_sum, active.len()));
            if !quorum_ok {
                let rec = RoundParticipation {
                    round: s,
                    outcomes,
                    responder_weight: weight_sum,
                    skipped: true,
                    sampled: compact_ids(compact, &sampled),
                };
                #[cfg(feature = "telemetry")]
                {
                    record_participation_telemetry(&rec);
                    fedprox_telemetry::collector::trigger_postmortem(
                        "quorum_skip",
                        s as u32,
                        attribute_skip(&rec),
                    );
                }
                if record_participation {
                    participation.push(rec);
                }
                rounds_run = s;
                if s.is_multiple_of(self.cfg.eval_every) || s == self.cfg.rounds {
                    if let (Population::Materialized(devs), Some(test)) =
                        (&self.population, self.test)
                    {
                        records.push(evaluate(
                            self.model,
                            devs,
                            test,
                            s,
                            &global,
                            None,
                            total_grad_evals.get(),
                            clock.now(),
                            clock.bytes_down() + clock.bytes_up(),
                        ));
                    }
                }
                on_round(&RoundStats { round: s, active: 0, sim_time: clock.now() });
                continue;
            }

            // Local solves: the per-(round, device) solver streams are
            // keyed identically to the other backends, so a lazily
            // synthesized device produces the same delta it would as a
            // resident actor.
            let updates: Vec<LocalUpdate> = match &self.population {
                Population::Materialized(devs) => runner::run_round_subset(
                    self.model,
                    devs,
                    &active,
                    &global,
                    &self.cfg,
                    s - 1,
                    false,
                    None,
                )?,
                Population::Lazy(lazy) => {
                    let mut ups = Vec::with_capacity(active.len());
                    for &d in &active {
                        fedprox_telemetry::span!("sim", "device_update", "device" => d, "round" => s - 1);
                        let dev = lazy.device(d);
                        ups.push(dev.local_update_anchored(
                            self.model,
                            &global,
                            &self.cfg,
                            s - 1,
                            None,
                        )?);
                    }
                    ups
                }
            };
            for u in &updates {
                total_grad_evals.add(u.grad_evals as u64);
            }

            // Optional θ measurement against the pre-aggregation global
            // (materialized populations only; mirrors the sequential
            // backend's accumulation order bitwise).
            let theta = match (&self.population, self.cfg.measure_theta) {
                (Population::Materialized(devs), true) => {
                    let mut sum = 0.0;
                    let mut wsum = 0.0;
                    for (&i, u) in active.iter().zip(&updates) {
                        let d = &devs[i];
                        sum += weight_of(i)
                            * d.theta_measured(self.model, &global, &u.w, self.cfg.mu);
                        wsum += weight_of(i);
                    }
                    Some(sum / wsum)
                }
                _ => None,
            };

            // Timing layer: charge each active device's legs and let the
            // sharded event loop order the round. Compute time scales
            // with the solve's measured gradient evaluations, the fault
            // plan's slow factor and the population's hardware spread.
            let timings: Vec<DeviceTiming> = active
                .iter()
                .zip(&updates)
                .map(|(&d, u)| {
                    let mut compute = u.grad_evals as f64
                        * self.opts.sec_per_grad_eval
                        * self.population.compute_factor_of(d);
                    if let Some(r) = resil {
                        compute *= r.plan.slow_factor(d, s);
                    }
                    if self.opts.jitter > 0.0 {
                        let mut rng = fedprox_faults::stream_rng(
                            self.cfg.seed ^ JITTER_TAG,
                            s as u64,
                            d as u64,
                        );
                        let u01: f64 = rng.gen_range(0.0..1.0);
                        compute *= 1.0 + self.opts.jitter * (2.0 * u01 - 1.0);
                    }
                    DeviceTiming {
                        device: d,
                        download: self.opts.downlink_s,
                        compute,
                        upload: self.opts.uplink_s,
                    }
                })
                .collect();
            let t0 = clock.now();
            let finishes = event_loop.run_round(t0, &timings);

            // Deadline: devices finishing past it drop out of the
            // aggregation (their compute still happened and is charged).
            let mut responded = vec![true; active.len()];
            if let Some(deadline) = resil.and_then(|r| r.deadline_s) {
                for &(d, t) in &finishes {
                    if t - t0 > deadline {
                        if let Some(j) = active.iter().position(|&a| a == d) {
                            responded[j] = false;
                        }
                        let slot = if compact {
                            sampled.iter().position(|&sd| sd == d)
                        } else {
                            Some(d)
                        };
                        if let Some(slot) = slot {
                            outcomes[slot] = DeviceOutcome::DeadlineMiss;
                        }
                    }
                }
            }

            // Clock: responders contribute their finish, deadline misses
            // the deadline itself (the server stops waiting there). The
            // model crosses the link once per direction per active
            // device.
            let mut candidates: Vec<f64> = Vec::with_capacity(active.len());
            for (j, t) in timings.iter().enumerate() {
                if responded[j] {
                    candidates.push(t.download + t.compute + t.upload);
                } else if let Some(deadline) = resil.and_then(|r| r.deadline_s) {
                    candidates.push(deadline);
                }
            }
            let leg_bytes = (active.len() * dim * 8) as u64;
            clock.record_traffic(leg_bytes, leg_bytes);
            clock.advance_partial_round(&candidates);

            let responders: Vec<usize> = (0..active.len()).filter(|&j| responded[j]).collect();
            let responder_weight: f64 =
                responders.iter().map(|&j| weight_of(active[j])).sum();
            let rec = RoundParticipation {
                round: s,
                outcomes,
                responder_weight,
                skipped: false,
                sampled: compact_ids(compact, &sampled),
            };
            #[cfg(feature = "telemetry")]
            {
                let responder_timings: Vec<(usize, DeviceTiming)> = responders
                    .iter()
                    .map(|&j| (timings[j].device, timings[j]))
                    .collect();
                record_round_telemetry(
                    (s - 1) as u32,
                    &responder_timings,
                    leg_bytes,
                    leg_bytes,
                    clock.now(),
                );
                if record_participation {
                    record_participation_telemetry(&rec);
                }
            }
            if record_participation {
                participation.push(rec);
            }

            // Aggregation, in the sampler's participant order (never the
            // event loop's completion order — the trajectory must not
            // depend on the virtual schedule). An all-missed round
            // leaves the global model unchanged.
            if !responders.is_empty() {
                match self.opts.sampler {
                    SamplerSpec::Bernoulli(p) if p < 1.0 => {
                        // 1/p reweighting with the residual weight on
                        // the previous global model (see
                        // `sampler::bernoulli_reweight`); the residual
                        // can be negative, so this bypasses
                        // `server::aggregate`'s weight assertions.
                        let w: Vec<f64> =
                            responders.iter().map(|&j| weight_of(active[j])).collect();
                        let (scaled, residual) = bernoulli_reweight(&w, p);
                        for a in agg.iter_mut() {
                            *a = 0.0;
                        }
                        vecops::axpy(residual, &global, &mut agg);
                        for (&j, &sw) in responders.iter().zip(&scaled) {
                            vecops::axpy(sw, &updates[j].w, &mut agg);
                        }
                    }
                    SamplerSpec::WeightedK(_) => {
                        // Inclusion probability carried the n_k bias;
                        // the aggregate is a plain 1/K average.
                        let w = 1.0 / responders.len() as f64;
                        let locals: Vec<(&[f64], f64)> =
                            responders.iter().map(|&j| (updates[j].w.as_slice(), w)).collect();
                        server::aggregate(&locals, &mut agg);
                    }
                    _ => {
                        // Raw D_d/D weights; `server::aggregate`
                        // renormalises by the responding weight exactly
                        // as the sequential backend does.
                        let locals: Vec<(&[f64], f64)> = responders
                            .iter()
                            .map(|&j| (updates[j].w.as_slice(), weight_of(active[j])))
                            .collect();
                        server::aggregate(&locals, &mut agg);
                    }
                }
                std::mem::swap(&mut global, &mut agg);
            }
            rounds_run = s;

            if !vecops::all_finite(&global) {
                let device = active
                    .iter()
                    .zip(&updates)
                    .find(|(_, u)| !vecops::all_finite(&u.w))
                    .map(|(&d, _)| d);
                divergence = DivergenceCause::NonFinite { round: s, device };
                #[cfg(feature = "telemetry")]
                fedprox_telemetry::collector::trigger_postmortem(
                    "non_finite",
                    s as u32,
                    device.map(|d| d as u32),
                );
                records.push(divergence_record(s, theta, total_grad_evals.get()));
                on_round(&RoundStats {
                    round: s,
                    active: responders.len(),
                    sim_time: clock.now(),
                });
                break;
            }
            let mut stop = false;
            if s.is_multiple_of(self.cfg.eval_every) || s == self.cfg.rounds {
                if let (Population::Materialized(devs), Some(test)) =
                    (&self.population, self.test)
                {
                    let rec = evaluate(
                        self.model,
                        devs,
                        test,
                        s,
                        &global,
                        theta,
                        total_grad_evals.get(),
                        clock.now(),
                        clock.bytes_down() + clock.bytes_up(),
                    );
                    let bad =
                        !rec.train_loss.is_finite() || rec.train_loss > self.cfg.loss_guard;
                    records.push(rec);
                    if bad {
                        divergence = DivergenceCause::LossGuard { round: s };
                        #[cfg(feature = "telemetry")]
                        fedprox_telemetry::collector::trigger_postmortem(
                            "loss_guard",
                            s as u32,
                            None,
                        );
                        stop = true;
                    }
                }
            }
            on_round(&RoundStats { round: s, active: responders.len(), sim_time: clock.now() });
            if stop {
                break;
            }
        }

        Ok(History {
            config: self.cfg.summary(),
            records,
            divergence,
            rounds_run,
            total_sim_time: clock.now(),
            final_model: global,
            participation,
        })
    }
}

/// The compact record's id column (lazy populations only): `sampled[j]`
/// names the stable device `outcomes[j]` describes.
fn compact_ids(compact: bool, sampled: &[usize]) -> Option<Vec<u32>> {
    compact.then(|| sampled.iter().map(|&d| d as u32).collect())
}

/// One evaluated round (same metric set as the sequential backend; the
/// sim-time and byte columns carry the virtual clock).
#[allow(clippy::too_many_arguments)] // mirrors the trainer's private evaluate signature
fn evaluate<M: LossModel>(
    model: &M,
    devices: &[Device],
    test: &Dataset,
    round: usize,
    global: &[f64],
    theta: Option<f64>,
    grad_evals: u64,
    sim_time: f64,
    bytes: u64,
) -> RoundRecord {
    fedprox_telemetry::span!("sim", "evaluate", "round" => round);
    RoundRecord {
        round,
        train_loss: eval::global_loss(model, devices, global),
        test_accuracy: eval::test_accuracy(model, test, global),
        grad_norm_sq: eval::stationarity_gap(model, devices, global),
        theta_measured: theta,
        sim_time,
        bytes,
        grad_evals,
    }
}

/// The sentinel record marking a non-finite aggregate.
fn divergence_record(round: usize, theta: Option<f64>, grad_evals: u64) -> RoundRecord {
    RoundRecord {
        round,
        train_loss: f64::INFINITY,
        test_accuracy: 0.0,
        grad_norm_sq: f64::INFINITY,
        theta_measured: theta,
        sim_time: 0.0,
        bytes: 0,
        grad_evals,
    }
}

/// Emit one round's simulation observations — [`DeviceRound`] legs for
/// the round's responders (stable device ids, so `fedobs` gating and
/// critical-path attribution see exactly the sampled set), the two
/// [`Bytes`] totals and the closing [`RoundEnd`]. Mirrors the networked
/// backend's emission; `round` is 0-based on the wire there, so here too.
///
/// [`DeviceRound`]: fedprox_telemetry::event::Event::DeviceRound
/// [`Bytes`]: fedprox_telemetry::event::Event::Bytes
/// [`RoundEnd`]: fedprox_telemetry::event::Event::RoundEnd
#[cfg(feature = "telemetry")]
fn record_round_telemetry(
    round: u32,
    timings: &[(usize, DeviceTiming)],
    down_bytes: u64,
    up_bytes: u64,
    sim_now: f64,
) {
    use fedprox_telemetry::collector;
    use fedprox_telemetry::event::Event;
    if !collector::is_armed() {
        return;
    }
    let finishes: Vec<f64> =
        timings.iter().map(|(_, t)| t.download + t.compute + t.upload).collect();
    let mut sorted = finishes.clone();
    sorted.sort_by(f64::total_cmp);
    let m = sorted.len();
    if m > 0 {
        let median = if m % 2 == 1 {
            sorted[m / 2]
        } else {
            0.5 * (sorted[m / 2 - 1] + sorted[m / 2])
        };
        for ((d, t), finish) in timings.iter().zip(&finishes) {
            let lag = finish - median;
            collector::record_event(Event::DeviceRound {
                round,
                device: *d as u32,
                download_s: t.download,
                compute_s: t.compute,
                upload_s: t.upload,
                finish_s: *finish,
                lag_s: lag,
            });
            fedprox_telemetry::histogram!("net.straggler_lag_s", lag.max(0.0));
        }
    }
    collector::record_event(Event::Bytes {
        round,
        kind: "global_model".into(),
        direction: "down".into(),
        bytes: down_bytes,
    });
    collector::record_event(Event::Bytes {
        round,
        kind: "local_model".into(),
        direction: "up".into(),
        bytes: up_bytes,
    });
    collector::record_event(Event::RoundEnd { round, sim_time_s: sim_now });
}

/// Emit one round's participation observations (counters plus the
/// structured [`Participation`] event), mirroring the networked backend.
///
/// [`Participation`]: fedprox_telemetry::event::Event::Participation
#[cfg(feature = "telemetry")]
fn record_participation_telemetry(rec: &RoundParticipation) {
    use fedprox_telemetry::collector;
    use fedprox_telemetry::event::Event;
    if !collector::is_armed() {
        return;
    }
    let responded = rec.responders();
    let crashed = rec.count(DeviceOutcome::Crashed);
    let offline = rec.count(DeviceOutcome::Offline);
    let deadline_miss = rec.count(DeviceOutcome::DeadlineMiss);
    let link_failed = rec.count(DeviceOutcome::LinkFailed);
    fedprox_telemetry::counter!("net.participation.responded", responded as u64);
    fedprox_telemetry::counter!("net.participation.crashed", crashed as u64);
    fedprox_telemetry::counter!("net.participation.offline", offline as u64);
    fedprox_telemetry::counter!("net.participation.link_failed", link_failed as u64);
    fedprox_telemetry::counter!("net.round.deadline_miss", deadline_miss as u64);
    if rec.skipped {
        fedprox_telemetry::counter!("net.round.skipped", 1u64);
    }
    collector::record_event(Event::Participation {
        round: rec.round as u32,
        responded: responded as u32,
        crashed: crashed as u32,
        offline: offline as u32,
        deadline_miss: deadline_miss as u32,
        link_failed: link_failed as u32,
        weight: rec.responder_weight,
        skipped: u32::from(rec.skipped),
    });
}

/// The device a quorum skip is blamed on, by **stable id**: compact
/// records translate the outcome position through the record's sampled
/// column; dense records use the position directly (it is the id there).
#[cfg(feature = "telemetry")]
fn attribute_skip(rec: &RoundParticipation) -> Option<u32> {
    let pos = rec
        .outcomes
        .iter()
        .position(|o| *o == DeviceOutcome::Crashed)
        .or_else(|| {
            rec.outcomes.iter().position(|o| {
                !matches!(o, DeviceOutcome::Responded | DeviceOutcome::NotSelected)
            })
        })?;
    Some(match &rec.sampled {
        Some(ids) => ids[pos],
        None => pos as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_core::Algorithm;
    use fedprox_data::partition::ZipfPopulation;
    use fedprox_data::synthetic::{SyntheticConfig, SyntheticPool};
    use fedprox_models::MultinomialLogistic;
    use fedprox_optim::estimator::EstimatorKind;

    fn lazy_population(devices: usize, seed: u64) -> crate::population::LazyPopulation {
        let zipf = ZipfPopulation::new(devices, 30, 90, 1.5, 4.0, seed);
        let pool = SyntheticPool::new(SyntheticConfig { seed, ..Default::default() });
        crate::population::LazyPopulation::new(zipf, pool)
    }

    fn cfg(sampler: SamplerSpec, seed: u64) -> FedConfig {
        FedConfig::new(Algorithm::FedProxVr(EstimatorKind::Svrg))
            .with_beta(5.0)
            .with_tau(3)
            .with_mu(0.5)
            .with_batch_size(8)
            .with_rounds(4)
            .with_seed(seed)
            .with_runner(RunnerKind::EventDriven(
                SimRunnerOptions::default().with_sampler(sampler),
            ))
    }

    fn model_bits(h: &History) -> Vec<u64> {
        h.final_model.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn lazy_sampled_run_is_deterministic_and_compact() {
        let model = MultinomialLogistic::new(60, 10);
        let run = |seed: u64| {
            let pop = Population::Lazy(lazy_population(500, seed));
            SimEngine::new(&model, pop, None, cfg(SamplerSpec::UniformK(8), seed))
                .run()
                .unwrap()
        };
        let (a, b) = (run(9), run(9));
        assert_eq!(model_bits(&a), model_bits(&b), "same seed must be bitwise stable");
        // A different seed takes a different trajectory.
        assert_ne!(model_bits(&a), model_bits(&run(10)));
    }

    #[test]
    fn lazy_run_records_compact_participation() {
        let model = MultinomialLogistic::new(60, 10);
        let pop = Population::Lazy(lazy_population(300, 5));
        let engine = SimEngine::new(&model, pop, None, cfg(SamplerSpec::UniformK(6), 5));
        let history = match engine.run() {
            Ok(h) => h,
            Err(e) => panic!("run failed: {e}"),
        };
        assert_eq!(history.participation.len(), 4);
        for rec in &history.participation {
            let ids = match &rec.sampled {
                Some(ids) => ids,
                None => panic!("lazy participation must be compact"),
            };
            assert_eq!(ids.len(), 6);
            assert_eq!(rec.outcomes.len(), 6);
            assert!(!rec.skipped);
        }
        assert!(history.records.is_empty(), "lazy runs never evaluate");
        assert!(history.total_sim_time > 0.0);
    }

    #[test]
    fn weighted_and_bernoulli_schemes_run_end_to_end() {
        let model = MultinomialLogistic::new(60, 10);
        for spec in [SamplerSpec::WeightedK(6), SamplerSpec::Bernoulli(0.02)] {
            let pop = Population::Lazy(lazy_population(400, 13));
            let engine = SimEngine::new(&model, pop, None, cfg(spec, 13));
            let history = match engine.run() {
                Ok(h) => h,
                Err(e) => panic!("{spec:?} run failed: {e}"),
            };
            assert_eq!(history.rounds_run, 4, "{spec:?}");
            assert!(history.final_model.iter().all(|x| x.is_finite()), "{spec:?}");
        }
    }

    #[test]
    #[should_panic(expected = "FSVRG")]
    fn fsvrg_is_rejected() {
        let model = MultinomialLogistic::new(60, 10);
        let pop = Population::Lazy(lazy_population(10, 1));
        let cfg = FedConfig::new(Algorithm::Fsvrg).with_seed(1);
        let _ = SimEngine::new(&model, pop, None, cfg);
    }
}
