//! Per-round client sampling: the layer that bounds memory by the
//! active set.
//!
//! Three schemes from the partial-participation literature sit behind
//! one [`Sampler`]:
//!
//! * **uniform-K** — K of N uniformly without replacement, from the same
//!   `(seed, round)` stream the sequential backend's `participation < 1`
//!   path consumes, so `K = ⌈pN⌉` reproduces it bitwise;
//! * **weighted-by-`n_k`** — inclusion probability ∝ sample count
//!   (FedProx, arXiv 1812.06127), via Efraimidis–Spirakis reservoir keys
//!   in O(N) time and O(K) memory, aggregated as a uniform 1/K average;
//! * **Bernoulli-p** — independent activation with probability p
//!   (arXiv 2210.14362), aggregated with 1/p reweighting and the
//!   residual weight left on the previous global model
//!   ([`bernoulli_reweight`]), which keeps the weight total at exactly
//!   the full-participation sum.
//!
//! Every draw is keyed by `(seed, round)` or `(seed, round, stable
//! device id)` only — never by position in a participant list — so
//! selection is identical across shard counts and backends.

use fedprox_core::SamplerSpec;
use fedprox_faults::stream_rng;
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Seed-domain tags keeping the sampler streams disjoint from every
/// other stream family derived from the master seed.
const WEIGHTED_TAG: u64 = 0x574B_5A1F;
const BERNOULLI_TAG: u64 = 0xBE7A_0A11;

/// A per-round client sampler (see the module docs for the schemes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sampler {
    spec: SamplerSpec,
}

impl Sampler {
    /// Wrap a [`SamplerSpec`].
    pub fn new(spec: SamplerSpec) -> Self {
        if let SamplerSpec::Bernoulli(p) = spec {
            assert!(p > 0.0 && p <= 1.0, "Bernoulli activation must be in (0, 1]");
        }
        Sampler { spec }
    }

    /// The wrapped spec.
    pub fn spec(&self) -> SamplerSpec {
        self.spec
    }

    /// Draw round `s`'s participant set (stable device ids) from a
    /// population of `n` devices. `size_of` resolves a device's sample
    /// count (consulted only by the weighted scheme).
    ///
    /// Uniform-K preserves the raw draw order of the sequential
    /// backend's sampling stream (aggregation order is part of the
    /// bitwise trajectory); the weighted and Bernoulli schemes return
    /// ascending stable ids.
    pub fn sample(
        &self,
        n: usize,
        s: usize,
        seed: u64,
        size_of: impl Fn(usize) -> usize,
    ) -> Vec<usize> {
        match self.spec {
            SamplerSpec::Full => (0..n).collect(),
            SamplerSpec::UniformK(k) => {
                let k = k.clamp(1, n);
                if k == n {
                    return (0..n).collect();
                }
                // The sequential backend's exact partial-participation
                // stream (see `FederatedTrainer::run_local_loop`).
                let mut rng =
                    fedprox_data::synthetic::device_rng(seed ^ 0x9A87, s as u64);
                rand::seq::index::sample(&mut rng, n, k).into_vec()
            }
            SamplerSpec::WeightedK(k) => weighted_k(n, k.clamp(1, n), s, seed, size_of),
            SamplerSpec::Bernoulli(p) => {
                if p >= 1.0 {
                    return (0..n).collect();
                }
                (0..n)
                    .filter(|&d| {
                        let mut rng =
                            stream_rng(seed ^ BERNOULLI_TAG, s as u64, d as u64);
                        rng.gen_range(0.0..1.0) < p
                    })
                    .collect()
            }
        }
    }
}

/// Efraimidis–Spirakis A-Res: each device draws `u^{1/w}` from its own
/// `(seed, round, id)` stream and the K largest keys win. One O(N) scan,
/// a K-entry min-heap — never a materialized weight vector.
fn weighted_k(
    n: usize,
    k: usize,
    s: usize,
    seed: u64,
    size_of: impl Fn(usize) -> usize,
) -> Vec<usize> {
    let mut heap: BinaryHeap<std::cmp::Reverse<ResKey>> = BinaryHeap::with_capacity(k + 1);
    for d in 0..n {
        let w = size_of(d) as f64;
        let mut rng = stream_rng(seed ^ WEIGHTED_TAG, s as u64, d as u64);
        let u: f64 = rng.gen_range(0.0..1.0);
        // ln(u)/w is a monotone transform of u^{1/w}; it avoids powf
        // underflow for large weights. u = 0 maps to -inf (never wins).
        let key = ResKey { key: u.ln() / w, id: d };
        if heap.len() < k {
            heap.push(std::cmp::Reverse(key));
        } else if heap.peek().is_some_and(|min| key > min.0) {
            heap.pop();
            heap.push(std::cmp::Reverse(key));
        }
    }
    let mut ids: Vec<usize> = heap.into_iter().map(|e| e.0.id).collect();
    ids.sort_unstable();
    ids
}

/// A reservoir key ordered by (key, then lower id wins ties).
#[derive(Debug, Clone, Copy, PartialEq)]
struct ResKey {
    key: f64,
    id: usize,
}

impl Eq for ResKey {}

impl Ord for ResKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Equal keys: the lower id ranks higher (compares greater), so
        // it survives the heap eviction — deterministic tie-breaking.
        self.key.total_cmp(&other.key).then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for ResKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The Bernoulli-p aggregation reweighting: each active device's
/// population weight `w_i = D_i/D` is scaled by `1/p` (it speaks for the
/// ~`1/p` devices its activation represents) and the residual
/// `1 − Σ w_i/p` stays on the previous global model, so the total is
/// exactly the full-participation weight sum of 1 and the update is an
/// unbiased estimate of the full aggregation (arXiv 2210.14362). The
/// residual is legitimately negative when the active set overshoots its
/// expected weight. `p = 1` short-circuits to the raw weights with a
/// zero residual — bitwise identical to full participation.
pub fn bernoulli_reweight(weights: &[f64], p: f64) -> (Vec<f64>, f64) {
    assert!(p > 0.0 && p <= 1.0, "Bernoulli activation must be in (0, 1]");
    if p >= 1.0 {
        return (weights.to_vec(), 0.0);
    }
    let scaled: Vec<f64> = weights.iter().map(|w| w / p).collect();
    let residual = 1.0 - scaled.iter().sum::<f64>();
    (scaled, residual)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_sizes(_d: usize) -> usize {
        50
    }

    #[test]
    fn uniform_k_matches_sequential_stream() {
        // The sequential backend's draw for participation p over n
        // devices: k = ceil(p n), stream (seed ^ 0x9A87, s).
        let n = 10;
        let (seed, s) = (7u64, 3usize);
        let k = ((0.5 * n as f64).ceil() as usize).clamp(1, n);
        let mut rng = fedprox_data::synthetic::device_rng(seed ^ 0x9A87, s as u64);
        let expect = rand::seq::index::sample(&mut rng, n, k).into_vec();
        let got = Sampler::new(SamplerSpec::UniformK(k)).sample(n, s, seed, uniform_sizes);
        assert_eq!(got, expect);
    }

    #[test]
    fn full_and_saturated_samplers_cover_everyone() {
        for spec in [
            SamplerSpec::Full,
            SamplerSpec::UniformK(99),
            SamplerSpec::Bernoulli(1.0),
        ] {
            let got = Sampler::new(spec).sample(6, 1, 0, uniform_sizes);
            assert_eq!(got, vec![0, 1, 2, 3, 4, 5], "{spec:?}");
        }
    }

    #[test]
    fn weighted_k_is_deterministic_and_biased_toward_big_shards() {
        // Device sizes grow with id; over many rounds large ids must be
        // selected far more often than small ones.
        let n = 200;
        let size_of = |d: usize| 10 + d * 5;
        let sampler = Sampler::new(SamplerSpec::WeightedK(20));
        let mut hits = vec![0usize; n];
        for s in 1..=100 {
            let sel = sampler.sample(n, s, 11, size_of);
            assert_eq!(sel.len(), 20);
            assert!(sel.windows(2).all(|w| w[0] < w[1]), "not ascending: {sel:?}");
            for d in sel {
                hits[d] += 1;
            }
        }
        let low: usize = hits[..50].iter().sum();
        let high: usize = hits[150..].iter().sum();
        assert!(high > 2 * low, "weighting had no effect: low {low}, high {high}");
        // Same (seed, round) → same set.
        assert_eq!(
            sampler.sample(n, 42, 11, size_of),
            sampler.sample(n, 42, 11, size_of)
        );
    }

    #[test]
    fn bernoulli_activates_at_about_p() {
        let n = 5000;
        let sampler = Sampler::new(SamplerSpec::Bernoulli(0.1));
        let sel = sampler.sample(n, 1, 3, uniform_sizes);
        assert!(sel.windows(2).all(|w| w[0] < w[1]));
        let frac = sel.len() as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.03, "activation fraction {frac}");
        // Selection is per-device-stream: independent of n.
        let sel_small: Vec<usize> = sampler
            .sample(100, 1, 3, uniform_sizes);
        assert_eq!(
            sel.iter().copied().filter(|&d| d < 100).collect::<Vec<_>>(),
            sel_small
        );
    }

    #[test]
    fn bernoulli_reweight_restores_full_weight_total() {
        let weights = [0.1, 0.25, 0.05, 0.2];
        let (scaled, residual) = bernoulli_reweight(&weights, 0.25);
        for (s, w) in scaled.iter().zip(&weights) {
            assert_eq!(s.to_bits(), (w / 0.25).to_bits());
        }
        let total = scaled.iter().sum::<f64>() + residual;
        assert!((total - 1.0).abs() < 1e-12, "total {total}");
        // Overshooting active weight → negative residual, total still 1.
        let (scaled, residual) = bernoulli_reweight(&[0.4, 0.3], 0.5);
        assert!(residual < 0.0);
        assert!((scaled.iter().sum::<f64>() + residual - 1.0).abs() < 1e-12);
        // p = 1 is bitwise the raw weights.
        let (scaled, residual) = bernoulli_reweight(&weights, 1.0);
        assert_eq!(residual.to_bits(), 0.0f64.to_bits());
        for (s, w) in scaled.iter().zip(&weights) {
            assert_eq!(s.to_bits(), w.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn zero_activation_rejected() {
        let _ = Sampler::new(SamplerSpec::Bernoulli(0.0));
    }
}
