//! Integration: the checked-in fixture trace (also used by the ci.sh
//! `fedtrace` smoke stage) parses and summarizes to the expected tables.

// Module-level helpers sit outside #[test] fns, where clippy.toml's
// allow-expect-in-tests does not reach.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use fedprox_telemetry::jsonl;
use fedprox_telemetry::summary::TelemetryReport;

fn fixture() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/sample_trace.jsonl");
    std::fs::read_to_string(path).expect("fixture trace readable")
}

#[test]
fn fixture_parses_and_roundtrips() {
    let events = jsonl::parse(&fixture()).expect("fixture parses");
    assert_eq!(events.len(), 22);
    // Writer(parse(x)) must re-parse to the same events.
    let rewritten = jsonl::to_jsonl(&events);
    assert_eq!(jsonl::parse(&rewritten).expect("rewrite parses"), events);
}

#[test]
fn fixture_summary_has_expected_aggregates() {
    let events = jsonl::parse(&fixture()).expect("fixture parses");
    let report = TelemetryReport::from_events(&events);

    assert_eq!(report.rounds, 2);
    assert_eq!(report.span_events, 2);
    assert_eq!(report.dropped, 0);

    // span_stat records take precedence over raw spans for op totals.
    let softmax = report.ops.iter().find(|o| o.name == "softmax").expect("softmax op");
    assert_eq!(softmax.count, 480);
    // Sorted by total time: core.round is the slowest.
    assert_eq!(report.ops[0].name, "round");

    // Device 1 is the straggler.
    assert_eq!(report.devices[0].device, 1);
    assert!(report.devices[0].lag_s > 0.0);
    assert_eq!(report.devices[0].rounds, 2);

    // Bytes by message kind.
    let up = report
        .bytes
        .iter()
        .find(|b| b.kind == "local_model" && b.direction == "up")
        .expect("uplink bytes");
    assert_eq!(up.bytes, 2 * 9946);
    assert_eq!(up.rounds, 2);

    let evals = report.counters.iter().find(|(n, _)| n == "optim.grad_evals").expect("counter");
    assert_eq!(evals.1, 1024);
}

#[test]
fn fixture_render_prints_all_tables() {
    let events = jsonl::parse(&fixture()).expect("fixture parses");
    let text = TelemetryReport::from_events(&events).render(10);
    for needle in [
        "2 rounds",
        "slowest ops",
        "busiest devices",
        "bytes by message kind",
        "counters",
        "gauges",
        "histograms",
        "optim.inner_step",
        "global_model",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
}
