//! `fedprof`: render the span-tree profile carried by a FedProxVR JSONL
//! trace.
//!
//! ```text
//! fedprof report <trace.jsonl>
//! fedprof flame  <trace.jsonl>
//! fedprof agg    <trace.jsonl> <trace.jsonl> [...] [--check-deterministic]
//! ```
//!
//! `report` prints the path-tree table (count, total/self time, and —
//! when the run had the counting allocator probe installed — bytes and
//! allocator calls per path). `flame` prints collapsed stacks
//! (`round;device_update;matmul 1234`, weights = self-µs) consumable by
//! standard flamegraph renderers. `agg` merges N traces into one
//! cross-run table of per-path medians and max−min deltas; with
//! `--check-deterministic` it exits non-zero unless every path's
//! deterministic columns (activation count and allocation totals) are
//! identical across runs — the CI gate for same-seed reproducibility.
//! Works on any trace produced by `--prof`/`--trace`; needs no cargo
//! features.

// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_telemetry::jsonl;
use fedprox_telemetry::profile::{AggReport, ProfileReport};
use std::process::ExitCode;

const USAGE: &str = "usage: fedprof <report|flame> <trace.jsonl>\n       \
                     fedprof agg <trace.jsonl>... [--check-deterministic]";

enum Cmd {
    Report { path: String },
    Flame { path: String },
    Agg { paths: Vec<String>, check: bool },
}

fn parse_args(argv: &[String]) -> Result<Cmd, String> {
    let mut it = argv.iter();
    let cmd = it.next().ok_or(USAGE)?;
    match cmd.as_str() {
        "report" | "flame" => {
            let mut path = None;
            for arg in it {
                if arg.starts_with('-') {
                    return Err(format!("unknown flag `{arg}`\n{USAGE}"));
                }
                if path.replace(arg.clone()).is_some() {
                    return Err(format!("more than one trace path given\n{USAGE}"));
                }
            }
            let path = path.ok_or(USAGE)?;
            if cmd == "report" {
                Ok(Cmd::Report { path })
            } else {
                Ok(Cmd::Flame { path })
            }
        }
        "agg" => {
            let mut paths = Vec::new();
            let mut check = false;
            for arg in it {
                match arg.as_str() {
                    "--check-deterministic" => check = true,
                    other if other.starts_with('-') => {
                        return Err(format!("unknown flag `{other}`\n{USAGE}"));
                    }
                    other => paths.push(other.to_string()),
                }
            }
            if paths.len() < 2 {
                return Err(format!("agg needs at least two traces\n{USAGE}"));
            }
            Ok(Cmd::Agg { paths, check })
        }
        "--help" | "-h" => Err(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn load_profile(path: &str) -> Result<ProfileReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = jsonl::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(ProfileReport::from_events(&events))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        Cmd::Report { path } => match load_profile(&path) {
            Ok(p) => {
                print!("{}", p.render_tree());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fedprof: {e}");
                ExitCode::FAILURE
            }
        },
        Cmd::Flame { path } => match load_profile(&path) {
            Ok(p) => {
                print!("{}", p.render_flame());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("fedprof: {e}");
                ExitCode::FAILURE
            }
        },
        Cmd::Agg { paths, check } => {
            let mut profiles = Vec::with_capacity(paths.len());
            for p in &paths {
                match load_profile(p) {
                    Ok(profile) => profiles.push(profile),
                    Err(e) => {
                        eprintln!("fedprof: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            let agg = AggReport::from_profiles(&profiles);
            print!("{}", agg.render());
            if check {
                let bad = agg.deterministic_mismatches();
                if !bad.is_empty() {
                    eprintln!(
                        "fedprof: deterministic columns differ across runs on {} path(s):",
                        bad.len()
                    );
                    for row in bad {
                        eprintln!("  {} (in {}/{} runs)", row.path, row.runs, agg.runs);
                    }
                    return ExitCode::FAILURE;
                }
                println!("deterministic columns identical across {} runs", agg.runs);
            }
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_report_and_flame() {
        assert!(matches!(
            parse_args(&s(&["report", "t.jsonl"])).unwrap(),
            Cmd::Report { path } if path == "t.jsonl"
        ));
        assert!(matches!(
            parse_args(&s(&["flame", "t.jsonl"])).unwrap(),
            Cmd::Flame { path } if path == "t.jsonl"
        ));
    }

    #[test]
    fn parses_agg_with_check_flag() {
        let cmd = parse_args(&s(&["agg", "a.jsonl", "b.jsonl", "--check-deterministic"])).unwrap();
        match cmd {
            Cmd::Agg { paths, check } => {
                assert_eq!(paths, vec!["a.jsonl", "b.jsonl"]);
                assert!(check);
            }
            _ => panic!("expected agg"),
        }
    }

    #[test]
    fn rejects_bad_invocations() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["nope", "t"])).is_err());
        assert!(parse_args(&s(&["report"])).is_err());
        assert!(parse_args(&s(&["report", "a", "b"])).is_err());
        assert!(parse_args(&s(&["agg", "only-one.jsonl"])).is_err());
        assert!(parse_args(&s(&["agg", "a", "b", "--nope"])).is_err());
    }
}
