//! `fedtrace`: summarize a FedProxVR JSONL telemetry trace.
//!
//! ```text
//! fedtrace <trace.jsonl> [--top N]
//! ```
//!
//! Prints the aggregated per-run tables: slowest ops, busiest devices
//! (straggler lag), bytes by message kind, counters, gauges, and
//! histograms. Works on any trace produced by `--trace` on the bench
//! binaries or `examples/quickstart.rs`; needs no cargo features.


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_telemetry::jsonl;
use fedprox_telemetry::summary::TelemetryReport;
use std::process::ExitCode;

const USAGE: &str = "usage: fedtrace <trace.jsonl> [--top N]";

struct Args {
    path: String,
    top: usize,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut path = None;
    let mut top = 10usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--top" => {
                let v = it.next().ok_or("--top requires a value")?;
                top = v.parse().map_err(|_| format!("bad --top value `{v}`"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            other => {
                if path.replace(other.to_string()).is_some() {
                    return Err(format!("more than one trace path given\n{USAGE}"));
                }
            }
        }
    }
    let path = path.ok_or(USAGE)?;
    Ok(Args { path, top })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("fedtrace: cannot read {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let events = match jsonl::parse(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("fedtrace: {}: {e}", args.path);
            return ExitCode::FAILURE;
        }
    };
    let report = TelemetryReport::from_events(&events);
    print!("{}", report.render(args.top));
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_path_and_top() {
        let a = parse_args(&s(&["trace.jsonl", "--top", "3"])).unwrap();
        assert_eq!(a.path, "trace.jsonl");
        assert_eq!(a.top, 3);
    }

    #[test]
    fn defaults_top_to_ten() {
        assert_eq!(parse_args(&s(&["t.jsonl"])).unwrap().top, 10);
    }

    #[test]
    fn rejects_missing_path_and_bad_flags() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["a", "b"])).is_err());
        assert!(parse_args(&s(&["--nope", "t"])).is_err());
        assert!(parse_args(&s(&["t", "--top", "x"])).is_err());
    }
}
