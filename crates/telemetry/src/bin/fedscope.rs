//! `fedscope`: algorithm-health reports and run diffs from FedProxVR
//! health JSONL traces.
//!
//! ```text
//! fedscope report <health.jsonl> [--strict]   render health summary + timeline
//! fedscope check  <health.jsonl>              schema validation (CI)
//! fedscope diff   <a.jsonl> <b.jsonl>         regression view, b vs baseline a
//! fedscope <health.jsonl>                     shorthand for `report`
//! ```
//!
//! Exit codes are CI-gateable: `check` fails on schema violations,
//! `diff` fails when the candidate run raises anomalies the baseline
//! lacks, and `report --strict` fails when any anomaly is present.
//! Works on any file produced by `--health` on the bench binaries;
//! needs no cargo features.


// CLI binary: aborting with context on a broken invocation or run is
// the intended error policy (fedlint exempts src/bin targets too).
#![allow(clippy::unwrap_used, clippy::expect_used)]
use fedprox_telemetry::jsonl;
use fedprox_telemetry::scope::{self, HealthReport};
use std::process::ExitCode;

const USAGE: &str = "usage: fedscope [report] <health.jsonl> [--strict]\n\
                     \u{20}      fedscope check <health.jsonl>\n\
                     \u{20}      fedscope diff <baseline.jsonl> <candidate.jsonl>";

enum Cmd {
    Report { path: String, strict: bool },
    Check { path: String },
    Diff { baseline: String, candidate: String },
}

fn parse_args(argv: &[String]) -> Result<Cmd, String> {
    let mut positional: Vec<String> = Vec::new();
    let mut strict = false;
    let mut sub: Option<&str> = None;
    for (i, arg) in argv.iter().enumerate() {
        match arg.as_str() {
            "--strict" => strict = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            "report" | "check" | "diff" if i == 0 => sub = Some(arg.as_str()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`\n{USAGE}"));
            }
            other => positional.push(other.to_string()),
        }
    }
    match (sub, positional.as_slice()) {
        (None | Some("report"), [path]) => Ok(Cmd::Report { path: path.clone(), strict }),
        (Some("check"), [path]) => Ok(Cmd::Check { path: path.clone() }),
        (Some("diff"), [a, b]) => Ok(Cmd::Diff { baseline: a.clone(), candidate: b.clone() }),
        _ => Err(USAGE.to_string()),
    }
}

fn load(path: &str) -> Result<HealthReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let events = jsonl::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(HealthReport::from_events(&events))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&argv) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(cmd) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fedscope: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: Cmd) -> Result<ExitCode, String> {
    match cmd {
        Cmd::Report { path, strict } => {
            let report = load(&path)?;
            print!("{}", report.render());
            if strict && !report.anomalies.is_empty() {
                eprintln!("fedscope: --strict and {} anomalies present", report.anomalies.len());
                return Ok(ExitCode::FAILURE);
            }
            Ok(ExitCode::SUCCESS)
        }
        Cmd::Check { path } => {
            let report = load(&path)?;
            let problems = report.validate();
            if problems.is_empty() {
                println!(
                    "fedscope check: ok ({} samples, {} anomalies)",
                    report.samples.len(),
                    report.anomalies.len()
                );
                Ok(ExitCode::SUCCESS)
            } else {
                for p in &problems {
                    eprintln!("fedscope check: {p}");
                }
                Ok(ExitCode::FAILURE)
            }
        }
        Cmd::Diff { baseline, candidate } => {
            let base = load(&baseline)?;
            let cand = load(&candidate)?;
            let d = scope::diff(&base, &cand);
            print!("{}", d.render());
            Ok(if d.has_regression() { ExitCode::FAILURE } else { ExitCode::SUCCESS })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn bare_path_is_report() {
        match parse_args(&s(&["h.jsonl"])).unwrap() {
            Cmd::Report { path, strict } => {
                assert_eq!(path, "h.jsonl");
                assert!(!strict);
            }
            _ => panic!("expected report"),
        }
    }

    #[test]
    fn report_strict_flag() {
        match parse_args(&s(&["report", "h.jsonl", "--strict"])).unwrap() {
            Cmd::Report { strict, .. } => assert!(strict),
            _ => panic!("expected report"),
        }
    }

    #[test]
    fn diff_takes_two_paths() {
        match parse_args(&s(&["diff", "a.jsonl", "b.jsonl"])).unwrap() {
            Cmd::Diff { baseline, candidate } => {
                assert_eq!(baseline, "a.jsonl");
                assert_eq!(candidate, "b.jsonl");
            }
            _ => panic!("expected diff"),
        }
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["diff", "a.jsonl"])).is_err());
        assert!(parse_args(&s(&["check", "a", "b"])).is_err());
        assert!(parse_args(&s(&["--nope"])).is_err());
        assert!(parse_args(&s(&["report", "a", "b"])).is_err());
    }
}
