//! Aggregated per-run summary: the `TelemetryReport`.
//!
//! Built either from a live collector drain or from a parsed JSONL
//! trace; `fedtrace` and the bench report path both render it with
//! [`TelemetryReport::render`].

use crate::event::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate timing of one instrumented operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpStat {
    /// Instrumented layer.
    pub layer: String,
    /// Operation name.
    pub name: String,
    /// Total activations.
    pub count: u64,
    /// Summed wall-clock duration in microseconds.
    pub total_micros: f64,
    /// Longest single activation in microseconds.
    pub max_micros: f64,
    /// Raw span events backing the percentile columns (a capped sample
    /// when the collector hit its buffer limit; can be far smaller than
    /// `count` when `span_stat` records are authoritative).
    pub samples: u64,
    /// Median activation in microseconds, computed from the raw span
    /// sample. `None` when fewer than two raw spans were recorded: a
    /// lone sample would report p50 == p95 == max and says nothing
    /// about the distribution.
    pub p50_micros: Option<f64>,
    /// 95th-percentile activation in microseconds (nearest-rank over
    /// the same raw sample as `p50_micros`; same two-sample guard).
    pub p95_micros: Option<f64>,
}

/// Per-device work and straggler summary (simulated seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStat {
    /// Device id.
    pub device: u32,
    /// Rounds this device participated in.
    pub rounds: u64,
    /// Total local compute time.
    pub compute_s: f64,
    /// Total `download + compute + upload`.
    pub finish_s: f64,
    /// Total straggler lag (finish minus round median; can be negative
    /// for consistently-fast devices).
    pub lag_s: f64,
    /// Worst single-round lag.
    pub max_lag_s: f64,
}

/// Traffic for one `(message kind, direction)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BytesStat {
    /// Wire message kind.
    pub kind: String,
    /// `down` or `up`.
    pub direction: String,
    /// Total bytes including retransmissions.
    pub bytes: u64,
    /// Rounds contributing traffic of this kind.
    pub rounds: u64,
}

/// The aggregated per-run summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Per-op timing, sorted by total time descending.
    pub ops: Vec<OpStat>,
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Per-device summaries, sorted by total lag descending.
    pub devices: Vec<DeviceStat>,
    /// Traffic by message kind, sorted by bytes descending.
    pub bytes: Vec<BytesStat>,
    /// Histograms, sorted by name: `(name, bounds, counts)`.
    pub histograms: Vec<(String, Vec<f64>, Vec<u64>)>,
    /// Simulated rounds observed (`round_end` events).
    pub rounds: u64,
    /// Raw span events present in the trace.
    pub span_events: u64,
    /// Events discarded at the buffer cap.
    pub dropped: u64,
    /// Algorithm-health samples present in the trace (see `fedscope`).
    pub health_samples: u64,
    /// Algorithm-health anomalies present in the trace (see `fedscope`).
    pub anomalies: u64,
    /// Per-round participation records from resilient (fault-injected)
    /// runs.
    pub participation_rounds: u64,
    /// Rounds skipped for failing quorum.
    pub skipped_rounds: u64,
    /// Span-tree path aggregates present in the trace (see `fedprof`).
    pub path_stats: u64,
    /// Raw span records truncated at the buffer cap with no streaming
    /// sink attached (aggregates stay exact; raw percentiles are a
    /// partial sample).
    pub truncated_spans: u64,
    /// Run-ledger headers present in the trace: `(config digest, seed,
    /// kernel selector)` per `run_meta` record (see `fedobs ledger`).
    pub run_headers: Vec<(String, u64, String)>,
    /// Post-mortem markers present in the trace (see `fedobs postmortem`).
    pub postmortems: u64,
}

/// Nearest-rank percentile of a sorted sample; `None` below two
/// samples (a lone observation carries no distributional information).
fn percentile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.len() < 2 {
        return None;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

impl TelemetryReport {
    /// Aggregate a flat event stream (live drain or parsed trace).
    ///
    /// `span_stat` records are authoritative for op timing when present
    /// (raw span events may have been capped); otherwise raw spans are
    /// aggregated directly.
    pub fn from_events(events: &[Event]) -> Self {
        let mut stats: BTreeMap<(String, String), OpStat> = BTreeMap::new();
        let mut raw: BTreeMap<(String, String), OpStat> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, f64> = BTreeMap::new();
        let mut devices: BTreeMap<u32, DeviceStat> = BTreeMap::new();
        let mut bytes: BTreeMap<(String, String), BytesStat> = BTreeMap::new();
        let mut histograms: BTreeMap<String, (Vec<f64>, Vec<u64>)> = BTreeMap::new();
        let mut durations: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
        let mut rounds = 0u64;
        let mut span_events = 0u64;
        let mut dropped = 0u64;
        let mut health_samples = 0u64;
        let mut anomalies = 0u64;
        let mut participation_rounds = 0u64;
        let mut skipped_rounds = 0u64;
        let mut path_stats = 0u64;
        let mut truncated_spans = 0u64;
        let mut run_headers: Vec<(String, u64, String)> = Vec::new();
        let mut postmortems = 0u64;

        for ev in events {
            match ev {
                Event::Span { layer, name, micros, .. } => {
                    span_events += 1;
                    let key = (layer.clone(), name.clone());
                    durations.entry(key.clone()).or_default().push(*micros);
                    let e = raw.entry(key).or_insert_with(|| OpStat {
                        layer: layer.clone(),
                        name: name.clone(),
                        count: 0,
                        total_micros: 0.0,
                        max_micros: 0.0,
                        samples: 0,
                        p50_micros: None,
                        p95_micros: None,
                    });
                    e.count = e.count.saturating_add(1);
                    e.total_micros += micros;
                    e.max_micros = e.max_micros.max(*micros);
                }
                Event::SpanStat { layer, name, count, total_micros, max_micros } => {
                    let e = stats.entry((layer.clone(), name.clone())).or_insert_with(|| OpStat {
                        layer: layer.clone(),
                        name: name.clone(),
                        count: 0,
                        total_micros: 0.0,
                        max_micros: 0.0,
                        samples: 0,
                        p50_micros: None,
                        p95_micros: None,
                    });
                    e.count = e.count.saturating_add(*count);
                    e.total_micros += total_micros;
                    e.max_micros = e.max_micros.max(*max_micros);
                }
                Event::Counter { name, value } => {
                    let c = counters.entry(name.clone()).or_insert(0);
                    *c = c.saturating_add(*value);
                }
                Event::Gauge { name, value } => {
                    gauges.insert(name.clone(), *value);
                }
                Event::Histogram { name, bounds, counts } => {
                    let (b, c) = histograms
                        .entry(name.clone())
                        .or_insert_with(|| (bounds.clone(), vec![0; counts.len()]));
                    if b == bounds && c.len() == counts.len() {
                        for (acc, v) in c.iter_mut().zip(counts) {
                            *acc = acc.saturating_add(*v);
                        }
                    }
                }
                Event::DeviceRound { round: _, device, download_s: _, compute_s, upload_s: _, finish_s, lag_s } => {
                    let d = devices.entry(*device).or_insert_with(|| DeviceStat {
                        device: *device,
                        rounds: 0,
                        compute_s: 0.0,
                        finish_s: 0.0,
                        lag_s: 0.0,
                        max_lag_s: f64::NEG_INFINITY,
                    });
                    d.rounds = d.rounds.saturating_add(1);
                    d.compute_s += compute_s;
                    d.finish_s += finish_s;
                    d.lag_s += lag_s;
                    d.max_lag_s = d.max_lag_s.max(*lag_s);
                }
                Event::Bytes { round: _, kind, direction, bytes: b } => {
                    let e = bytes
                        .entry((kind.clone(), direction.clone()))
                        .or_insert_with(|| BytesStat {
                            kind: kind.clone(),
                            direction: direction.clone(),
                            bytes: 0,
                            rounds: 0,
                        });
                    e.bytes = e.bytes.saturating_add(*b);
                    e.rounds = e.rounds.saturating_add(1);
                }
                Event::RoundEnd { .. } => rounds = rounds.saturating_add(1),
                Event::Health { .. } => health_samples = health_samples.saturating_add(1),
                Event::Anomaly { .. } => anomalies = anomalies.saturating_add(1),
                Event::Participation { skipped, .. } => {
                    participation_rounds = participation_rounds.saturating_add(1);
                    if *skipped > 0 {
                        skipped_rounds = skipped_rounds.saturating_add(1);
                    }
                }
                Event::PathStat { .. } => path_stats = path_stats.saturating_add(1),
                Event::TraceTruncated { dropped_spans } => {
                    truncated_spans = truncated_spans.saturating_add(*dropped_spans);
                }
                Event::Dropped { count } => dropped = dropped.saturating_add(*count),
                Event::RunMeta { config, seed, kernel, .. } => {
                    run_headers.push((config.clone(), *seed, kernel.clone()));
                }
                Event::Postmortem { .. } => postmortems = postmortems.saturating_add(1),
            }
        }

        let mut ops: Vec<OpStat> =
            if stats.is_empty() { raw } else { stats }.into_values().collect();
        // Percentiles always come from the raw sample (span_stat records
        // carry no distribution), so attach them to whichever map won.
        for op in &mut ops {
            if let Some(sample) = durations.get_mut(&(op.layer.clone(), op.name.clone())) {
                sample.sort_by(f64::total_cmp);
                op.samples = sample.len() as u64;
                op.p50_micros = percentile(sample, 0.50);
                op.p95_micros = percentile(sample, 0.95);
            }
        }
        ops.sort_by(|a, b| {
            b.total_micros
                .total_cmp(&a.total_micros)
                .then_with(|| a.layer.cmp(&b.layer))
                .then_with(|| a.name.cmp(&b.name))
        });
        let mut devices: Vec<DeviceStat> = devices.into_values().collect();
        devices.sort_by(|a, b| b.lag_s.total_cmp(&a.lag_s).then_with(|| a.device.cmp(&b.device)));
        let mut bytes: Vec<BytesStat> = bytes.into_values().collect();
        bytes.sort_by(|a, b| {
            b.bytes.cmp(&a.bytes).then_with(|| (&a.kind, &a.direction).cmp(&(&b.kind, &b.direction)))
        });

        TelemetryReport {
            ops,
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            devices,
            bytes,
            histograms: histograms.into_iter().map(|(n, (b, c))| (n, b, c)).collect(),
            rounds,
            span_events,
            dropped,
            health_samples,
            anomalies,
            participation_rounds,
            skipped_rounds,
            path_stats,
            truncated_spans,
            run_headers,
            postmortems,
        }
    }

    /// Render the top-`top_n` tables as plain text.
    pub fn render(&self, top_n: usize) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fedtrace summary: {} rounds, {} raw span events, {} dropped",
            self.rounds, self.span_events, self.dropped
        );
        for (config, seed, kernel) in &self.run_headers {
            let _ = writeln!(s, "run: config={config} seed={seed} kernel={kernel}");
        }
        if self.postmortems > 0 {
            let _ = writeln!(
                s,
                "post-mortem: {} trigger(s) in trace (see `fedobs postmortem`)",
                self.postmortems
            );
        }
        if self.health_samples > 0 || self.anomalies > 0 {
            let _ = writeln!(
                s,
                "health: {} samples, {} anomalies (see `fedscope` for the full report)",
                self.health_samples, self.anomalies
            );
        }
        if self.participation_rounds > 0 {
            let _ = writeln!(
                s,
                "participation: {} resilient rounds, {} skipped below quorum",
                self.participation_rounds, self.skipped_rounds
            );
        }
        if self.path_stats > 0 {
            let _ = writeln!(
                s,
                "profile: {} span-tree paths (see `fedprof report` for the tree)",
                self.path_stats
            );
        }
        if self.truncated_spans > 0 {
            let _ = writeln!(
                s,
                "warning: {} raw span records truncated at the buffer cap \
                 (aggregates are exact; percentiles are a partial sample)",
                self.truncated_spans
            );
        }

        if !self.ops.is_empty() {
            let _ = writeln!(s, "\n== slowest ops (top {top_n} by total time) ==");
            let _ = writeln!(
                s,
                "{:<8} {:<16} {:>10} {:>12} {:>10} {:>8} {:>10} {:>10} {:>10}",
                "layer", "op", "count", "total_ms", "mean_us", "n", "p50_us", "p95_us", "max_us"
            );
            let fmt_pct = |p: Option<f64>| match p {
                Some(v) => format!("{v:>10.2}"),
                None => format!("{:>10}", "-"),
            };
            for op in self.ops.iter().take(top_n) {
                let mean = if op.count > 0 { op.total_micros / op.count as f64 } else { 0.0 };
                let _ = writeln!(
                    s,
                    "{:<8} {:<16} {:>10} {:>12.3} {:>10.2} {:>8} {} {} {:>10.2}",
                    op.layer,
                    op.name,
                    op.count,
                    op.total_micros / 1000.0,
                    mean,
                    op.samples,
                    fmt_pct(op.p50_micros),
                    fmt_pct(op.p95_micros),
                    op.max_micros
                );
            }
        }

        if !self.devices.is_empty() {
            let _ = writeln!(s, "\n== busiest devices (top {top_n} by straggler lag) ==");
            let _ = writeln!(
                s,
                "{:<8} {:>8} {:>12} {:>12} {:>12} {:>12}",
                "device", "rounds", "compute_s", "finish_s", "lag_s", "max_lag_s"
            );
            for d in self.devices.iter().take(top_n) {
                let _ = writeln!(
                    s,
                    "{:<8} {:>8} {:>12.4} {:>12.4} {:>12.4} {:>12.4}",
                    d.device, d.rounds, d.compute_s, d.finish_s, d.lag_s, d.max_lag_s
                );
            }
        }

        if !self.bytes.is_empty() {
            let _ = writeln!(s, "\n== bytes by message kind ==");
            let _ = writeln!(s, "{:<16} {:<6} {:>14} {:>8}", "kind", "dir", "bytes", "rounds");
            for b in &self.bytes {
                let _ = writeln!(
                    s,
                    "{:<16} {:<6} {:>14} {:>8}",
                    b.kind, b.direction, b.bytes, b.rounds
                );
            }
        }

        if !self.counters.is_empty() {
            let _ = writeln!(s, "\n== counters ==");
            for (name, value) in &self.counters {
                let _ = writeln!(s, "{name:<32} {value:>14}");
            }
        }

        if !self.gauges.is_empty() {
            let _ = writeln!(s, "\n== gauges ==");
            for (name, value) in &self.gauges {
                let _ = writeln!(s, "{name:<32} {value:>14}");
            }
        }

        if !self.histograms.is_empty() {
            let _ = writeln!(s, "\n== histograms ==");
            for (name, bounds, counts) in &self.histograms {
                let _ = writeln!(s, "{name}:");
                let mut lo = f64::NEG_INFINITY;
                for (i, c) in counts.iter().enumerate() {
                    let hi = bounds.get(i).copied().unwrap_or(f64::INFINITY);
                    if *c > 0 {
                        let _ = writeln!(s, "  ({lo:>9.3e}, {hi:>9.3e}] {c:>10}");
                    }
                    lo = hi;
                }
            }
        }

        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<Event> {
        vec![
            Event::Span {
                layer: "tensor".into(),
                name: "softmax".into(),
                micros: 5.0,
                attrs: vec![],
            },
            Event::SpanStat {
                layer: "tensor".into(),
                name: "softmax".into(),
                count: 10,
                total_micros: 55.0,
                max_micros: 9.0,
            },
            Event::SpanStat {
                layer: "core".into(),
                name: "round".into(),
                count: 2,
                total_micros: 900.0,
                max_micros: 600.0,
            },
            Event::Counter { name: "optim.inner_step".into(), value: 40 },
            Event::DeviceRound {
                round: 0,
                device: 0,
                download_s: 0.05,
                compute_s: 0.2,
                upload_s: 0.05,
                finish_s: 0.3,
                lag_s: -0.1,
            },
            Event::DeviceRound {
                round: 0,
                device: 1,
                download_s: 0.05,
                compute_s: 0.5,
                upload_s: 0.05,
                finish_s: 0.6,
                lag_s: 0.2,
            },
            Event::Bytes { round: 0, kind: "global_model".into(), direction: "down".into(), bytes: 100 },
            Event::Bytes { round: 0, kind: "local_model".into(), direction: "up".into(), bytes: 140 },
            Event::RoundEnd { round: 0, sim_time_s: 0.7 },
            Event::Dropped { count: 3 },
        ]
    }

    #[test]
    fn span_stats_override_raw_spans() {
        let r = TelemetryReport::from_events(&trace());
        // `span_stat` present → raw span ignored for op totals.
        let softmax = r.ops.iter().find(|o| o.name == "softmax").unwrap();
        assert_eq!(softmax.count, 10);
        assert_eq!(r.span_events, 1);
        // Sorted by total time descending: core.round first.
        assert_eq!(r.ops[0].name, "round");
    }

    #[test]
    fn raw_spans_used_when_no_stats() {
        let events = vec![
            Event::Span { layer: "t".into(), name: "a".into(), micros: 3.0, attrs: vec![] },
            Event::Span { layer: "t".into(), name: "a".into(), micros: 7.0, attrs: vec![] },
        ];
        let r = TelemetryReport::from_events(&events);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(r.ops[0].count, 2);
        assert!((r.ops[0].total_micros - 10.0).abs() < 1e-12);
        // Two samples clear the count guard.
        assert_eq!(r.ops[0].samples, 2);
        assert_eq!(r.ops[0].p50_micros, Some(3.0));
    }

    #[test]
    fn percentiles_from_raw_spans() {
        // 1..=100 µs: nearest-rank p50 = 50, p95 = 95.
        let events: Vec<Event> = (1..=100)
            .map(|i| Event::Span {
                layer: "t".into(),
                name: "a".into(),
                micros: i as f64,
                attrs: vec![],
            })
            .collect();
        let r = TelemetryReport::from_events(&events);
        assert_eq!(r.ops[0].samples, 100);
        assert_eq!(r.ops[0].p50_micros, Some(50.0));
        assert_eq!(r.ops[0].p95_micros, Some(95.0));
    }

    #[test]
    fn percentiles_attach_to_span_stats_when_raw_present() {
        let r = TelemetryReport::from_events(&trace());
        // softmax has one raw span (5.0 µs) plus an authoritative stat:
        // totals come from the stat; a lone raw sample is below the
        // percentile count guard, so the columns stay empty rather than
        // reporting p50 == p95 from one observation.
        let softmax = r.ops.iter().find(|o| o.name == "softmax").unwrap();
        assert_eq!(softmax.count, 10);
        assert_eq!(softmax.samples, 1);
        assert_eq!(softmax.p50_micros, None);
        assert_eq!(softmax.p95_micros, None);
        // core.round has no raw spans at all → no percentiles.
        let round = r.ops.iter().find(|o| o.name == "round").unwrap();
        assert_eq!(round.samples, 0);
        assert_eq!(round.p50_micros, None);
    }

    #[test]
    fn single_sample_has_no_percentiles_but_reports_n() {
        let events =
            vec![Event::Span { layer: "t".into(), name: "solo".into(), micros: 5.0, attrs: vec![] }];
        let r = TelemetryReport::from_events(&events);
        assert_eq!(r.ops[0].samples, 1);
        assert_eq!(r.ops[0].p50_micros, None);
        assert_eq!(r.ops[0].p95_micros, None);
        // The table carries an explicit sample-size column and renders
        // the guarded percentiles as "-".
        let text = r.render(5);
        let header = text.lines().find(|l| l.contains("p50_us")).expect("ops header");
        assert!(header.contains(" n "), "missing n column in {header:?}");
        let row = text.lines().find(|l| l.contains("solo")).expect("ops row");
        assert!(row.contains('-'), "guarded percentile must render as '-': {row:?}");
    }

    #[test]
    fn run_headers_and_postmortems_surface() {
        let events = vec![
            Event::RunMeta {
                version: 1,
                config: "9e3779b97f4a7c15".into(),
                seed: 7,
                kernel: "tiled-par".into(),
                faults: "0".into(),
                features: "telemetry".into(),
                crates: "fedprox=0.1.0".into(),
            },
            Event::Postmortem { round: 3, reason: "quorum_skip".into(), device: Some(1) },
        ];
        let r = TelemetryReport::from_events(&events);
        assert_eq!(r.run_headers, vec![("9e3779b97f4a7c15".to_string(), 7, "tiled-par".to_string())]);
        assert_eq!(r.postmortems, 1);
        let text = r.render(5);
        assert!(text.contains("config=9e3779b97f4a7c15"));
        assert!(text.contains("fedobs postmortem"));
    }

    #[test]
    fn health_events_counted() {
        let mut events = trace();
        events.push(Event::Health {
            round: 1,
            train_loss: 0.5,
            loss_delta: 0.0,
            grad_norm_sq: 0.1,
            theta: None,
            theta_lo: None,
            theta_hi: None,
            bound: None,
            dir_mean_sq: 0.0,
            dir_m2: 0.0,
            dir_anchor_sq: 0.0,
            dir_steps: 0,
            skew: None,
        });
        events.push(Event::Anomaly {
            round: 1,
            rule: crate::event::AnomalyRule::LossGuard,
            device: None,
            value: 2.0,
            limit: 1.0,
        });
        let r = TelemetryReport::from_events(&events);
        assert_eq!(r.health_samples, 1);
        assert_eq!(r.anomalies, 1);
        assert!(r.render(5).contains("1 anomalies"));
    }

    #[test]
    fn devices_sorted_by_lag() {
        let r = TelemetryReport::from_events(&trace());
        assert_eq!(r.devices[0].device, 1);
        assert!((r.devices[0].lag_s - 0.2).abs() < 1e-12);
        assert_eq!(r.devices[0].rounds, 1);
    }

    #[test]
    fn bytes_and_counters_aggregate() {
        let r = TelemetryReport::from_events(&trace());
        assert_eq!(r.bytes[0].kind, "local_model");
        assert_eq!(r.bytes[0].bytes, 140);
        assert_eq!(r.counters, vec![("optim.inner_step".to_string(), 40)]);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.dropped, 3);
    }

    #[test]
    fn render_contains_all_tables() {
        let text = TelemetryReport::from_events(&trace()).render(5);
        for needle in
            ["slowest ops", "busiest devices", "bytes by message kind", "counters", "global_model"]
        {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let text = TelemetryReport::from_events(&[]).render(5);
        assert!(text.contains("0 rounds"));
        assert!(!text.contains("slowest ops"));
    }
}
