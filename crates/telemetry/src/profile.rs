//! Span-tree profile model: the read side of `fedprof`.
//!
//! Consumes the `path_stat` records a trace carries (produced by the
//! collector's thread-local scope stack), reassembles them into a tree
//! ordered parent-before-child, and renders the three `fedprof` views:
//! a path-tree table, collapsed stacks for flamegraph tools, and a
//! cross-run aggregate with per-path medians and deltas. Like the rest
//! of the read side this module needs no cargo features: it parses
//! traces, it never records them.

use crate::event::Event;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One span-tree path aggregated over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct PathRow {
    /// `/`-joined span names from the outermost scope down.
    pub path: String,
    /// Activations of this exact path.
    pub count: u64,
    /// Summed wall time, µs.
    pub total_micros: f64,
    /// Summed wall time minus time inside child spans, µs.
    pub self_micros: f64,
    /// Longest single activation, µs.
    pub max_micros: f64,
    /// Allocator bytes attributed to the subtree (0 without a probe).
    pub total_bytes: u64,
    /// Allocator bytes attributed to this path itself.
    pub self_bytes: u64,
    /// Allocator calls attributed to the subtree.
    pub total_allocs: u64,
    /// Allocator calls attributed to this path itself.
    pub self_allocs: u64,
}

impl PathRow {
    /// Nesting depth: number of `/`-separated segments.
    pub fn depth(&self) -> usize {
        self.path.split('/').count()
    }

    /// Leaf segment (the span's own name).
    pub fn leaf(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// A run's span-tree profile: every observed path, parent before child,
/// siblings in lexicographic order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Tree rows in render order.
    pub paths: Vec<PathRow>,
}

/// Sort key: the segment vector, so `a/b` sorts directly after `a` and
/// before `a2` (plain string order would interleave them).
fn segments(path: &str) -> Vec<&str> {
    path.split('/').collect()
}

impl ProfileReport {
    /// Extract and merge the `path_stat` records of a flat event stream
    /// (duplicate paths — e.g. from concatenated partial traces — are
    /// summed; `max` columns take the max).
    pub fn from_events(events: &[Event]) -> Self {
        let mut map: BTreeMap<String, PathRow> = BTreeMap::new();
        for ev in events {
            let Event::PathStat {
                path,
                count,
                total_micros,
                self_micros,
                max_micros,
                total_bytes,
                self_bytes,
                total_allocs,
                self_allocs,
            } = ev
            else {
                continue;
            };
            let row = map.entry(path.clone()).or_insert_with(|| PathRow {
                path: path.clone(),
                count: 0,
                total_micros: 0.0,
                self_micros: 0.0,
                max_micros: 0.0,
                total_bytes: 0,
                self_bytes: 0,
                total_allocs: 0,
                self_allocs: 0,
            });
            row.count = row.count.saturating_add(*count);
            row.total_micros += total_micros;
            row.self_micros += self_micros;
            row.max_micros = row.max_micros.max(*max_micros);
            row.total_bytes = row.total_bytes.saturating_add(*total_bytes);
            row.self_bytes = row.self_bytes.saturating_add(*self_bytes);
            row.total_allocs = row.total_allocs.saturating_add(*total_allocs);
            row.self_allocs = row.self_allocs.saturating_add(*self_allocs);
        }
        let mut paths: Vec<PathRow> = map.into_values().collect();
        paths.sort_by(|a, b| segments(&a.path).cmp(&segments(&b.path)));
        ProfileReport { paths }
    }

    /// Deepest nesting level present (0 for an empty profile).
    pub fn max_depth(&self) -> usize {
        self.paths.iter().map(PathRow::depth).max().unwrap_or(0)
    }

    /// Whether the trace carried any allocation attribution (a probe
    /// was installed during the run).
    pub fn has_alloc_data(&self) -> bool {
        self.paths.iter().any(|p| p.total_allocs > 0)
    }

    /// Render the path-tree table: one row per path, leaf name indented
    /// by depth, with count, total/self/max time and — when present —
    /// total/self allocation columns.
    pub fn render_tree(&self) -> String {
        let mut s = String::new();
        if self.paths.is_empty() {
            let _ = writeln!(
                s,
                "no span-tree data in trace (run with --prof, or --trace on an \
                 armed telemetry build)"
            );
            return s;
        }
        let allocs = self.has_alloc_data();
        let name_w = self
            .paths
            .iter()
            .map(|p| 2 * (p.depth() - 1) + p.leaf().len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = write!(
            s,
            "{:<name_w$} {:>10} {:>12} {:>12} {:>10}",
            "path", "count", "total_ms", "self_ms", "max_us"
        );
        if allocs {
            let _ = write!(s, " {:>14} {:>14} {:>12} {:>12}", "total_bytes", "self_bytes", "total_allocs", "self_allocs");
        }
        let _ = writeln!(s);
        for p in &self.paths {
            let indent = "  ".repeat(p.depth() - 1);
            let label = format!("{indent}{}", p.leaf());
            let _ = write!(
                s,
                "{label:<name_w$} {:>10} {:>12.3} {:>12.3} {:>10.2}",
                p.count,
                p.total_micros / 1000.0,
                p.self_micros / 1000.0,
                p.max_micros
            );
            if allocs {
                let _ = write!(
                    s,
                    " {:>14} {:>14} {:>12} {:>12}",
                    p.total_bytes, p.self_bytes, p.total_allocs, p.self_allocs
                );
            }
            let _ = writeln!(s);
        }
        s
    }

    /// Render collapsed stacks — the `a;b;c <weight>` lines standard
    /// flamegraph tools consume. The weight is the path's *self* time in
    /// integer microseconds (the collapsed-stack convention: totals are
    /// reconstructed by the renderer from descendant frames). Paths with
    /// zero rounded self-time are kept at weight 0 so frame counts stay
    /// faithful.
    pub fn render_flame(&self) -> String {
        let mut s = String::new();
        for p in &self.paths {
            let weight = p.self_micros.max(0.0).round() as u64;
            let _ = writeln!(s, "{} {weight}", p.path.replace('/', ";"));
        }
        s
    }
}

/// One path's statistics across N runs.
#[derive(Debug, Clone, PartialEq)]
pub struct AggRow {
    /// The span-tree path.
    pub path: String,
    /// Runs (out of those aggregated) in which the path appeared.
    pub runs: usize,
    /// Per-run activation counts, in input order.
    pub counts: Vec<u64>,
    /// Median of per-run total time, µs.
    pub median_total_micros: f64,
    /// Max − min of per-run total time, µs.
    pub delta_total_micros: f64,
    /// Median of per-run self time, µs.
    pub median_self_micros: f64,
    /// Max − min of per-run self time, µs.
    pub delta_self_micros: f64,
    /// Per-run `(total_bytes, self_bytes, total_allocs, self_allocs)`.
    pub allocs: Vec<(u64, u64, u64, u64)>,
}

impl AggRow {
    /// Whether every deterministic column — activation count and the
    /// four allocation columns — is identical across all runs the path
    /// appeared in. Wall-clock columns are host noise and excluded.
    pub fn deterministic_columns_match(&self) -> bool {
        self.counts.windows(2).all(|w| w[0] == w[1])
            && self.allocs.windows(2).all(|w| w[0] == w[1])
    }
}

/// Cross-run aggregate of N profiles (repeated or concurrent runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AggReport {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Tree rows in render order (same ordering as [`ProfileReport`]).
    pub rows: Vec<AggRow>,
}

/// Median of an unsorted non-empty sample (mean of the two middles for
/// even sizes); 0 for empty.
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

impl AggReport {
    /// Merge N per-run profiles into one cross-run report.
    pub fn from_profiles(profiles: &[ProfileReport]) -> Self {
        let mut by_path: BTreeMap<String, Vec<&PathRow>> = BTreeMap::new();
        for profile in profiles {
            for row in &profile.paths {
                by_path.entry(row.path.clone()).or_default().push(row);
            }
        }
        let mut rows: Vec<AggRow> = by_path
            .into_iter()
            .map(|(path, per_run)| {
                let mut totals: Vec<f64> = per_run.iter().map(|r| r.total_micros).collect();
                let mut selfs: Vec<f64> = per_run.iter().map(|r| r.self_micros).collect();
                let spread = |v: &[f64]| {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for x in v {
                        lo = lo.min(*x);
                        hi = hi.max(*x);
                    }
                    (hi - lo).max(0.0)
                };
                let delta_total_micros = spread(&totals);
                let delta_self_micros = spread(&selfs);
                AggRow {
                    path,
                    runs: per_run.len(),
                    counts: per_run.iter().map(|r| r.count).collect(),
                    median_total_micros: median(&mut totals),
                    delta_total_micros,
                    median_self_micros: median(&mut selfs),
                    delta_self_micros,
                    allocs: per_run
                        .iter()
                        .map(|r| (r.total_bytes, r.self_bytes, r.total_allocs, r.self_allocs))
                        .collect(),
                }
            })
            .collect();
        rows.sort_by(|a, b| segments(&a.path).cmp(&segments(&b.path)));
        AggReport { runs: profiles.len(), rows }
    }

    /// Paths that appeared in every run but whose deterministic columns
    /// (count, bytes, allocs) disagree — plus paths missing from some
    /// runs. Empty means the runs are structurally identical.
    pub fn deterministic_mismatches(&self) -> Vec<&AggRow> {
        self.rows
            .iter()
            .filter(|r| r.runs != self.runs || !r.deterministic_columns_match())
            .collect()
    }

    /// Render the cross-run table: per-path run coverage, the (shared or
    /// ranged) activation count, time medians with max−min deltas, and a
    /// `det` column marking deterministic-column agreement.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "fedprof agg: {} runs, {} paths", self.runs, self.rows.len());
        if self.rows.is_empty() {
            return s;
        }
        let name_w = self
            .rows
            .iter()
            .map(|r| 2 * (segments(&r.path).len() - 1) + r.path.rsplit('/').next().unwrap_or("").len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            s,
            "{:<name_w$} {:>5} {:>12} {:>14} {:>12} {:>14} {:>12} {:>4}",
            "path", "runs", "count", "med_total_ms", "d_total_ms", "med_self_ms", "d_self_ms", "det"
        );
        for r in &self.rows {
            let depth = segments(&r.path).len();
            let indent = "  ".repeat(depth - 1);
            let leaf = r.path.rsplit('/').next().unwrap_or(&r.path);
            let label = format!("{indent}{leaf}");
            let count = match (r.counts.iter().min(), r.counts.iter().max()) {
                (Some(lo), Some(hi)) if lo == hi => format!("{lo}"),
                (Some(lo), Some(hi)) => format!("{lo}..{hi}"),
                _ => "-".to_string(),
            };
            let det = if r.runs == self.runs && r.deterministic_columns_match() {
                "yes"
            } else {
                "NO"
            };
            let _ = writeln!(
                s,
                "{label:<name_w$} {:>5} {count:>12} {:>14.3} {:>12.3} {:>14.3} {:>12.3} {det:>4}",
                r.runs,
                r.median_total_micros / 1000.0,
                r.delta_total_micros / 1000.0,
                r.median_self_micros / 1000.0,
                r.delta_self_micros / 1000.0,
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(path: &str, count: u64, total: f64, self_us: f64, bytes: u64) -> Event {
        Event::PathStat {
            path: path.to_string(),
            count,
            total_micros: total,
            self_micros: self_us,
            max_micros: total,
            total_bytes: bytes,
            self_bytes: bytes / 2,
            total_allocs: bytes / 10,
            self_allocs: bytes / 20,
        }
    }

    #[test]
    fn tree_orders_parents_before_children() {
        let events = vec![
            stat("round/device_update", 3, 30.0, 10.0, 0),
            stat("round", 1, 50.0, 20.0, 0),
            stat("round/evaluate", 1, 5.0, 5.0, 0),
            stat("round/device_update/local_solve", 3, 20.0, 20.0, 0),
        ];
        let p = ProfileReport::from_events(&events);
        let order: Vec<&str> = p.paths.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            order,
            vec![
                "round",
                "round/device_update",
                "round/device_update/local_solve",
                "round/evaluate"
            ]
        );
        assert_eq!(p.max_depth(), 3);
        assert!(!p.has_alloc_data());
    }

    #[test]
    fn segment_sort_beats_plain_string_order() {
        // Plain string order would put "a2" between "a" and "a/b"
        // ('/' > '2' in ASCII); segment order must not.
        let events =
            vec![stat("a2", 1, 1.0, 1.0, 0), stat("a/b", 1, 1.0, 1.0, 0), stat("a", 1, 2.0, 1.0, 0)];
        let p = ProfileReport::from_events(&events);
        let order: Vec<&str> = p.paths.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(order, vec!["a", "a/b", "a2"]);
    }

    #[test]
    fn duplicate_paths_merge() {
        let events = vec![stat("round", 2, 10.0, 4.0, 100), stat("round", 3, 20.0, 6.0, 50)];
        let p = ProfileReport::from_events(&events);
        assert_eq!(p.paths.len(), 1);
        assert_eq!(p.paths[0].count, 5);
        assert!((p.paths[0].total_micros - 30.0).abs() < 1e-12);
        assert!((p.paths[0].self_micros - 10.0).abs() < 1e-12);
        assert_eq!(p.paths[0].total_bytes, 150);
        assert!(p.has_alloc_data());
    }

    #[test]
    fn tree_table_indents_and_shows_alloc_columns_only_with_data() {
        let p = ProfileReport::from_events(&[
            stat("round", 1, 50.0, 20.0, 0),
            stat("round/device_update", 3, 30.0, 30.0, 0),
        ]);
        let text = p.render_tree();
        assert!(text.contains("\n  device_update"), "child indented:\n{text}");
        assert!(!text.contains("total_bytes"));
        let q = ProfileReport::from_events(&[stat("round", 1, 50.0, 20.0, 1000)]);
        assert!(q.render_tree().contains("total_bytes"));
    }

    #[test]
    fn flame_lines_are_collapsed_stacks_of_self_time() {
        let p = ProfileReport::from_events(&[
            stat("round", 1, 50.0, 20.4, 0),
            stat("round/device_update", 3, 30.0, 29.6, 0),
        ]);
        let text = p.render_flame();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["round 20", "round;device_update 30"]);
        // Every line must match the `seg(;seg)* <int>` shape.
        for line in lines {
            let (stack, weight) = line.rsplit_once(' ').expect("space");
            assert!(!stack.is_empty() && !stack.contains('/'));
            weight.parse::<u64>().expect("integer weight");
        }
    }

    #[test]
    fn agg_medians_deltas_and_determinism() {
        let run = |t1: f64, t2: f64, bytes: u64| {
            ProfileReport::from_events(&[
                stat("round", 2, t1, t1 / 2.0, bytes),
                stat("round/solve", 4, t2, t2, bytes / 2),
            ])
        };
        let agg = AggReport::from_profiles(&[run(10.0, 6.0, 100), run(14.0, 8.0, 100)]);
        assert_eq!(agg.runs, 2);
        assert_eq!(agg.rows.len(), 2);
        let round = &agg.rows[0];
        assert_eq!(round.path, "round");
        assert_eq!(round.counts, vec![2, 2]);
        assert!((round.median_total_micros - 12.0).abs() < 1e-12);
        assert!((round.delta_total_micros - 4.0).abs() < 1e-12);
        assert!(round.deterministic_columns_match());
        assert!(agg.deterministic_mismatches().is_empty());
        assert!(agg.render().contains("yes"));
        // Different alloc bytes → deterministic columns disagree.
        let drifted = AggReport::from_profiles(&[run(10.0, 6.0, 100), run(10.0, 6.0, 102)]);
        let bad = drifted.deterministic_mismatches();
        assert_eq!(bad.len(), 2);
        assert!(drifted.render().contains("NO"));
    }

    #[test]
    fn agg_flags_paths_missing_from_some_runs() {
        let a = ProfileReport::from_events(&[stat("round", 1, 1.0, 1.0, 0)]);
        let b = ProfileReport::from_events(&[
            stat("round", 1, 1.0, 1.0, 0),
            stat("round/extra", 1, 1.0, 1.0, 0),
        ]);
        let agg = AggReport::from_profiles(&[a, b]);
        let bad = agg.deterministic_mismatches();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, "round/extra");
        assert_eq!(bad[0].runs, 1);
    }

    #[test]
    fn empty_profile_renders_hint() {
        let p = ProfileReport::from_events(&[]);
        assert!(p.render_tree().contains("no span-tree data"));
        assert_eq!(p.render_flame(), "");
        assert_eq!(p.max_depth(), 0);
    }
}
