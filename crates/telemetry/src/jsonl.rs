//! JSONL encoding of telemetry events.
//!
//! Hand-rolled on both sides: the crate is dependency-free so the
//! collector cannot perturb the build graph of the code it observes, and
//! `fedtrace` must parse traces in the default (telemetry-disabled)
//! workspace configuration. The grammar is one JSON object per line with
//! a `"t"` tag (see [`Event::kind`]); the parser accepts exactly the
//! subset of JSON the writer emits (objects, arrays, strings, numbers).

use crate::event::{AnomalyRule, Event};
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    // `{}` is the shortest round-trip representation; non-finite values
    // never occur in practice but must still produce valid JSON.
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn push_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => push_f64(out, v),
        None => out.push_str("null"),
    }
}

fn push_opt_u32(out: &mut String, v: Option<u32>) {
    match v {
        Some(v) => {
            let _ = write!(out, "{v}");
        }
        None => out.push_str("null"),
    }
}

/// Encode one event as a single JSON line (no trailing newline).
pub fn write_line(event: &Event) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"t\":\"");
    s.push_str(event.kind());
    s.push('"');
    match event {
        Event::Span { layer, name, micros, attrs } => {
            s.push_str(",\"layer\":");
            push_str_escaped(&mut s, layer);
            s.push_str(",\"name\":");
            push_str_escaped(&mut s, name);
            s.push_str(",\"us\":");
            push_f64(&mut s, *micros);
            s.push_str(",\"attrs\":{");
            for (i, (k, v)) in attrs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_str_escaped(&mut s, k);
                s.push(':');
                push_f64(&mut s, *v);
            }
            s.push('}');
        }
        Event::SpanStat { layer, name, count, total_micros, max_micros } => {
            s.push_str(",\"layer\":");
            push_str_escaped(&mut s, layer);
            s.push_str(",\"name\":");
            push_str_escaped(&mut s, name);
            let _ = write!(s, ",\"count\":{count},\"total_us\":");
            push_f64(&mut s, *total_micros);
            s.push_str(",\"max_us\":");
            push_f64(&mut s, *max_micros);
        }
        Event::Counter { name, value } => {
            s.push_str(",\"name\":");
            push_str_escaped(&mut s, name);
            let _ = write!(s, ",\"value\":{value}");
        }
        Event::Gauge { name, value } => {
            s.push_str(",\"name\":");
            push_str_escaped(&mut s, name);
            s.push_str(",\"value\":");
            push_f64(&mut s, *value);
        }
        Event::Histogram { name, bounds, counts } => {
            s.push_str(",\"name\":");
            push_str_escaped(&mut s, name);
            s.push_str(",\"bounds\":[");
            for (i, b) in bounds.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                push_f64(&mut s, *b);
            }
            s.push_str("],\"counts\":[");
            for (i, c) in counts.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{c}");
            }
            s.push(']');
        }
        Event::DeviceRound { round, device, download_s, compute_s, upload_s, finish_s, lag_s } => {
            let _ = write!(s, ",\"round\":{round},\"device\":{device},\"download_s\":");
            push_f64(&mut s, *download_s);
            s.push_str(",\"compute_s\":");
            push_f64(&mut s, *compute_s);
            s.push_str(",\"upload_s\":");
            push_f64(&mut s, *upload_s);
            s.push_str(",\"finish_s\":");
            push_f64(&mut s, *finish_s);
            s.push_str(",\"lag_s\":");
            push_f64(&mut s, *lag_s);
        }
        Event::Bytes { round, kind, direction, bytes } => {
            let _ = write!(s, ",\"round\":{round},\"kind\":");
            push_str_escaped(&mut s, kind);
            s.push_str(",\"dir\":");
            push_str_escaped(&mut s, direction);
            let _ = write!(s, ",\"bytes\":{bytes}");
        }
        Event::RoundEnd { round, sim_time_s } => {
            let _ = write!(s, ",\"round\":{round},\"sim_time_s\":");
            push_f64(&mut s, *sim_time_s);
        }
        Event::Health {
            round,
            train_loss,
            loss_delta,
            grad_norm_sq,
            theta,
            theta_lo,
            theta_hi,
            bound,
            dir_mean_sq,
            dir_m2,
            dir_anchor_sq,
            dir_steps,
            skew,
        } => {
            let _ = write!(s, ",\"round\":{round},\"loss\":");
            push_f64(&mut s, *train_loss);
            s.push_str(",\"dloss\":");
            push_f64(&mut s, *loss_delta);
            s.push_str(",\"gap\":");
            push_f64(&mut s, *grad_norm_sq);
            s.push_str(",\"theta\":");
            push_opt_f64(&mut s, *theta);
            s.push_str(",\"theta_lo\":");
            push_opt_f64(&mut s, *theta_lo);
            s.push_str(",\"theta_hi\":");
            push_opt_f64(&mut s, *theta_hi);
            s.push_str(",\"bound\":");
            push_opt_f64(&mut s, *bound);
            s.push_str(",\"dir_mean_sq\":");
            push_f64(&mut s, *dir_mean_sq);
            s.push_str(",\"dir_m2\":");
            push_f64(&mut s, *dir_m2);
            s.push_str(",\"dir_anchor_sq\":");
            push_f64(&mut s, *dir_anchor_sq);
            let _ = write!(s, ",\"dir_steps\":{dir_steps},\"skew\":");
            push_opt_f64(&mut s, *skew);
        }
        Event::Anomaly { round, rule, device, value, limit } => {
            let _ = write!(s, ",\"round\":{round},\"rule\":\"{}\",\"device\":", rule.name());
            push_opt_u32(&mut s, *device);
            s.push_str(",\"value\":");
            push_f64(&mut s, *value);
            s.push_str(",\"limit\":");
            push_f64(&mut s, *limit);
        }
        Event::Participation {
            round,
            responded,
            crashed,
            offline,
            deadline_miss,
            link_failed,
            weight,
            skipped,
        } => {
            let _ = write!(
                s,
                ",\"round\":{round},\"responded\":{responded},\"crashed\":{crashed},\"offline\":{offline},\"deadline_miss\":{deadline_miss},\"link_failed\":{link_failed},\"weight\":"
            );
            push_f64(&mut s, *weight);
            let _ = write!(s, ",\"skipped\":{skipped}");
        }
        Event::PathStat {
            path,
            count,
            total_micros,
            self_micros,
            max_micros,
            total_bytes,
            self_bytes,
            total_allocs,
            self_allocs,
        } => {
            s.push_str(",\"path\":");
            push_str_escaped(&mut s, path);
            let _ = write!(s, ",\"count\":{count},\"total_us\":");
            push_f64(&mut s, *total_micros);
            s.push_str(",\"self_us\":");
            push_f64(&mut s, *self_micros);
            s.push_str(",\"max_us\":");
            push_f64(&mut s, *max_micros);
            let _ = write!(
                s,
                ",\"total_bytes\":{total_bytes},\"self_bytes\":{self_bytes},\
                 \"total_allocs\":{total_allocs},\"self_allocs\":{self_allocs}"
            );
        }
        Event::TraceTruncated { dropped_spans } => {
            let _ = write!(s, ",\"dropped_spans\":{dropped_spans}");
        }
        Event::Dropped { count } => {
            let _ = write!(s, ",\"count\":{count}");
        }
        Event::RunMeta { version, config, seed, kernel, faults, features, crates } => {
            let _ = write!(s, ",\"version\":{version},\"config\":");
            push_str_escaped(&mut s, config);
            let _ = write!(s, ",\"seed\":{seed},\"kernel\":");
            push_str_escaped(&mut s, kernel);
            s.push_str(",\"faults\":");
            push_str_escaped(&mut s, faults);
            s.push_str(",\"features\":");
            push_str_escaped(&mut s, features);
            s.push_str(",\"crates\":");
            push_str_escaped(&mut s, crates);
        }
        Event::Postmortem { round, reason, device } => {
            let _ = write!(s, ",\"round\":{round},\"reason\":");
            push_str_escaped(&mut s, reason);
            s.push_str(",\"device\":");
            push_opt_u32(&mut s, *device);
        }
    }
    s.push('}');
    s
}

/// Encode a whole trace, one event per line, trailing newline included.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&write_line(e));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A parse failure with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-indexed line of the offending record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Minimal JSON value (only what the writer emits).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(f64),
    UInt(u64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.consume(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("dangling escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape `\\{}`", other as char)),
                    }
                }
                _ => {
                    // Resync to a char boundary for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes".to_string())?;
        // Integers parse as u64 first so byte/count totals near u64::MAX
        // survive a round trip exactly.
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::UInt(v));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn f64_field(obj: &Json, key: &str) -> Result<f64, String> {
    field(obj, key)?.as_f64().ok_or_else(|| format!("field `{key}` is not a number"))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    field(obj, key)?.as_u64().ok_or_else(|| format!("field `{key}` is not an integer"))
}

fn u32_field(obj: &Json, key: &str) -> Result<u32, String> {
    u64_field(obj, key)?
        .try_into()
        .map_err(|_| format!("field `{key}` exceeds u32"))
}

/// Optional number: JSON `null` parses to `None` (distinct from
/// [`Json::as_f64`]'s `null` → NaN, so `Option<f64>` fields round-trip
/// under `PartialEq`).
fn opt_f64_field(obj: &Json, key: &str) -> Result<Option<f64>, String> {
    match field(obj, key)? {
        Json::Null => Ok(None),
        other => other
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field `{key}` is not a number or null")),
    }
}

fn opt_u32_field(obj: &Json, key: &str) -> Result<Option<u32>, String> {
    match field(obj, key)? {
        Json::Null => Ok(None),
        other => other
            .as_u64()
            .and_then(|v| u32::try_from(v).ok())
            .map(Some)
            .ok_or_else(|| format!("field `{key}` is not a u32 or null")),
    }
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    Ok(field(obj, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?
        .to_string())
}

fn event_from_json(obj: &Json) -> Result<Event, String> {
    let tag = str_field(obj, "t")?;
    match tag.as_str() {
        "span" => {
            let attrs = match field(obj, "attrs")? {
                Json::Obj(fields) => fields
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|v| (k.clone(), v))
                            .ok_or_else(|| format!("attr `{k}` is not a number"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("field `attrs` is not an object".to_string()),
            };
            Ok(Event::Span {
                layer: str_field(obj, "layer")?,
                name: str_field(obj, "name")?,
                micros: f64_field(obj, "us")?,
                attrs,
            })
        }
        "span_stat" => Ok(Event::SpanStat {
            layer: str_field(obj, "layer")?,
            name: str_field(obj, "name")?,
            count: u64_field(obj, "count")?,
            total_micros: f64_field(obj, "total_us")?,
            max_micros: f64_field(obj, "max_us")?,
        }),
        "counter" => Ok(Event::Counter {
            name: str_field(obj, "name")?,
            value: u64_field(obj, "value")?,
        }),
        "gauge" => Ok(Event::Gauge {
            name: str_field(obj, "name")?,
            value: f64_field(obj, "value")?,
        }),
        "hist" => {
            let bounds = match field(obj, "bounds")? {
                Json::Arr(items) => items
                    .iter()
                    .map(|v| v.as_f64().ok_or_else(|| "non-number bound".to_string()))
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("field `bounds` is not an array".to_string()),
            };
            let counts = match field(obj, "counts")? {
                Json::Arr(items) => items
                    .iter()
                    .map(|v| v.as_u64().ok_or_else(|| "non-integer count".to_string()))
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err("field `counts` is not an array".to_string()),
            };
            Ok(Event::Histogram { name: str_field(obj, "name")?, bounds, counts })
        }
        "device_round" => Ok(Event::DeviceRound {
            round: u32_field(obj, "round")?,
            device: u32_field(obj, "device")?,
            download_s: f64_field(obj, "download_s")?,
            compute_s: f64_field(obj, "compute_s")?,
            upload_s: f64_field(obj, "upload_s")?,
            finish_s: f64_field(obj, "finish_s")?,
            lag_s: f64_field(obj, "lag_s")?,
        }),
        "bytes" => Ok(Event::Bytes {
            round: u32_field(obj, "round")?,
            kind: str_field(obj, "kind")?,
            direction: str_field(obj, "dir")?,
            bytes: u64_field(obj, "bytes")?,
        }),
        "round_end" => Ok(Event::RoundEnd {
            round: u32_field(obj, "round")?,
            sim_time_s: f64_field(obj, "sim_time_s")?,
        }),
        "health" => Ok(Event::Health {
            round: u32_field(obj, "round")?,
            train_loss: f64_field(obj, "loss")?,
            loss_delta: f64_field(obj, "dloss")?,
            grad_norm_sq: f64_field(obj, "gap")?,
            theta: opt_f64_field(obj, "theta")?,
            theta_lo: opt_f64_field(obj, "theta_lo")?,
            theta_hi: opt_f64_field(obj, "theta_hi")?,
            bound: opt_f64_field(obj, "bound")?,
            dir_mean_sq: f64_field(obj, "dir_mean_sq")?,
            dir_m2: f64_field(obj, "dir_m2")?,
            dir_anchor_sq: f64_field(obj, "dir_anchor_sq")?,
            dir_steps: u64_field(obj, "dir_steps")?,
            skew: opt_f64_field(obj, "skew")?,
        }),
        "anomaly" => {
            let rule_name = str_field(obj, "rule")?;
            let rule = AnomalyRule::from_name(&rule_name)
                .ok_or_else(|| format!("unknown anomaly rule `{rule_name}`"))?;
            Ok(Event::Anomaly {
                round: u32_field(obj, "round")?,
                rule,
                device: opt_u32_field(obj, "device")?,
                value: f64_field(obj, "value")?,
                limit: f64_field(obj, "limit")?,
            })
        }
        "participation" => Ok(Event::Participation {
            round: u32_field(obj, "round")?,
            responded: u32_field(obj, "responded")?,
            crashed: u32_field(obj, "crashed")?,
            offline: u32_field(obj, "offline")?,
            deadline_miss: u32_field(obj, "deadline_miss")?,
            link_failed: u32_field(obj, "link_failed")?,
            weight: f64_field(obj, "weight")?,
            skipped: u32_field(obj, "skipped")?,
        }),
        "path_stat" => Ok(Event::PathStat {
            path: str_field(obj, "path")?,
            count: u64_field(obj, "count")?,
            total_micros: f64_field(obj, "total_us")?,
            self_micros: f64_field(obj, "self_us")?,
            max_micros: f64_field(obj, "max_us")?,
            total_bytes: u64_field(obj, "total_bytes")?,
            self_bytes: u64_field(obj, "self_bytes")?,
            total_allocs: u64_field(obj, "total_allocs")?,
            self_allocs: u64_field(obj, "self_allocs")?,
        }),
        "trace_truncated" => {
            Ok(Event::TraceTruncated { dropped_spans: u64_field(obj, "dropped_spans")? })
        }
        "dropped" => Ok(Event::Dropped { count: u64_field(obj, "count")? }),
        "run_meta" => Ok(Event::RunMeta {
            version: u32_field(obj, "version")?,
            config: str_field(obj, "config")?,
            seed: u64_field(obj, "seed")?,
            kernel: str_field(obj, "kernel")?,
            faults: str_field(obj, "faults")?,
            features: str_field(obj, "features")?,
            crates: str_field(obj, "crates")?,
        }),
        "postmortem" => Ok(Event::Postmortem {
            round: u32_field(obj, "round")?,
            reason: str_field(obj, "reason")?,
            device: opt_u32_field(obj, "device")?,
        }),
        other => Err(format!("unknown event tag `{other}`")),
    }
}

/// Parse one JSONL line into an event.
pub fn parse_line(line: &str) -> Result<Event, String> {
    let mut p = Parser::new(line);
    let obj = p.value()?;
    if p.peek().is_some() {
        return Err("trailing bytes after JSON object".to_string());
    }
    event_from_json(&obj)
}

/// Parse a whole JSONL trace. Blank lines are skipped; any malformed
/// line fails the parse with its line number.
pub fn parse(trace: &str) -> Result<Vec<Event>, ParseError> {
    let mut out = Vec::new();
    for (idx, line) in trace.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(ev) => out.push(ev),
            Err(message) => return Err(ParseError { line: idx + 1, message }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::Span {
                layer: "tensor".into(),
                name: "matmul".into(),
                micros: 12.5,
                attrs: vec![("m".into(), 64.0), ("k".into(), 10.0), ("n".into(), 8.0)],
            },
            Event::SpanStat {
                layer: "tensor".into(),
                name: "matmul".into(),
                count: 3,
                total_micros: 40.0,
                max_micros: 20.25,
            },
            Event::Counter { name: "optim.inner_step".into(), value: u64::MAX },
            Event::Gauge { name: "core.model_dim".into(), value: 610.0 },
            Event::Histogram {
                name: "net.lag_s".into(),
                bounds: vec![0.001, 0.01, 0.1],
                counts: vec![1, 2, 3, 4],
            },
            Event::DeviceRound {
                round: 2,
                device: 1,
                download_s: 0.05,
                compute_s: 0.4,
                upload_s: 0.05,
                finish_s: 0.5,
                lag_s: 0.125,
            },
            Event::Bytes { round: 2, kind: "global_model".into(), direction: "down".into(), bytes: 4885 },
            Event::RoundEnd { round: 2, sim_time_s: 1.5 },
            Event::Health {
                round: 3,
                train_loss: 0.61,
                loss_delta: -0.02,
                grad_norm_sq: 0.004,
                theta: Some(0.31),
                theta_lo: Some(0.12),
                theta_hi: Some(0.71),
                bound: Some(1.25),
                dir_mean_sq: 0.9,
                dir_m2: 0.04,
                dir_anchor_sq: 1.1,
                dir_steps: 80,
                skew: Some(0.5),
            },
            Event::Health {
                round: 4,
                train_loss: 0.6,
                loss_delta: -0.01,
                grad_norm_sq: 0.003,
                theta: None,
                theta_lo: None,
                theta_hi: None,
                bound: None,
                dir_mean_sq: 0.0,
                dir_m2: 0.0,
                dir_anchor_sq: 0.0,
                dir_steps: 0,
                skew: None,
            },
            Event::Anomaly {
                round: 5,
                rule: AnomalyRule::LossGuard,
                device: None,
                value: 2.0e9,
                limit: 1.0e9,
            },
            Event::Anomaly {
                round: 5,
                rule: AnomalyRule::Starvation,
                device: Some(3),
                value: 4.0,
                limit: 12.0,
            },
            Event::Participation {
                round: 6,
                responded: 3,
                crashed: 1,
                offline: 0,
                deadline_miss: 1,
                link_failed: 0,
                weight: 0.55,
                skipped: 1,
            },
            Event::PathStat {
                path: "round/device_update/local_solve/matmul".into(),
                count: 132,
                total_micros: 812.25,
                self_micros: 700.5,
                max_micros: 41.0,
                total_bytes: u64::MAX - 3,
                self_bytes: 4096,
                total_allocs: 640,
                self_allocs: 512,
            },
            Event::TraceTruncated { dropped_spans: 19 },
            Event::Dropped { count: 7 },
            Event::RunMeta {
                version: 1,
                config: "9e3779b97f4a7c15".into(),
                seed: 42,
                kernel: "tiled-par".into(),
                faults: "cbf29ce484222325".into(),
                features: "telemetry".into(),
                crates: "fedprox=0.1.0".into(),
            },
            Event::Postmortem { round: 4, reason: "quorum_skip".into(), device: Some(1) },
            Event::Postmortem { round: 7, reason: "non_finite".into(), device: None },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let back = parse(&text).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn blank_lines_skipped() {
        let text = format!("\n{}\n\n", write_line(&Event::Dropped { count: 1 }));
        assert_eq!(parse(&text).unwrap().len(), 1);
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse("{\"t\":\"dropped\",\"count\":1}\nnot json\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(parse_line("{\"t\":\"mystery\"}").is_err());
    }

    #[test]
    fn every_anomaly_rule_roundtrips() {
        for rule in AnomalyRule::all() {
            let ev = Event::Anomaly { round: 1, rule, device: Some(0), value: 1.0, limit: 2.0 };
            assert_eq!(parse_line(&write_line(&ev)).unwrap(), ev);
        }
    }

    #[test]
    fn unknown_anomaly_rule_rejected() {
        let line = "{\"t\":\"anomaly\",\"round\":1,\"rule\":\"gremlins\",\"device\":null,\"value\":1,\"limit\":2}";
        assert!(parse_line(line).is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let ev = Event::Counter { name: "weird \"name\"\n\\tab\t".into(), value: 3 };
        let back = parse_line(&write_line(&ev)).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn u64_precision_survives() {
        let ev = Event::Counter { name: "big".into(), value: u64::MAX - 1 };
        let back = parse_line(&write_line(&ev)).unwrap();
        assert_eq!(back, ev);
    }
}
