//! `fedprox-telemetry`: structured tracing, counters, and per-round
//! telemetry for the FedProxVR runtime.
//!
//! # Design
//!
//! * **Dependency-free.** The collector must never perturb the build
//!   graph — or the math — of the code it observes, and the `fedtrace`
//!   summarizer must build in the default workspace configuration.
//! * **Feature-gated to zero.** Without the `enabled` cargo feature the
//!   [`span!`], [`counter!`], [`gauge!`], and [`histogram!`] macros
//!   expand to a never-invoked closure (so attribute expressions stay
//!   "used" without being evaluated) and the collector module does not
//!   exist. Dependents plumb their own `telemetry` feature down to
//!   `fedprox-telemetry/enabled`, mirroring the `check` feature chain.
//! * **Armed at runtime.** Even when compiled in, nothing records until
//!   [`collector::arm`] is called (bench binaries arm on `--trace`).
//!   Disarmed hooks cost one relaxed atomic load.
//! * **Deterministic where it matters.** Wall-clock readings exist only
//!   inside the collector; everything derived from the simulation
//!   (device timings, bytes, rounds) uses the virtual clock and is
//!   bitwise-reproducible. Telemetry never feeds back into training.
//!
//! The event model lives in [`event`], the JSONL codec in [`jsonl`], and
//! the aggregated per-run summary in [`summary`]. The `fedtrace` binary
//! renders top-N tables from a JSONL trace; the `fedscope` binary reads
//! the algorithm-health event family (built in [`scope`]) and diffs two
//! runs for CI regression gating; the `fedprof` binary renders the
//! span-tree profile (built in [`profile`]) as a path table, collapsed
//! flamegraph stacks, or a cross-run aggregate.

pub mod event;
pub mod jsonl;
pub mod profile;
pub mod scope;
pub mod summary;

#[cfg(feature = "enabled")]
pub mod collector;

/// Lossless-enough conversion of attribute values to `f64` for span
/// attributes and histogram samples (dimensions and counts comfortably
/// fit; beyond 2⁵³ precision loss is acceptable for telemetry).
pub trait IntoF64 {
    /// Convert to `f64`.
    fn into_f64(self) -> f64;
}

impl IntoF64 for f64 {
    #[inline]
    fn into_f64(self) -> f64 {
        self
    }
}

macro_rules! impl_into_f64 {
    ($($t:ty),*) => {
        $(impl IntoF64 for $t {
            #[inline]
            fn into_f64(self) -> f64 {
                self as f64
            }
        })*
    };
}

impl_into_f64!(f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Conversion of counter deltas to `u64`.
pub trait IntoU64 {
    /// Convert to `u64`.
    fn into_u64(self) -> u64;
}

impl IntoU64 for u64 {
    #[inline]
    fn into_u64(self) -> u64 {
        self
    }
}

macro_rules! impl_into_u64 {
    ($($t:ty),*) => {
        $(impl IntoU64 for $t {
            #[inline]
            fn into_u64(self) -> u64 {
                self as u64
            }
        })*
    };
}

impl_into_u64!(u8, u16, u32, usize);

/// Open a wall-clock span covering the rest of the enclosing scope.
///
/// ```ignore
/// fedprox_telemetry::span!("tensor", "matmul", "m" => m, "k" => k, "n" => n);
/// ```
///
/// Expands to a scope-local RAII guard when the `enabled` feature is on,
/// and to a never-invoked closure otherwise (attribute expressions are
/// not evaluated in either disarmed or disabled configurations).
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! span {
    ($layer:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        let _fedtrace_span_guard = $crate::collector::SpanGuard::begin(
            $layer,
            $name,
            &[$(($k, $crate::IntoF64::into_f64($v))),*],
        );
    };
}

/// Disabled expansion of [`span!`]: compiles to nothing.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! span {
    ($layer:expr, $name:expr $(, $k:literal => $v:expr)* $(,)?) => {
        let _ = || {
            let _ = ($layer, $name);
            $(let _ = ($k, &$v);)*
        };
    };
}

/// Add to a named monotone counter.
///
/// ```ignore
/// fedprox_telemetry::counter!("optim.inner_step", 1u32);
/// ```
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr $(,)?) => {
        $crate::collector::add_counter($name, $crate::IntoU64::into_u64($delta));
    };
}

/// Disabled expansion of [`counter!`]: compiles to nothing.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr $(,)?) => {
        let _ = || {
            let _ = ($name, &$delta);
        };
    };
}

/// Set a named gauge (last write wins).
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr $(,)?) => {
        $crate::collector::set_gauge($name, $crate::IntoF64::into_f64($value));
    };
}

/// Disabled expansion of [`gauge!`]: compiles to nothing.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr $(,)?) => {
        let _ = || {
            let _ = ($name, &$value);
        };
    };
}

/// Record one sample into a named fixed-bucket histogram.
#[cfg(feature = "enabled")]
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr $(,)?) => {
        $crate::collector::record_histogram($name, $crate::IntoF64::into_f64($value));
    };
}

/// Disabled expansion of [`histogram!`]: compiles to nothing.
#[cfg(not(feature = "enabled"))]
#[macro_export]
macro_rules! histogram {
    ($name:expr, $value:expr $(,)?) => {
        let _ = || {
            let _ = ($name, &$value);
        };
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_expand_in_statement_position() {
        let m = 3usize;
        let n = 4u32;
        crate::span!("tensor", "matmul", "m" => m, "n" => n);
        crate::counter!("test.counter", 1u32);
        crate::gauge!("test.gauge", 2.5);
        crate::histogram!("test.hist", 0.5);
        // With `enabled` off this test proves the no-op arms typecheck
        // without evaluating (or warning about) their arguments; with it
        // on, that the guard binds without shadowing issues.
        crate::span!("tensor", "again");
    }
}
