//! Algorithm-health reporting: the engine behind the `fedscope` binary.
//!
//! Operates on the health event family ([`Event::Health`],
//! [`Event::Anomaly`]) emitted by the core `HealthMonitor` into a
//! `--health` JSONL file. Three entry points, mirroring the CLI:
//!
//! * [`HealthReport::from_events`] + [`HealthReport::render`] — a
//!   per-run health summary and per-round timeline,
//! * [`HealthReport::validate`] — schema/sanity validation for CI,
//! * [`diff`] — a regression view of two runs; a run *regresses* when
//!   it raises anomalies (per rule) that the baseline did not, which is
//!   what CI gates on.
//!
//! Like the rest of the crate this module is dependency-free and pure:
//! it never touches the collector, so it builds and runs identically in
//! the default (telemetry-disabled) workspace configuration.

use crate::event::{AnomalyRule, Event};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One per-round health sample, extracted from [`Event::Health`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Global round index.
    pub round: u32,
    /// Training loss.
    pub train_loss: f64,
    /// Loss change versus the previous sample.
    pub loss_delta: f64,
    /// Squared gradient-mapping norm (eq. 12 gap).
    pub grad_norm_sq: f64,
    /// Measured θ, when the run measured it.
    pub theta: Option<f64>,
    /// Lemma 1 admissible θ lower bound.
    pub theta_lo: Option<f64>,
    /// Remark 2(1) admissible θ upper bound.
    pub theta_hi: Option<f64>,
    /// Theorem 1 stationarity envelope `Δ/(Θ·round)`.
    pub bound: Option<f64>,
    /// Mean squared direction norm across the round's inner steps.
    pub dir_mean_sq: f64,
    /// Welford M2 of squared direction norms.
    pub dir_m2: f64,
    /// Mean squared anchor direction norm.
    pub dir_anchor_sq: f64,
    /// Inner steps contributing to the direction statistics.
    pub dir_steps: u64,
    /// Straggler skew (networked runs only).
    pub skew: Option<f64>,
}

/// One typed anomaly, extracted from [`Event::Anomaly`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyRecord {
    /// Round the rule fired on.
    pub round: u32,
    /// Which rule fired.
    pub rule: AnomalyRule,
    /// Offending device, when attributed.
    pub device: Option<u32>,
    /// Measured value.
    pub value: f64,
    /// Threshold compared against.
    pub limit: f64,
}

/// Health view of one run: samples and anomalies in round order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthReport {
    /// Per-round samples, sorted by round.
    pub samples: Vec<Sample>,
    /// Anomalies, sorted by round then rule.
    pub anomalies: Vec<AnomalyRecord>,
    /// Non-health events present in the stream (ignored but counted,
    /// so `fedscope` can warn when pointed at a full `--trace` file).
    pub other_events: u64,
}

impl HealthReport {
    /// Extract the health family from a flat event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut samples = Vec::new();
        let mut anomalies = Vec::new();
        let mut other_events = 0u64;
        for ev in events {
            match ev {
                Event::Health {
                    round,
                    train_loss,
                    loss_delta,
                    grad_norm_sq,
                    theta,
                    theta_lo,
                    theta_hi,
                    bound,
                    dir_mean_sq,
                    dir_m2,
                    dir_anchor_sq,
                    dir_steps,
                    skew,
                } => samples.push(Sample {
                    round: *round,
                    train_loss: *train_loss,
                    loss_delta: *loss_delta,
                    grad_norm_sq: *grad_norm_sq,
                    theta: *theta,
                    theta_lo: *theta_lo,
                    theta_hi: *theta_hi,
                    bound: *bound,
                    dir_mean_sq: *dir_mean_sq,
                    dir_m2: *dir_m2,
                    dir_anchor_sq: *dir_anchor_sq,
                    dir_steps: *dir_steps,
                    skew: *skew,
                }),
                Event::Anomaly { round, rule, device, value, limit } => {
                    anomalies.push(AnomalyRecord {
                        round: *round,
                        rule: *rule,
                        device: *device,
                        value: *value,
                        limit: *limit,
                    });
                }
                _ => other_events += 1,
            }
        }
        samples.sort_by_key(|s| s.round);
        anomalies.sort_by_key(|a| (a.round, a.rule));
        HealthReport { samples, anomalies, other_events }
    }

    /// Anomaly counts per rule, in [`AnomalyRule::all`] order (zero
    /// entries included so diffs can compare rule by rule).
    pub fn anomaly_counts(&self) -> BTreeMap<AnomalyRule, u64> {
        let mut counts: BTreeMap<AnomalyRule, u64> =
            AnomalyRule::all().into_iter().map(|r| (r, 0)).collect();
        for a in &self.anomalies {
            if let Some(c) = counts.get_mut(&a.rule) {
                *c += 1;
            }
        }
        counts
    }

    /// Schema/sanity validation for CI: at least one sample, rounds
    /// non-decreasing, and every non-optional field finite. Returns
    /// every violation found (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.samples.is_empty() {
            problems.push("no health samples in trace".to_string());
        }
        for pair in self.samples.windows(2) {
            if pair[1].round < pair[0].round {
                problems.push(format!(
                    "sample rounds out of order: {} after {}",
                    pair[1].round, pair[0].round
                ));
            }
        }
        for s in &self.samples {
            let named = [
                ("loss", s.train_loss),
                ("dloss", s.loss_delta),
                ("gap", s.grad_norm_sq),
                ("dir_mean_sq", s.dir_mean_sq),
                ("dir_m2", s.dir_m2),
                ("dir_anchor_sq", s.dir_anchor_sq),
            ];
            for (name, v) in named {
                if !v.is_finite() {
                    problems.push(format!("round {}: non-finite `{name}`", s.round));
                }
            }
        }
        for a in &self.anomalies {
            if !a.value.is_finite() || !a.limit.is_finite() {
                problems.push(format!(
                    "anomaly `{}` at round {}: non-finite value/limit",
                    a.rule.name(),
                    a.round
                ));
            }
        }
        problems
    }

    /// Render the health summary plus a per-round timeline.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "fedscope health report: {} samples, {} anomalies",
            self.samples.len(),
            self.anomalies.len()
        );
        if self.other_events > 0 {
            let _ = writeln!(
                s,
                "note: {} non-health events ignored (full --trace file?)",
                self.other_events
            );
        }

        if let (Some(first), Some(last)) = (self.samples.first(), self.samples.last()) {
            let _ = writeln!(
                s,
                "loss {:.6} -> {:.6} over rounds {}..{}; final gap {:.3e}",
                first.train_loss, last.train_loss, first.round, last.round, last.grad_norm_sq
            );
            if let (Some(bound), gap) = (last.bound, last.grad_norm_sq) {
                let verdict = if gap <= bound { "within" } else { "ABOVE" };
                let _ = writeln!(
                    s,
                    "Theorem 1 envelope at round {}: {:.3e} ({verdict} predicted trajectory)",
                    last.round, bound
                );
            }
        }

        let counts = self.anomaly_counts();
        if self.anomalies.is_empty() {
            let _ = writeln!(s, "\nno anomalies.");
        } else {
            let _ = writeln!(s, "\n== anomalies by rule ==");
            for (rule, count) in &counts {
                if *count > 0 {
                    let _ = writeln!(s, "{:<18} {count:>6}", rule.name());
                }
            }
            let _ = writeln!(s, "\n== anomaly log ==");
            for a in &self.anomalies {
                let device = match a.device {
                    Some(d) => format!("device {d}"),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    s,
                    "round {:>5}  {:<18} {:<10} value {:.4e}  limit {:.4e}",
                    a.round,
                    a.rule.name(),
                    device,
                    a.value,
                    a.limit
                );
            }
        }

        if !self.samples.is_empty() {
            let _ = writeln!(s, "\n== timeline ==");
            let _ = writeln!(
                s,
                "{:>6} {:>12} {:>10} {:>10} {:>8} {:>10} {:>8} {:>8}",
                "round", "loss", "dloss", "gap", "theta", "vr_ratio", "skew", "flags"
            );
            let fmt_opt = |v: Option<f64>| match v {
                Some(v) => format!("{v:>8.3}"),
                None => format!("{:>8}", "-"),
            };
            for sample in &self.samples {
                let vr = if sample.dir_anchor_sq > 0.0 && sample.dir_steps > 0 {
                    format!("{:>10.3}", sample.dir_mean_sq / sample.dir_anchor_sq)
                } else {
                    format!("{:>10}", "-")
                };
                let flags: String = self
                    .anomalies
                    .iter()
                    .filter(|a| a.round == sample.round)
                    .map(|a| a.rule.name().chars().next().unwrap_or('?'))
                    .collect();
                let _ = writeln!(
                    s,
                    "{:>6} {:>12.6} {:>10.2e} {:>10.3e} {} {vr} {} {:>8}",
                    sample.round,
                    sample.train_loss,
                    sample.loss_delta,
                    sample.grad_norm_sq,
                    fmt_opt(sample.theta),
                    fmt_opt(sample.skew),
                    if flags.is_empty() { "-".to_string() } else { flags },
                );
            }
        }

        s
    }
}

/// Regression view of run `b` (candidate) against run `a` (baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthDiff {
    /// Per-rule anomaly counts `(baseline, candidate)`.
    pub rule_counts: Vec<(AnomalyRule, u64, u64)>,
    /// Final-loss pair `(baseline, candidate)`, when both runs sampled.
    pub final_loss: Option<(f64, f64)>,
    /// Final gradient-mapping gap pair, when both runs sampled.
    pub final_gap: Option<(f64, f64)>,
}

impl HealthDiff {
    /// True when the candidate raises anomalies the baseline lacks —
    /// strictly more firings of any rule.
    pub fn has_regression(&self) -> bool {
        self.rule_counts.iter().any(|(_, base, cand)| cand > base)
    }

    /// Render the per-rule table and trajectory deltas.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "fedscope diff (baseline vs candidate)");
        let _ = writeln!(s, "{:<18} {:>10} {:>10} {:>10}", "rule", "baseline", "candidate", "delta");
        for (rule, base, cand) in &self.rule_counts {
            if *base == 0 && *cand == 0 {
                continue;
            }
            let delta = *cand as i64 - *base as i64;
            let _ = writeln!(s, "{:<18} {base:>10} {cand:>10} {delta:>+10}", rule.name());
        }
        if self.rule_counts.iter().all(|(_, b, c)| *b == 0 && *c == 0) {
            let _ = writeln!(s, "(no anomalies in either run)");
        }
        if let Some((base, cand)) = self.final_loss {
            let _ = writeln!(s, "final loss : {base:.6} -> {cand:.6} ({:+.3e})", cand - base);
        }
        if let Some((base, cand)) = self.final_gap {
            let _ = writeln!(s, "final gap  : {base:.3e} -> {cand:.3e} ({:+.3e})", cand - base);
        }
        let _ = writeln!(
            s,
            "verdict: {}",
            if self.has_regression() { "REGRESSION (new anomalies)" } else { "ok" }
        );
        s
    }
}

/// Compare candidate `b` against baseline `a`.
pub fn diff(a: &HealthReport, b: &HealthReport) -> HealthDiff {
    let ca = a.anomaly_counts();
    let cb = b.anomaly_counts();
    let rule_counts = AnomalyRule::all()
        .into_iter()
        .map(|r| (r, ca.get(&r).copied().unwrap_or(0), cb.get(&r).copied().unwrap_or(0)))
        .collect();
    let final_loss = match (a.samples.last(), b.samples.last()) {
        (Some(x), Some(y)) => Some((x.train_loss, y.train_loss)),
        _ => None,
    };
    let final_gap = match (a.samples.last(), b.samples.last()) {
        (Some(x), Some(y)) => Some((x.grad_norm_sq, y.grad_norm_sq)),
        _ => None,
    };
    HealthDiff { rule_counts, final_loss, final_gap }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(round: u32, loss: f64) -> Event {
        Event::Health {
            round,
            train_loss: loss,
            loss_delta: 0.0,
            grad_norm_sq: 0.01,
            theta: Some(0.3),
            theta_lo: None,
            theta_hi: Some(0.71),
            bound: Some(1.0),
            dir_mean_sq: 0.5,
            dir_m2: 0.1,
            dir_anchor_sq: 1.0,
            dir_steps: 10,
            skew: None,
        }
    }

    fn anomaly(round: u32, rule: AnomalyRule) -> Event {
        Event::Anomaly { round, rule, device: None, value: 2.0, limit: 1.0 }
    }

    #[test]
    fn report_extracts_and_sorts() {
        let events =
            vec![sample(2, 0.5), anomaly(1, AnomalyRule::LossGuard), sample(1, 0.6)];
        let r = HealthReport::from_events(&events);
        assert_eq!(r.samples.len(), 2);
        assert_eq!(r.samples[0].round, 1);
        assert_eq!(r.anomalies.len(), 1);
        assert_eq!(r.other_events, 0);
        assert!(r.validate().is_empty());
    }

    #[test]
    fn non_health_events_counted_not_parsed() {
        let events = vec![Event::Dropped { count: 1 }, sample(1, 0.5)];
        let r = HealthReport::from_events(&events);
        assert_eq!(r.other_events, 1);
        assert_eq!(r.samples.len(), 1);
    }

    #[test]
    fn validate_flags_empty_and_non_finite() {
        let empty = HealthReport::from_events(&[]);
        assert!(!empty.validate().is_empty());

        let mut bad = HealthReport::from_events(&[sample(1, 0.5)]);
        bad.samples[0].grad_norm_sq = f64::NAN;
        assert!(bad.validate().iter().any(|p| p.contains("gap")));
    }

    #[test]
    fn render_contains_timeline_and_anomalies() {
        let events = vec![sample(1, 0.6), sample(2, 0.5), anomaly(2, AnomalyRule::ThetaViolation)];
        let text = HealthReport::from_events(&events).render();
        for needle in ["timeline", "anomalies by rule", "theta_violation", "0.600000"] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn self_diff_is_clean() {
        let r = HealthReport::from_events(&[sample(1, 0.6), anomaly(1, AnomalyRule::LossGuard)]);
        let d = diff(&r, &r);
        assert!(!d.has_regression());
        assert!(d.render().contains("verdict: ok"));
    }

    #[test]
    fn new_anomaly_is_a_regression() {
        let base = HealthReport::from_events(&[sample(1, 0.6)]);
        let cand =
            HealthReport::from_events(&[sample(1, 0.6), anomaly(1, AnomalyRule::VrIneffective)]);
        let d = diff(&base, &cand);
        assert!(d.has_regression());
        assert!(d.render().contains("REGRESSION"));
        // The other direction — candidate *fixes* an anomaly — is not a
        // regression.
        assert!(!diff(&cand, &base).has_regression());
    }

    #[test]
    fn fewer_anomalies_not_a_regression_more_of_same_is() {
        let one = HealthReport::from_events(&[anomaly(1, AnomalyRule::Starvation)]);
        let two = HealthReport::from_events(&[
            anomaly(1, AnomalyRule::Starvation),
            anomaly(2, AnomalyRule::Starvation),
        ]);
        assert!(diff(&one, &two).has_regression());
        assert!(!diff(&two, &one).has_regression());
    }
}
