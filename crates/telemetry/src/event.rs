//! The telemetry event model.
//!
//! Everything the collector records — and everything `fedtrace` reads
//! back from a JSONL trace — is one of these variants. Two broad
//! families:
//!
//! * **Wall-clock observations** ([`Event::Span`], [`Event::SpanStat`]):
//!   monotonic-clock durations of instrumented scopes. These vary run to
//!   run (they measure the host), which is fine — they never feed back
//!   into training.
//! * **Simulation observations** ([`Event::DeviceRound`],
//!   [`Event::Bytes`], [`Event::RoundEnd`]): derived from the virtual
//!   clock and the wire codec, so they are bitwise-reproducible across
//!   runs with the same seed.
//!
//! Counters, gauges, and histograms sit in between: counts of discrete
//! work items (gradient evaluations, prox applications) are
//! deterministic; histograms of wall durations are not.

/// One telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A single activation of a `span!` scope.
    Span {
        /// Instrumented layer (`tensor`, `optim`, `net`, `core`).
        layer: String,
        /// Operation name within the layer (e.g. `matmul`).
        name: String,
        /// Wall-clock duration in microseconds.
        micros: f64,
        /// Static key/value attributes (dimensions, indices, sizes).
        attrs: Vec<(String, f64)>,
    },
    /// Aggregate over *every* activation of one `(layer, name)` span,
    /// including activations beyond the raw-event cap. Exact-count
    /// assertions should use this, never raw [`Event::Span`] records.
    SpanStat {
        /// Instrumented layer.
        layer: String,
        /// Operation name.
        name: String,
        /// Total activations.
        count: u64,
        /// Summed wall-clock duration in microseconds.
        total_micros: f64,
        /// Longest single activation in microseconds.
        max_micros: f64,
    },
    /// Final value of a monotonically-increasing counter.
    Counter {
        /// Counter name (e.g. `optim.inner_step`).
        name: String,
        /// Accumulated value (saturating).
        value: u64,
    },
    /// Last-written value of a gauge.
    Gauge {
        /// Gauge name.
        name: String,
        /// Final value.
        value: f64,
    },
    /// A fixed-bucket histogram. `counts.len() == bounds.len() + 1`; the
    /// last bucket counts samples above every bound.
    Histogram {
        /// Upper bucket bounds (inclusive), ascending.
        bounds: Vec<f64>,
        /// Per-bucket sample counts.
        counts: Vec<u64>,
        /// Histogram name.
        name: String,
    },
    /// Per-device timing of one synchronous round, in simulated seconds.
    DeviceRound {
        /// Round index (0-based, as on the wire).
        round: u32,
        /// Device id.
        device: u32,
        /// Server → device transfer time.
        download_s: f64,
        /// Local computation time.
        compute_s: f64,
        /// Device → server transfer time.
        upload_s: f64,
        /// `download + compute + upload`.
        finish_s: f64,
        /// Straggler lag: `finish` minus the round's median finish.
        lag_s: f64,
    },
    /// Traffic for one message kind in one round.
    Bytes {
        /// Round index (0-based).
        round: u32,
        /// Wire message kind (`global_model`, `local_model`).
        kind: String,
        /// `down` (server → devices) or `up` (devices → server).
        direction: String,
        /// Bytes on the wire, including retransmissions.
        bytes: u64,
    },
    /// End of one synchronous round.
    RoundEnd {
        /// Round index (0-based).
        round: u32,
        /// Virtual-clock time at the end of the round.
        sim_time_s: f64,
    },
    /// Per-round algorithm-health sample assembled by the core
    /// `HealthMonitor`. Every field is derived from the deterministic
    /// training trajectory (losses, gradient norms, virtual clock), so
    /// health samples are bitwise-reproducible across armed runs with
    /// the same seed. Optional fields encode as JSON `null` when absent.
    Health {
        /// Global round index (1-based; round 0 is the initial model).
        round: u32,
        /// Training loss at this round (always finite — rounds that
        /// cannot produce a finite sample emit an [`Event::Anomaly`]
        /// instead).
        train_loss: f64,
        /// `train_loss` minus the previous sampled round's loss
        /// (0.0 on the first sample).
        loss_delta: f64,
        /// Squared gradient-mapping norm, the paper's eq. (12) gap.
        grad_norm_sq: f64,
        /// Measured local accuracy θ of criterion (11), when enabled.
        theta: Option<f64>,
        /// Lemma 1 admissible lower bound on θ for the configured τ
        /// (inverse of eq. (55)); `None` when β ≤ 3.
        theta_lo: Option<f64>,
        /// Remark 2(1) admissible upper bound `θ_max(σ̄²)`.
        theta_hi: Option<f64>,
        /// Theorem 1 predicted stationarity envelope `Δ/(Θ·round)`,
        /// when the federated factor Θ is positive.
        bound: Option<f64>,
        /// Mean squared estimator direction norm `‖v‖²` across all
        /// inner steps of this round's participating local solves.
        dir_mean_sq: f64,
        /// Welford M2 of the squared direction norms (variance · n).
        dir_m2: f64,
        /// Mean squared anchor direction norm `‖v⁰‖²` across the
        /// round's local solves (the variance-reduction reference).
        dir_anchor_sq: f64,
        /// Inner steps contributing to the direction statistics
        /// (0 when probes were unavailable, e.g. networked backend).
        dir_steps: u64,
        /// Straggler skew from the sim clock: the round's slowest
        /// device finish over the median finish, minus one. `None`
        /// for local (non-networked) backends.
        skew: Option<f64>,
    },
    /// A typed algorithm-health anomaly raised by a `HealthMonitor`
    /// rule. Like [`Event::Health`], anomalies are derived only from
    /// the deterministic trajectory.
    Anomaly {
        /// Global round index the rule fired on (1-based).
        round: u32,
        /// Which rule fired.
        rule: AnomalyRule,
        /// Offending device id, when the rule attributes one.
        device: Option<u32>,
        /// Rule-specific measured value (always finite; non-finite
        /// measurements are clamped to `f64::MAX` by the monitor).
        value: f64,
        /// Rule-specific threshold the value was compared against.
        limit: f64,
    },
    /// Per-round participation of a resilient (fault-injected) run: how
    /// many devices landed in each outcome class, the responding weight
    /// fraction, and whether the round was skipped for failing quorum.
    /// Derived from the deterministic fault plan and virtual clock, so
    /// bitwise-reproducible like the other simulation observations.
    Participation {
        /// Global round index (1-based, matching `History` records and
        /// [`Event::Health`] — not the 0-based wire round).
        round: u32,
        /// Devices that responded in time.
        responded: u32,
        /// Devices permanently crashed (plan or tolerated panic).
        crashed: u32,
        /// Devices inside an offline window.
        offline: u32,
        /// Devices excluded for missing the round deadline.
        deadline_miss: u32,
        /// Devices whose link exhausted the retry policy this round.
        link_failed: u32,
        /// Responding fraction of the federation aggregation weight.
        weight: f64,
        /// 1 when the round failed quorum and was skipped, else 0
        /// (an integer, not a bool, for the hand-rolled JSONL parser).
        skipped: u32,
    },
    /// Aggregate over every activation of one span-tree *path*: the
    /// chain of `span!` names from the outermost open scope down to
    /// this one on the recording thread (e.g.
    /// `round/device_update/local_solve/matmul`). Unlike
    /// [`Event::SpanStat`]'s flat per-op view, a path distinguishes a
    /// `matmul` under `local_solve` from one under `evaluate`, and
    /// carries exact self-vs-child accounting. Counts and allocator
    /// columns are deterministic for single-threaded runs; the
    /// microsecond columns measure the host.
    PathStat {
        /// `/`-joined span names, outermost first.
        path: String,
        /// Total activations of this exact path.
        count: u64,
        /// Summed wall-clock duration, including children, in µs.
        total_micros: f64,
        /// Summed wall-clock duration minus time spent in child spans.
        self_micros: f64,
        /// Longest single activation (total time) in µs.
        max_micros: f64,
        /// Allocator bytes requested while this path was open,
        /// including children. Zero when no alloc probe is installed.
        total_bytes: u64,
        /// Allocator bytes attributed to this span itself (total minus
        /// bytes attributed to child spans).
        self_bytes: u64,
        /// Allocator calls while this path was open, including children.
        total_allocs: u64,
        /// Allocator calls attributed to this span itself.
        self_allocs: u64,
    },
    /// Marker that raw [`Event::Span`] records were discarded at the
    /// buffer cap with no streaming sink attached: the trace's raw span
    /// sample is partial (aggregates remain exact). Reports flag this.
    TraceTruncated {
        /// Raw span records discarded.
        dropped_spans: u64,
    },
    /// Events discarded because a buffer cap was hit. Aggregates
    /// ([`Event::SpanStat`], [`Event::Counter`]) are never dropped.
    Dropped {
        /// Number of discarded events.
        count: u64,
    },
    /// Run-ledger header: identifies the run that produced a JSONL
    /// stream so two files can be provably joined (same digests) or
    /// refused. Emitted once at `TraceSession` start, stitched as the
    /// first record into every sink, and read back by `fedobs ledger`.
    /// All fields derive from configuration, never from wall clocks, so
    /// two same-seed runs emit bitwise-identical headers.
    RunMeta {
        /// Ledger schema version (currently 1).
        version: u32,
        /// Digest (FNV-1a 64, hex) of the canonical config description.
        config: String,
        /// Master seed of the run.
        seed: u64,
        /// Active tensor-kernel selector (`reference`, `tiled`,
        /// `tiled-par`).
        kernel: String,
        /// Digest (FNV-1a 64, hex) of the fault-plan description;
        /// digest of the empty string for fault-free runs.
        faults: String,
        /// Comma-joined compiled cargo feature set (stable order).
        features: String,
        /// Comma-joined `crate=version` pairs of the emitting stack.
        crates: String,
    },
    /// Flight-recorder marker: a divergence cause or a quorum-skip
    /// fired at this point in the stream. The collector snapshots its
    /// ring of recent events when the first marker fires; `fedobs
    /// postmortem` renders the marker's surrounding window as a
    /// correlated post-mortem bundle.
    Postmortem {
        /// Global round index the trigger fired on (1-based, matching
        /// [`Event::Participation`] and [`Event::Health`]).
        round: u32,
        /// Trigger kind (`non_finite`, `loss_guard`, `quorum_skip`).
        reason: String,
        /// Implicated device, when one could be attributed (the first
        /// non-finite contributor, or the first crashed/non-responding
        /// device of a skipped round).
        device: Option<u32>,
    },
}

/// The fixed vocabulary of health-anomaly rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnomalyRule {
    /// Non-finite model parameters after aggregation.
    NonFinite,
    /// Training loss crossed the configured loss guard (or went
    /// non-finite while parameters stayed finite).
    LossGuard,
    /// Measured θ exceeded the admissible Remark 2(1) ceiling.
    ThetaViolation,
    /// SVRG/SARAH direction second moment not shrinking relative to
    /// its anchor: variance reduction is buying nothing.
    VrIneffective,
    /// A participating device contributed almost no gradient work
    /// relative to the round's busiest device.
    Starvation,
    /// The responding weight fraction of a resilient run stayed below
    /// the configured participation floor for k consecutive rounds —
    /// the federation is quorum-adjacent and aggregation quality is
    /// degrading.
    ParticipationGap,
}

impl AnomalyRule {
    /// Stable wire name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            AnomalyRule::NonFinite => "non_finite",
            AnomalyRule::LossGuard => "loss_guard",
            AnomalyRule::ThetaViolation => "theta_violation",
            AnomalyRule::VrIneffective => "vr_ineffective",
            AnomalyRule::Starvation => "starvation",
            AnomalyRule::ParticipationGap => "participation_gap",
        }
    }

    /// Inverse of [`AnomalyRule::name`]; `None` for unknown names.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "non_finite" => Some(AnomalyRule::NonFinite),
            "loss_guard" => Some(AnomalyRule::LossGuard),
            "theta_violation" => Some(AnomalyRule::ThetaViolation),
            "vr_ineffective" => Some(AnomalyRule::VrIneffective),
            "starvation" => Some(AnomalyRule::Starvation),
            "participation_gap" => Some(AnomalyRule::ParticipationGap),
            _ => None,
        }
    }

    /// Every rule, in a stable order (for report tables).
    pub fn all() -> [AnomalyRule; 6] {
        [
            AnomalyRule::NonFinite,
            AnomalyRule::LossGuard,
            AnomalyRule::ThetaViolation,
            AnomalyRule::VrIneffective,
            AnomalyRule::Starvation,
            AnomalyRule::ParticipationGap,
        ]
    }
}

impl Event {
    /// The stable `"t"` tag used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Span { .. } => "span",
            Event::SpanStat { .. } => "span_stat",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Histogram { .. } => "hist",
            Event::DeviceRound { .. } => "device_round",
            Event::Bytes { .. } => "bytes",
            Event::RoundEnd { .. } => "round_end",
            Event::Health { .. } => "health",
            Event::Anomaly { .. } => "anomaly",
            Event::Participation { .. } => "participation",
            Event::PathStat { .. } => "path_stat",
            Event::TraceTruncated { .. } => "trace_truncated",
            Event::Dropped { .. } => "dropped",
            Event::RunMeta { .. } => "run_meta",
            Event::Postmortem { .. } => "postmortem",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let events = [
            Event::Span { layer: "a".into(), name: "b".into(), micros: 0.0, attrs: vec![] },
            Event::SpanStat {
                layer: "a".into(),
                name: "b".into(),
                count: 0,
                total_micros: 0.0,
                max_micros: 0.0,
            },
            Event::Counter { name: "c".into(), value: 0 },
            Event::Gauge { name: "g".into(), value: 0.0 },
            Event::Histogram { name: "h".into(), bounds: vec![], counts: vec![] },
            Event::DeviceRound {
                round: 0,
                device: 0,
                download_s: 0.0,
                compute_s: 0.0,
                upload_s: 0.0,
                finish_s: 0.0,
                lag_s: 0.0,
            },
            Event::Bytes { round: 0, kind: "k".into(), direction: "d".into(), bytes: 0 },
            Event::RoundEnd { round: 0, sim_time_s: 0.0 },
            Event::Health {
                round: 0,
                train_loss: 0.0,
                loss_delta: 0.0,
                grad_norm_sq: 0.0,
                theta: None,
                theta_lo: None,
                theta_hi: None,
                bound: None,
                dir_mean_sq: 0.0,
                dir_m2: 0.0,
                dir_anchor_sq: 0.0,
                dir_steps: 0,
                skew: None,
            },
            Event::Anomaly {
                round: 0,
                rule: AnomalyRule::NonFinite,
                device: None,
                value: 0.0,
                limit: 0.0,
            },
            Event::Participation {
                round: 0,
                responded: 0,
                crashed: 0,
                offline: 0,
                deadline_miss: 0,
                link_failed: 0,
                weight: 0.0,
                skipped: 0,
            },
            Event::PathStat {
                path: "a/b".into(),
                count: 0,
                total_micros: 0.0,
                self_micros: 0.0,
                max_micros: 0.0,
                total_bytes: 0,
                self_bytes: 0,
                total_allocs: 0,
                self_allocs: 0,
            },
            Event::TraceTruncated { dropped_spans: 0 },
            Event::Dropped { count: 0 },
            Event::RunMeta {
                version: 1,
                config: "0".into(),
                seed: 0,
                kernel: "tiled-par".into(),
                faults: "0".into(),
                features: String::new(),
                crates: String::new(),
            },
            Event::Postmortem { round: 0, reason: "quorum_skip".into(), device: None },
        ];
        let mut kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn anomaly_rule_names_roundtrip() {
        for rule in AnomalyRule::all() {
            assert_eq!(AnomalyRule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(AnomalyRule::from_name("nope"), None);
    }
}
