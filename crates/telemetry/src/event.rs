//! The telemetry event model.
//!
//! Everything the collector records — and everything `fedtrace` reads
//! back from a JSONL trace — is one of these variants. Two broad
//! families:
//!
//! * **Wall-clock observations** ([`Event::Span`], [`Event::SpanStat`]):
//!   monotonic-clock durations of instrumented scopes. These vary run to
//!   run (they measure the host), which is fine — they never feed back
//!   into training.
//! * **Simulation observations** ([`Event::DeviceRound`],
//!   [`Event::Bytes`], [`Event::RoundEnd`]): derived from the virtual
//!   clock and the wire codec, so they are bitwise-reproducible across
//!   runs with the same seed.
//!
//! Counters, gauges, and histograms sit in between: counts of discrete
//! work items (gradient evaluations, prox applications) are
//! deterministic; histograms of wall durations are not.

/// One telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A single activation of a `span!` scope.
    Span {
        /// Instrumented layer (`tensor`, `optim`, `net`, `core`).
        layer: String,
        /// Operation name within the layer (e.g. `matmul`).
        name: String,
        /// Wall-clock duration in microseconds.
        micros: f64,
        /// Static key/value attributes (dimensions, indices, sizes).
        attrs: Vec<(String, f64)>,
    },
    /// Aggregate over *every* activation of one `(layer, name)` span,
    /// including activations beyond the raw-event cap. Exact-count
    /// assertions should use this, never raw [`Event::Span`] records.
    SpanStat {
        /// Instrumented layer.
        layer: String,
        /// Operation name.
        name: String,
        /// Total activations.
        count: u64,
        /// Summed wall-clock duration in microseconds.
        total_micros: f64,
        /// Longest single activation in microseconds.
        max_micros: f64,
    },
    /// Final value of a monotonically-increasing counter.
    Counter {
        /// Counter name (e.g. `optim.inner_step`).
        name: String,
        /// Accumulated value (saturating).
        value: u64,
    },
    /// Last-written value of a gauge.
    Gauge {
        /// Gauge name.
        name: String,
        /// Final value.
        value: f64,
    },
    /// A fixed-bucket histogram. `counts.len() == bounds.len() + 1`; the
    /// last bucket counts samples above every bound.
    Histogram {
        /// Upper bucket bounds (inclusive), ascending.
        bounds: Vec<f64>,
        /// Per-bucket sample counts.
        counts: Vec<u64>,
        /// Histogram name.
        name: String,
    },
    /// Per-device timing of one synchronous round, in simulated seconds.
    DeviceRound {
        /// Round index (0-based, as on the wire).
        round: u32,
        /// Device id.
        device: u32,
        /// Server → device transfer time.
        download_s: f64,
        /// Local computation time.
        compute_s: f64,
        /// Device → server transfer time.
        upload_s: f64,
        /// `download + compute + upload`.
        finish_s: f64,
        /// Straggler lag: `finish` minus the round's median finish.
        lag_s: f64,
    },
    /// Traffic for one message kind in one round.
    Bytes {
        /// Round index (0-based).
        round: u32,
        /// Wire message kind (`global_model`, `local_model`).
        kind: String,
        /// `down` (server → devices) or `up` (devices → server).
        direction: String,
        /// Bytes on the wire, including retransmissions.
        bytes: u64,
    },
    /// End of one synchronous round.
    RoundEnd {
        /// Round index (0-based).
        round: u32,
        /// Virtual-clock time at the end of the round.
        sim_time_s: f64,
    },
    /// Events discarded because a buffer cap was hit. Aggregates
    /// ([`Event::SpanStat`], [`Event::Counter`]) are never dropped.
    Dropped {
        /// Number of discarded events.
        count: u64,
    },
}

impl Event {
    /// The stable `"t"` tag used in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Span { .. } => "span",
            Event::SpanStat { .. } => "span_stat",
            Event::Counter { .. } => "counter",
            Event::Gauge { .. } => "gauge",
            Event::Histogram { .. } => "hist",
            Event::DeviceRound { .. } => "device_round",
            Event::Bytes { .. } => "bytes",
            Event::RoundEnd { .. } => "round_end",
            Event::Dropped { .. } => "dropped",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct() {
        let events = [
            Event::Span { layer: "a".into(), name: "b".into(), micros: 0.0, attrs: vec![] },
            Event::SpanStat {
                layer: "a".into(),
                name: "b".into(),
                count: 0,
                total_micros: 0.0,
                max_micros: 0.0,
            },
            Event::Counter { name: "c".into(), value: 0 },
            Event::Gauge { name: "g".into(), value: 0.0 },
            Event::Histogram { name: "h".into(), bounds: vec![], counts: vec![] },
            Event::DeviceRound {
                round: 0,
                device: 0,
                download_s: 0.0,
                compute_s: 0.0,
                upload_s: 0.0,
                finish_s: 0.0,
                lag_s: 0.0,
            },
            Event::Bytes { round: 0, kind: "k".into(), direction: "d".into(), bytes: 0 },
            Event::RoundEnd { round: 0, sim_time_s: 0.0 },
            Event::Dropped { count: 0 },
        ];
        let mut kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }
}
