//! The global in-process collector (compiled only with the `enabled`
//! feature).
//!
//! Recording is a two-stage gate: the `telemetry` cargo feature compiles
//! the instrumentation in, and the runtime **armed** flag turns it on for
//! a particular run (`--trace`/`--prof` arm it; tests arm it explicitly).
//! While disarmed, every hook is a single relaxed atomic load.
//!
//! Raw events are buffered up to a cap; with a streaming sink attached
//! (see [`stream_to`]) the buffers spill to disk instead of dropping, so
//! memory stays bounded for arbitrarily long runs. Aggregates (span
//! stats, span-tree path stats, counters, gauges, histograms) are
//! updated for every activation and are therefore exact regardless of
//! the caps.
//!
//! # Span trees
//!
//! Every armed [`SpanGuard`] pushes a frame onto a thread-local scope
//! stack, giving `span!` scopes parent/child identity without any
//! cross-thread coordination. When a span closes, its **path** (the
//! `/`-joined chain of span names from the outermost open scope down)
//! is credited with the activation: total time, *self* time (total
//! minus time spent in child spans), and — when an allocation probe is
//! installed (see [`install_alloc_probe`]) — bytes and allocator calls
//! attributed the same way. Telemetry's own allocations are measured
//! and subtracted via a thread-local excluded-bytes ledger, so the
//! allocator columns describe the instrumented program, not the
//! instrumentation, and stay bitwise-reproducible for single-threaded
//! runs.
//!
//! This module is the only place outside `crates/net/src/clock.rs` where
//! wall-clock time may be read (fedlint rule `no-wall-clock`): wall
//! durations are observations about the host, never inputs to training.

use crate::event::Event;
use crate::jsonl;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Raw span events kept verbatim before capping (or spilling to the
/// streaming sink, when one is attached). Public so integration tests
/// can overflow the buffer deliberately and check the truncation
/// accounting end to end.
pub const SPAN_EVENT_CAP: usize = 65_536;
/// Structured run events (device rounds, bytes, round ends) kept before
/// capping; sized for thousands of rounds over hundreds of devices.
const RUN_EVENT_CAP: usize = 1 << 20;
/// Flight-recorder depth: the most recent K structured run events are
/// kept in a bounded ring regardless of the caps above, so a post-mortem
/// window survives even when the raw buffers spill or drop. Events in
/// the ring are simulation observations (virtual clock, fault plan), so
/// the ring contents are bitwise-reproducible across same-seed runs.
pub const FLIGHT_RING_CAP: usize = 256;

/// Upper bucket bounds shared by every histogram (seconds-scale at the
/// low end through kilo-units at the top; the unit is the metric's).
pub const HISTOGRAM_BOUNDS: [f64; 10] =
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];

// ---------------------------------------------------------------------------
// Allocation probe
// ---------------------------------------------------------------------------

/// The installed `fn() -> (bytes, calls)` probe, stored as a raw fn
/// pointer (`0` = none installed).
static ALLOC_PROBE: AtomicUsize = AtomicUsize::new(0);

/// Install a cumulative-allocation probe: a function returning the
/// process-wide `(bytes_requested, allocator_calls)` totals so far —
/// typically `fedprox-perfbench`'s counting global allocator. Spans
/// closed afterwards attribute allocation deltas to their tree path.
/// Install **before** arming; spans opened across an install observe a
/// bogus first delta.
pub fn install_alloc_probe(probe: fn() -> (u64, u64)) {
    ALLOC_PROBE.store(probe as usize, Ordering::SeqCst);
}

/// Whether an allocation probe is installed.
pub fn alloc_probe_installed() -> bool {
    ALLOC_PROBE.load(Ordering::Relaxed) != 0
}

/// Current probe reading; `(0, 0)` when no probe is installed.
fn alloc_now() -> (u64, u64) {
    let raw = ALLOC_PROBE.load(Ordering::Relaxed);
    if raw == 0 {
        return (0, 0);
    }
    // The only non-zero store is `install_alloc_probe`.
    // SAFETY: `raw` was written as a valid `fn() -> (u64, u64)` pointer.
    let probe: fn() -> (u64, u64) = unsafe { std::mem::transmute(raw) };
    probe()
}

// ---------------------------------------------------------------------------
// Thread-local scope stack + excluded-allocation ledger
// ---------------------------------------------------------------------------

/// One open span on this thread's scope stack.
struct Frame {
    /// Span name (the path segment).
    name: &'static str,
    /// Wall time accumulated by already-closed child spans, in µs.
    child_micros: f64,
    /// Probe reading when the span opened.
    probe_bytes: u64,
    probe_calls: u64,
    /// Excluded-ledger reading when the span opened.
    excl_bytes: u64,
    excl_calls: u64,
    /// Measured (probe − excluded) allocation of closed child spans.
    child_bytes: u64,
    child_calls: u64,
}

/// Telemetry-internal allocation ledger: cumulative bytes/calls the
/// collector itself allocated on this thread, subtracted from every
/// span's probe delta so the alloc columns describe the program. The
/// depth cell guards re-entrant [`excluded`] scopes against
/// double-counting.
struct ExclLedger {
    depth: Cell<u32>,
    bytes: Cell<u64>,
    calls: Cell<u64>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static EXCLUDED: ExclLedger =
        const { ExclLedger { depth: Cell::new(0), bytes: Cell::new(0), calls: Cell::new(0) } };
}

/// Run `f`, crediting any allocation it performs (as seen by the probe)
/// to the excluded ledger. Only the outermost nested scope measures.
fn excluded<R>(f: impl FnOnce() -> R) -> R {
    let outer = EXCLUDED.with(|e| {
        let d = e.depth.get();
        e.depth.set(d + 1);
        d == 0
    });
    let before = if outer { alloc_now() } else { (0, 0) };
    let r = f();
    EXCLUDED.with(|e| {
        e.depth.set(e.depth.get().saturating_sub(1));
        if outer {
            let after = alloc_now();
            e.bytes.set(e.bytes.get().saturating_add(after.0.saturating_sub(before.0)));
            e.calls.set(e.calls.get().saturating_add(after.1.saturating_sub(before.1)));
        }
    });
    r
}

/// Current excluded-ledger totals for this thread.
fn excluded_totals() -> (u64, u64) {
    EXCLUDED.with(|e| (e.bytes.get(), e.calls.get()))
}

// ---------------------------------------------------------------------------
// Collector state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_micros: f64,
    max_micros: f64,
}

/// Exact aggregate of one span-tree path.
#[derive(Clone, Copy, Default)]
struct PathAgg {
    count: u64,
    total_micros: f64,
    self_micros: f64,
    max_micros: f64,
    total_bytes: u64,
    self_bytes: u64,
    total_allocs: u64,
    self_allocs: u64,
}

struct SpanRec {
    layer: &'static str,
    name: &'static str,
    micros: f64,
    attrs: Vec<(&'static str, f64)>,
}

impl SpanRec {
    fn to_event(&self) -> Event {
        Event::Span {
            layer: self.layer.to_string(),
            name: self.name.to_string(),
            micros: self.micros,
            attrs: self.attrs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }
}

struct Inner {
    span_recs: Vec<SpanRec>,
    run_events: Vec<Event>,
    dropped: u64,
    /// Raw span records discarded at the cap with no sink attached.
    truncated_spans: u64,
    spans: BTreeMap<(&'static str, &'static str), SpanAgg>,
    paths: BTreeMap<String, PathAgg>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, [u64; HISTOGRAM_BOUNDS.len() + 1]>,
    /// Incremental JSONL sink; buffered raw/run events flush here on
    /// every `RoundEnd` and whenever a buffer cap is hit.
    stream: Option<std::io::BufWriter<std::fs::File>>,
    /// Flight recorder: the most recent [`FLIGHT_RING_CAP`] structured
    /// run events, kept even after spills/drops so a post-mortem window
    /// always exists.
    flight: VecDeque<Event>,
    /// Ring snapshot captured at the *first* post-mortem trigger of the
    /// run (divergence or quorum skip); later triggers don't overwrite
    /// it, so the bundle describes the original failure.
    postmortem: Option<Vec<Event>>,
}

impl Inner {
    const fn new() -> Self {
        Inner {
            span_recs: Vec::new(),
            run_events: Vec::new(),
            dropped: 0,
            truncated_spans: 0,
            spans: BTreeMap::new(),
            paths: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            stream: None,
            flight: VecDeque::new(),
            postmortem: None,
        }
    }

    /// Write every buffered raw/run event to the streaming sink and
    /// clear the buffers. On any I/O error the sink is detached and
    /// buffering falls back to the in-memory caps (telemetry must never
    /// panic or print from library code).
    fn flush_stream(&mut self) {
        let Some(mut w) = self.stream.take() else { return };
        let mut ok = true;
        for e in self.run_events.drain(..) {
            let mut line = jsonl::write_line(&e);
            line.push('\n');
            if w.write_all(line.as_bytes()).is_err() {
                ok = false;
                break;
            }
        }
        if ok {
            for r in self.span_recs.drain(..) {
                let mut line = jsonl::write_line(&r.to_event());
                line.push('\n');
                if w.write_all(line.as_bytes()).is_err() {
                    ok = false;
                    break;
                }
            }
        }
        if ok && w.flush().is_ok() {
            self.stream = Some(w);
        }
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static INNER: Mutex<Inner> = Mutex::new(Inner::new());

fn lock() -> MutexGuard<'static, Inner> {
    // A panic while holding the lock (e.g. an instrumented worker dying)
    // must not wedge telemetry for the rest of the process.
    INNER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clear all recorded state and start recording. Detaches any streaming
/// sink — attach one with [`stream_to`] *after* arming.
pub fn arm() {
    reset();
    ARMED.store(true, Ordering::SeqCst);
}

/// Stop recording (recorded state is kept until [`reset`] or [`drain`]).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether the collector is currently recording.
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Discard all recorded state (and detach any streaming sink).
pub fn reset() {
    *lock() = Inner::new();
}

/// Attach an incremental JSONL sink: buffered raw span and run events
/// are appended to `path` on every `RoundEnd` and whenever a buffer cap
/// would otherwise drop records, keeping collector memory bounded for
/// long runs. Call after [`arm`] (arming resets the sink). The trailing
/// aggregate records come from [`drain`] at the end of the run; a
/// complete trace file is the streamed lines plus the drained tail.
pub fn stream_to(path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    lock().stream = Some(std::io::BufWriter::new(file));
    Ok(())
}

/// Whether a streaming sink is currently attached.
pub fn streaming() -> bool {
    lock().stream.is_some()
}

/// Take everything recorded so far as a flat event stream: structured
/// run events first (in arrival order), then raw spans, then the exact
/// aggregates (flat span stats, span-tree path stats, counters, gauges,
/// histograms), then trailing `TraceTruncated` / `Dropped` markers if
/// any cap was hit. Leaves the collector empty; the armed flag is
/// untouched.
///
/// With a streaming sink attached, buffered raw/run events are flushed
/// to the sink (which is then closed) instead of being returned: the
/// returned events are exactly the aggregate tail the caller should
/// append to the streamed file.
pub fn drain() -> Vec<Event> {
    let mut inner = {
        let mut g = lock();
        std::mem::replace(&mut *g, Inner::new())
    };
    if inner.stream.is_some() {
        inner.flush_stream();
        // Drop (close) the sink; remaining events go to the caller.
        inner.stream = None;
    }
    let mut out = Vec::with_capacity(
        inner.run_events.len() + inner.span_recs.len() + inner.spans.len() + inner.paths.len() + 8,
    );
    out.extend(inner.run_events);
    for r in inner.span_recs {
        out.push(r.to_event());
    }
    for ((layer, name), agg) in inner.spans {
        out.push(Event::SpanStat {
            layer: layer.to_string(),
            name: name.to_string(),
            count: agg.count,
            total_micros: agg.total_micros,
            max_micros: agg.max_micros,
        });
    }
    for (path, agg) in inner.paths {
        out.push(Event::PathStat {
            path,
            count: agg.count,
            total_micros: agg.total_micros,
            self_micros: agg.self_micros,
            max_micros: agg.max_micros,
            total_bytes: agg.total_bytes,
            self_bytes: agg.self_bytes,
            total_allocs: agg.total_allocs,
            self_allocs: agg.self_allocs,
        });
    }
    for (name, value) in inner.counters {
        out.push(Event::Counter { name: name.to_string(), value });
    }
    for (name, value) in inner.gauges {
        out.push(Event::Gauge { name: name.to_string(), value });
    }
    for (name, counts) in inner.hists {
        out.push(Event::Histogram {
            name: name.to_string(),
            bounds: HISTOGRAM_BOUNDS.to_vec(),
            counts: counts.to_vec(),
        });
    }
    if inner.truncated_spans > 0 {
        out.push(Event::TraceTruncated { dropped_spans: inner.truncated_spans });
    }
    if inner.dropped > 0 {
        out.push(Event::Dropped { count: inner.dropped });
    }
    out
}

/// Add `delta` to a named counter (saturating). No-op while disarmed.
pub fn add_counter(name: &'static str, delta: u64) {
    if !is_armed() {
        return;
    }
    excluded(|| {
        let mut g = lock();
        let c = g.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    });
}

/// Set a named gauge (last write wins). No-op while disarmed.
pub fn set_gauge(name: &'static str, value: f64) {
    if !is_armed() {
        return;
    }
    excluded(|| {
        lock().gauges.insert(name, value);
    });
}

/// Record one sample into a named fixed-bucket histogram.
pub fn record_histogram(name: &'static str, value: f64) {
    if !is_armed() {
        return;
    }
    let bucket = HISTOGRAM_BOUNDS
        .iter()
        .position(|b| value <= *b)
        .unwrap_or(HISTOGRAM_BOUNDS.len());
    excluded(|| {
        let mut g = lock();
        let counts = g.hists.entry(name).or_insert([0; HISTOGRAM_BOUNDS.len() + 1]);
        counts[bucket] = counts[bucket].saturating_add(1);
    });
}

/// Push a structured run event (device round, bytes, round end). No-op
/// while disarmed. A `RoundEnd` flushes the streaming sink, giving live
/// consumers a round-granular tail to follow; past the buffer cap,
/// events spill to the sink or are counted as dropped.
pub fn record_event(event: Event) {
    if !is_armed() {
        return;
    }
    let round_end = matches!(event, Event::RoundEnd { .. });
    excluded(|| {
        let mut g = lock();
        // The flight ring sees every armed event, including ones the
        // main buffer is about to drop: the ring *is* the record of
        // last resort.
        if g.flight.len() >= FLIGHT_RING_CAP {
            g.flight.pop_front();
        }
        g.flight.push_back(event.clone());
        if g.run_events.len() >= RUN_EVENT_CAP {
            if g.stream.is_some() {
                g.flush_stream();
            } else {
                g.dropped = g.dropped.saturating_add(1);
                return;
            }
        }
        g.run_events.push(event);
        if round_end && g.stream.is_some() {
            g.flush_stream();
        }
    });
}

/// Snapshot of the flight-recorder ring: the most recent (up to
/// [`FLIGHT_RING_CAP`]) structured run events in arrival order. Empty
/// while disarmed or before any event.
pub fn flight_snapshot() -> Vec<Event> {
    excluded(|| lock().flight.iter().cloned().collect())
}

/// Fire the flight recorder: snapshot the ring (first trigger wins) and
/// record an in-stream [`Event::Postmortem`] marker so offline tooling
/// can locate the failure window inside the JSONL file. `round` is
/// 1-based; `reason` is one of `non_finite` / `loss_guard` /
/// `quorum_skip`; `device` names the attributed device when one exists.
/// No-op while disarmed.
pub fn trigger_postmortem(reason: &str, round: u32, device: Option<u32>) {
    if !is_armed() {
        return;
    }
    excluded(|| {
        let mut g = lock();
        if g.postmortem.is_none() {
            let snap: Vec<Event> = g.flight.iter().cloned().collect();
            g.postmortem = Some(snap);
        }
    });
    record_event(Event::Postmortem { round, reason: reason.to_string(), device });
}

/// The ring snapshot captured at the first post-mortem trigger, if any
/// fired this run. Non-consuming; cleared by [`reset`]/[`arm`]/[`drain`].
pub fn postmortem_snapshot() -> Option<Vec<Event>> {
    excluded(|| lock().postmortem.clone())
}

/// Current value of a counter (0 if never touched). Test helper: lets
/// exact-count assertions read totals without draining.
pub fn counter_value(name: &str) -> u64 {
    lock().counters.get(name).copied().unwrap_or(0)
}

/// Exact activation count of a `(layer, name)` span so far.
pub fn span_count(layer: &str, name: &str) -> u64 {
    lock()
        .spans
        .iter()
        .find(|((l, n), _)| *l == layer && *n == name)
        .map(|(_, agg)| agg.count)
        .unwrap_or(0)
}

/// Exact activation count of a span-tree path so far. Test helper.
pub fn path_count(path: &str) -> u64 {
    lock().paths.get(path).map(|agg| agg.count).unwrap_or(0)
}

/// Everything measured about one closed span, recorded under one lock.
struct ClosedSpan {
    layer: &'static str,
    name: &'static str,
    attrs: Vec<(&'static str, f64)>,
    path: String,
    micros: f64,
    self_micros: f64,
    bytes: u64,
    self_bytes: u64,
    calls: u64,
    self_calls: u64,
}

fn record_closed_span(c: ClosedSpan) {
    if !is_armed() {
        return;
    }
    let mut g = lock();
    let agg = g.spans.entry((c.layer, c.name)).or_default();
    agg.count = agg.count.saturating_add(1);
    agg.total_micros += c.micros;
    agg.max_micros = agg.max_micros.max(c.micros);
    let pa = g.paths.entry(c.path).or_default();
    pa.count = pa.count.saturating_add(1);
    pa.total_micros += c.micros;
    pa.self_micros += c.self_micros;
    pa.max_micros = pa.max_micros.max(c.micros);
    pa.total_bytes = pa.total_bytes.saturating_add(c.bytes);
    pa.self_bytes = pa.self_bytes.saturating_add(c.self_bytes);
    pa.total_allocs = pa.total_allocs.saturating_add(c.calls);
    pa.self_allocs = pa.self_allocs.saturating_add(c.self_calls);
    if g.span_recs.len() >= SPAN_EVENT_CAP {
        if g.stream.is_some() {
            g.flush_stream();
        } else {
            // No sink: the raw sample is truncated (aggregates above
            // stay exact); a TraceTruncated marker surfaces it.
            g.truncated_spans = g.truncated_spans.saturating_add(1);
            return;
        }
    }
    g.span_recs.push(SpanRec { layer: c.layer, name: c.name, micros: c.micros, attrs: c.attrs });
}

/// RAII guard recording a wall-clock span from construction to drop.
/// Use through the `span!` macro, which binds it to a scope-local.
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    layer: &'static str,
    name: &'static str,
    attrs: Vec<(&'static str, f64)>,
    start: Instant,
}

impl SpanGuard {
    /// Start a span; returns an inert guard while disarmed. Armed
    /// guards push a frame onto this thread's scope stack, parenting
    /// any span opened before this one drops.
    pub fn begin(layer: &'static str, name: &'static str, attrs: &[(&'static str, f64)]) -> Self {
        if !is_armed() {
            return SpanGuard(None);
        }
        let attrs = excluded(|| attrs.to_vec());
        // Snapshot the probe and ledger, then push the frame inside an
        // excluded scope: the push's own allocation lands in the ledger
        // after the snapshot, so the frame's window nets it out.
        let (probe_bytes, probe_calls) = alloc_now();
        let (excl_bytes, excl_calls) = excluded_totals();
        excluded(|| {
            STACK.with(|s| {
                s.borrow_mut().push(Frame {
                    name,
                    child_micros: 0.0,
                    probe_bytes,
                    probe_calls,
                    excl_bytes,
                    excl_calls,
                    child_bytes: 0,
                    child_calls: 0,
                })
            })
        });
        SpanGuard(Some(ActiveSpan { layer, name, attrs, start: Instant::now() }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.0.take() else { return };
        let micros = a.start.elapsed().as_secs_f64() * 1e6;
        let (probe_bytes, probe_calls) = alloc_now();
        let (excl_bytes, excl_calls) = excluded_totals();
        // The stack is strictly LIFO per thread (RAII scopes), so the
        // top frame is ours. Pop unconditionally to stay balanced even
        // if the collector was disarmed or reset mid-span.
        let frame = STACK.with(|s| s.borrow_mut().pop());
        let Some(f) = frame else { return };
        let bytes = probe_bytes
            .saturating_sub(f.probe_bytes)
            .saturating_sub(excl_bytes.saturating_sub(f.excl_bytes));
        let calls = probe_calls
            .saturating_sub(f.probe_calls)
            .saturating_sub(excl_calls.saturating_sub(f.excl_calls));
        excluded(|| {
            // Credit totals to the parent's child accumulators, then
            // record under the full path.
            STACK.with(|s| {
                if let Some(p) = s.borrow_mut().last_mut() {
                    p.child_micros += micros;
                    p.child_bytes = p.child_bytes.saturating_add(bytes);
                    p.child_calls = p.child_calls.saturating_add(calls);
                }
            });
            let path = STACK.with(|s| {
                let stack = s.borrow();
                let mut path = String::with_capacity(
                    stack.iter().map(|fr| fr.name.len() + 1).sum::<usize>() + a.name.len(),
                );
                for fr in stack.iter() {
                    path.push_str(fr.name);
                    path.push('/');
                }
                path.push_str(a.name);
                path
            });
            record_closed_span(ClosedSpan {
                layer: a.layer,
                name: a.name,
                attrs: a.attrs,
                path,
                micros,
                self_micros: (micros - f.child_micros).max(0.0),
                bytes,
                self_bytes: bytes.saturating_sub(f.child_bytes),
                calls,
                self_calls: calls.saturating_sub(f.child_calls),
            });
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; serialize the tests that own it.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_records_nothing() {
        let _g = guard();
        reset();
        disarm();
        add_counter("x", 5);
        record_event(Event::RoundEnd { round: 0, sim_time_s: 1.0 });
        {
            let _s = SpanGuard::begin("t", "op", &[]);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn armed_counts_are_exact() {
        let _g = guard();
        arm();
        for _ in 0..7 {
            add_counter("c", 2);
        }
        {
            let _s = SpanGuard::begin("t", "op", &[("k", 1.0)]);
        }
        {
            let _s = SpanGuard::begin("t", "op", &[]);
        }
        assert_eq!(counter_value("c"), 14);
        assert_eq!(span_count("t", "op"), 2);
        let events = drain();
        disarm();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::Span { .. }))
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::SpanStat { count: 2, .. }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Counter { value: 14, .. }
        )));
        // Nothing dropped, so no Dropped record.
        assert!(!events.iter().any(|e| matches!(e, Event::Dropped { .. })));
    }

    #[test]
    fn counter_saturates() {
        let _g = guard();
        arm();
        add_counter("sat", u64::MAX - 1);
        add_counter("sat", 10);
        assert_eq!(counter_value("sat"), u64::MAX);
        reset();
        disarm();
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let _g = guard();
        arm();
        record_histogram("h", 5e-7); // bucket 0
        record_histogram("h", 0.5); // <= 1.0 → bucket 6
        record_histogram("h", 1e9); // overflow bucket
        let events = drain();
        disarm();
        let hist = events
            .iter()
            .find_map(|e| match e {
                Event::Histogram { counts, .. } => Some(counts.clone()),
                _ => None,
            })
            .expect("histogram present");
        assert_eq!(hist[0], 1);
        assert_eq!(hist[6], 1);
        assert_eq!(hist[HISTOGRAM_BOUNDS.len()], 1);
    }

    #[test]
    fn arm_resets_previous_state() {
        let _g = guard();
        arm();
        add_counter("stale", 1);
        arm();
        assert_eq!(counter_value("stale"), 0);
        reset();
        disarm();
    }

    #[test]
    fn nested_spans_record_tree_paths() {
        let _g = guard();
        arm();
        {
            let _outer = SpanGuard::begin("core", "round", &[]);
            {
                let _mid = SpanGuard::begin("core", "device_update", &[]);
                let _leaf = SpanGuard::begin("tensor", "matmul", &[]);
            }
            let _leaf2 = SpanGuard::begin("tensor", "matmul", &[]);
        }
        assert_eq!(path_count("round"), 1);
        assert_eq!(path_count("round/device_update"), 1);
        assert_eq!(path_count("round/device_update/matmul"), 1);
        assert_eq!(path_count("round/matmul"), 1);
        let events = drain();
        disarm();
        let paths: Vec<&str> = events
            .iter()
            .filter_map(|e| match e {
                Event::PathStat { path, .. } => Some(path.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            paths,
            vec!["round", "round/device_update", "round/device_update/matmul", "round/matmul"],
            "path stats must drain in sorted order"
        );
    }

    #[test]
    fn self_time_excludes_children() {
        let _g = guard();
        arm();
        {
            let _outer = SpanGuard::begin("t", "outer", &[]);
            let inner = SpanGuard::begin("t", "inner", &[]);
            std::thread::sleep(std::time::Duration::from_millis(2));
            drop(inner);
        }
        let events = drain();
        disarm();
        let get = |which: &str| {
            events
                .iter()
                .find_map(|e| match e {
                    Event::PathStat { path, total_micros, self_micros, .. } if path == which => {
                        Some((*total_micros, *self_micros))
                    }
                    _ => None,
                })
                .expect("path present")
        };
        let (outer_total, outer_self) = get("outer");
        let (inner_total, inner_self) = get("outer/inner");
        assert!(inner_total >= 2000.0, "inner span must cover the sleep: {inner_total}");
        assert!((inner_total - inner_self).abs() < 1e-9, "leaf self == total");
        assert!(outer_total >= inner_total);
        assert!(
            outer_self <= outer_total - inner_total + 1e-6,
            "outer self time must exclude the inner span ({outer_self} vs {outer_total} - {inner_total})"
        );
    }

    #[test]
    fn streaming_sink_flushes_on_round_end_and_drains_aggregates() {
        let _g = guard();
        let dir = std::env::temp_dir().join("fedprox_collector_stream_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("stream.jsonl");
        let path_str = path.to_str().expect("utf8 path").to_string();
        arm();
        stream_to(&path_str).expect("attach sink");
        assert!(streaming());
        {
            let _s = SpanGuard::begin("t", "op", &[]);
        }
        record_event(Event::RoundEnd { round: 0, sim_time_s: 1.0 });
        // The flush on RoundEnd must have written the span + the event.
        let mid = std::fs::read_to_string(&path).expect("read mid-run");
        let mid_events = jsonl::parse(&mid).expect("parse mid-run");
        assert!(mid_events.iter().any(|e| matches!(e, Event::Span { .. })));
        assert!(mid_events.iter().any(|e| matches!(e, Event::RoundEnd { .. })));
        {
            let _s = SpanGuard::begin("t", "late", &[]);
        }
        let tail = drain();
        disarm();
        // Streamed events are not replayed in the drain; the final flush
        // sends the post-RoundEnd span to the file too.
        assert!(!tail.iter().any(|e| matches!(e, Event::RoundEnd { .. })));
        assert!(!tail.iter().any(|e| matches!(e, Event::Span { .. })));
        let full = std::fs::read_to_string(&path).expect("read final");
        let file_events = jsonl::parse(&full).expect("parse final");
        assert!(file_events.iter().any(
            |e| matches!(e, Event::Span { name, .. } if name == "late")
        ));
        // The tail is exactly the aggregate records to append.
        assert!(tail.iter().any(|e| matches!(e, Event::SpanStat { .. })));
        assert!(tail.iter().any(|e| matches!(e, Event::PathStat { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn alloc_probe_attributes_bytes_to_spans() {
        let _g = guard();
        // A deterministic fake probe driven by a test-owned counter.
        static FAKE: AtomicUsize = AtomicUsize::new(0);
        fn probe() -> (u64, u64) {
            let v = FAKE.load(Ordering::Relaxed) as u64;
            (v * 100, v)
        }
        install_alloc_probe(probe);
        arm();
        {
            let _outer = SpanGuard::begin("t", "outer", &[]);
            FAKE.fetch_add(1, Ordering::Relaxed); // 100 B to outer self
            {
                let _inner = SpanGuard::begin("t", "inner", &[]);
                FAKE.fetch_add(3, Ordering::Relaxed); // 300 B to inner
            }
            FAKE.fetch_add(1, Ordering::Relaxed); // 100 B more to outer self
        }
        let events = drain();
        disarm();
        ALLOC_PROBE.store(0, Ordering::SeqCst);
        let get = |which: &str| {
            events
                .iter()
                .find_map(|e| match e {
                    Event::PathStat { path, total_bytes, self_bytes, total_allocs, .. }
                        if path == which =>
                    {
                        Some((*total_bytes, *self_bytes, *total_allocs))
                    }
                    _ => None,
                })
                .expect("path present")
        };
        // The fake probe never moves during telemetry-internal work, so
        // the excluded ledger stays at zero and the split is exact.
        assert_eq!(get("outer/inner"), (300, 300, 3));
        assert_eq!(get("outer"), (500, 200, 5));
    }

    #[test]
    fn flight_ring_keeps_most_recent_events() {
        let _g = guard();
        arm();
        let n = FLIGHT_RING_CAP + 17;
        for i in 0..n {
            record_event(Event::RoundEnd { round: i as u32, sim_time_s: i as f64 });
        }
        let ring = flight_snapshot();
        disarm();
        reset();
        assert_eq!(ring.len(), FLIGHT_RING_CAP, "ring is bounded");
        // Oldest surviving event is exactly the (n - CAP)-th one.
        let first = (n - FLIGHT_RING_CAP) as u32;
        assert!(matches!(ring[0], Event::RoundEnd { round, .. } if round == first));
        assert!(matches!(
            ring[FLIGHT_RING_CAP - 1],
            Event::RoundEnd { round, .. } if round == (n as u32 - 1)
        ));
    }

    #[test]
    fn first_postmortem_trigger_wins_and_marker_streams_in_place() {
        let _g = guard();
        arm();
        record_event(Event::RoundEnd { round: 0, sim_time_s: 1.0 });
        trigger_postmortem("quorum_skip", 1, Some(2));
        record_event(Event::RoundEnd { round: 1, sim_time_s: 2.0 });
        trigger_postmortem("non_finite", 2, None);
        let snap = postmortem_snapshot().expect("first trigger captured");
        // The first trigger fired after one event; the later trigger
        // must not have replaced the snapshot.
        assert_eq!(snap.len(), 1);
        assert!(matches!(snap[0], Event::RoundEnd { round: 0, .. }));
        let events = drain();
        disarm();
        let markers: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                Event::Postmortem { round, reason, device } => {
                    Some((*round, reason.as_str(), *device))
                }
                _ => None,
            })
            .collect();
        assert_eq!(markers, vec![(1, "quorum_skip", Some(2)), (2, "non_finite", None)]);
        // Markers sit in arrival order between the round events.
        let kinds: Vec<&str> = events.iter().map(|e| e.kind()).take(4).collect();
        assert_eq!(kinds, vec!["round_end", "postmortem", "round_end", "postmortem"]);
        assert!(postmortem_snapshot().is_none(), "drain clears the snapshot");
    }

    #[test]
    fn disarmed_postmortem_trigger_is_inert() {
        let _g = guard();
        reset();
        disarm();
        trigger_postmortem("loss_guard", 3, None);
        assert!(postmortem_snapshot().is_none());
        assert!(flight_snapshot().is_empty());
        assert!(drain().is_empty());
    }

    #[test]
    fn span_cap_without_sink_truncates_with_marker() {
        let _g = guard();
        arm();
        // Fill the raw buffer past the cap with cheap spans.
        for _ in 0..(SPAN_EVENT_CAP + 10) {
            let _s = SpanGuard::begin("t", "tiny", &[]);
        }
        assert_eq!(span_count("t", "tiny"), SPAN_EVENT_CAP as u64 + 10);
        let events = drain();
        disarm();
        let raw = events.iter().filter(|e| matches!(e, Event::Span { .. })).count();
        assert_eq!(raw, SPAN_EVENT_CAP, "raw records stop at the cap");
        assert!(
            events
                .iter()
                .any(|e| matches!(e, Event::TraceTruncated { dropped_spans: 10 })),
            "truncation must be marked: {:?}",
            events.last()
        );
        // Aggregates stay exact regardless.
        assert!(events.iter().any(|e| matches!(
            e,
            Event::PathStat { count, .. } if *count == SPAN_EVENT_CAP as u64 + 10
        )));
    }
}
