//! The global in-process collector (compiled only with the `enabled`
//! feature).
//!
//! Recording is a two-stage gate: the `telemetry` cargo feature compiles
//! the instrumentation in, and the runtime **armed** flag turns it on for
//! a particular run (`--trace` arms it; tests arm it explicitly). While
//! disarmed, every hook is a single relaxed atomic load.
//!
//! Raw events are buffered up to a cap and then counted as dropped;
//! aggregates (span stats, counters, gauges, histograms) are updated for
//! every activation and are therefore exact regardless of the cap.
//!
//! This module is the only place outside `crates/net/src/clock.rs` where
//! wall-clock time may be read (fedlint rule `no-wall-clock`): wall
//! durations are observations about the host, never inputs to training.

use crate::event::Event;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Raw span events kept verbatim before capping.
const SPAN_EVENT_CAP: usize = 65_536;
/// Structured run events (device rounds, bytes, round ends) kept before
/// capping; sized for thousands of rounds over hundreds of devices.
const RUN_EVENT_CAP: usize = 1 << 20;

/// Upper bucket bounds shared by every histogram (seconds-scale at the
/// low end through kilo-units at the top; the unit is the metric's).
pub const HISTOGRAM_BOUNDS: [f64; 10] =
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];

#[derive(Clone, Copy, Default)]
struct SpanAgg {
    count: u64,
    total_micros: f64,
    max_micros: f64,
}

struct SpanRec {
    layer: &'static str,
    name: &'static str,
    micros: f64,
    attrs: Vec<(&'static str, f64)>,
}

struct Inner {
    span_recs: Vec<SpanRec>,
    run_events: Vec<Event>,
    dropped: u64,
    spans: BTreeMap<(&'static str, &'static str), SpanAgg>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, [u64; HISTOGRAM_BOUNDS.len() + 1]>,
}

impl Inner {
    const fn new() -> Self {
        Inner {
            span_recs: Vec::new(),
            run_events: Vec::new(),
            dropped: 0,
            spans: BTreeMap::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }
}

static ARMED: AtomicBool = AtomicBool::new(false);
static INNER: Mutex<Inner> = Mutex::new(Inner::new());

fn lock() -> MutexGuard<'static, Inner> {
    // A panic while holding the lock (e.g. an instrumented worker dying)
    // must not wedge telemetry for the rest of the process.
    INNER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clear all recorded state and start recording.
pub fn arm() {
    reset();
    ARMED.store(true, Ordering::SeqCst);
}

/// Stop recording (recorded state is kept until [`reset`] or [`drain`]).
pub fn disarm() {
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether the collector is currently recording.
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Discard all recorded state.
pub fn reset() {
    *lock() = Inner::new();
}

/// Take everything recorded so far as a flat event stream: structured
/// run events first (in arrival order), then raw spans, then the exact
/// aggregates, then a trailing `Dropped` record if any cap was hit.
/// Leaves the collector empty; the armed flag is untouched.
pub fn drain() -> Vec<Event> {
    let inner = {
        let mut g = lock();
        std::mem::replace(&mut *g, Inner::new())
    };
    let mut out = Vec::with_capacity(
        inner.run_events.len() + inner.span_recs.len() + inner.spans.len() + 8,
    );
    out.extend(inner.run_events);
    for r in inner.span_recs {
        out.push(Event::Span {
            layer: r.layer.to_string(),
            name: r.name.to_string(),
            micros: r.micros,
            attrs: r.attrs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        });
    }
    for ((layer, name), agg) in inner.spans {
        out.push(Event::SpanStat {
            layer: layer.to_string(),
            name: name.to_string(),
            count: agg.count,
            total_micros: agg.total_micros,
            max_micros: agg.max_micros,
        });
    }
    for (name, value) in inner.counters {
        out.push(Event::Counter { name: name.to_string(), value });
    }
    for (name, value) in inner.gauges {
        out.push(Event::Gauge { name: name.to_string(), value });
    }
    for (name, counts) in inner.hists {
        out.push(Event::Histogram {
            name: name.to_string(),
            bounds: HISTOGRAM_BOUNDS.to_vec(),
            counts: counts.to_vec(),
        });
    }
    if inner.dropped > 0 {
        out.push(Event::Dropped { count: inner.dropped });
    }
    out
}

/// Add `delta` to a named counter (saturating). No-op while disarmed.
pub fn add_counter(name: &'static str, delta: u64) {
    if !is_armed() {
        return;
    }
    let mut g = lock();
    let c = g.counters.entry(name).or_insert(0);
    *c = c.saturating_add(delta);
}

/// Set a named gauge (last write wins). No-op while disarmed.
pub fn set_gauge(name: &'static str, value: f64) {
    if !is_armed() {
        return;
    }
    lock().gauges.insert(name, value);
}

/// Record one sample into a named fixed-bucket histogram.
pub fn record_histogram(name: &'static str, value: f64) {
    if !is_armed() {
        return;
    }
    let bucket = HISTOGRAM_BOUNDS
        .iter()
        .position(|b| value <= *b)
        .unwrap_or(HISTOGRAM_BOUNDS.len());
    let mut g = lock();
    let counts = g.hists.entry(name).or_insert([0; HISTOGRAM_BOUNDS.len() + 1]);
    counts[bucket] = counts[bucket].saturating_add(1);
}

/// Push a structured run event (device round, bytes, round end). No-op
/// while disarmed; counted as dropped past the buffer cap.
pub fn record_event(event: Event) {
    if !is_armed() {
        return;
    }
    let mut g = lock();
    if g.run_events.len() < RUN_EVENT_CAP {
        g.run_events.push(event);
    } else {
        g.dropped = g.dropped.saturating_add(1);
    }
}

/// Current value of a counter (0 if never touched). Test helper: lets
/// exact-count assertions read totals without draining.
pub fn counter_value(name: &str) -> u64 {
    lock().counters.get(name).copied().unwrap_or(0)
}

/// Exact activation count of a `(layer, name)` span so far.
pub fn span_count(layer: &str, name: &str) -> u64 {
    lock()
        .spans
        .iter()
        .find(|((l, n), _)| *l == layer && *n == name)
        .map(|(_, agg)| agg.count)
        .unwrap_or(0)
}

fn record_span(layer: &'static str, name: &'static str, attrs: Vec<(&'static str, f64)>, micros: f64) {
    if !is_armed() {
        return;
    }
    let mut g = lock();
    let agg = g.spans.entry((layer, name)).or_default();
    agg.count = agg.count.saturating_add(1);
    agg.total_micros += micros;
    agg.max_micros = agg.max_micros.max(micros);
    if g.span_recs.len() < SPAN_EVENT_CAP {
        g.span_recs.push(SpanRec { layer, name, micros, attrs });
    } else {
        g.dropped = g.dropped.saturating_add(1);
    }
}

/// RAII guard recording a wall-clock span from construction to drop.
/// Use through the `span!` macro, which binds it to a scope-local.
pub struct SpanGuard(Option<ActiveSpan>);

struct ActiveSpan {
    layer: &'static str,
    name: &'static str,
    attrs: Vec<(&'static str, f64)>,
    start: Instant,
}

impl SpanGuard {
    /// Start a span; returns an inert guard while disarmed.
    pub fn begin(layer: &'static str, name: &'static str, attrs: &[(&'static str, f64)]) -> Self {
        if !is_armed() {
            return SpanGuard(None);
        }
        SpanGuard(Some(ActiveSpan { layer, name, attrs: attrs.to_vec(), start: Instant::now() }))
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            let micros = a.start.elapsed().as_secs_f64() * 1e6;
            record_span(a.layer, a.name, a.attrs, micros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The collector is process-global; serialize the tests that own it.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn guard() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_records_nothing() {
        let _g = guard();
        reset();
        disarm();
        add_counter("x", 5);
        record_event(Event::RoundEnd { round: 0, sim_time_s: 1.0 });
        {
            let _s = SpanGuard::begin("t", "op", &[]);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn armed_counts_are_exact() {
        let _g = guard();
        arm();
        for _ in 0..7 {
            add_counter("c", 2);
        }
        {
            let _s = SpanGuard::begin("t", "op", &[("k", 1.0)]);
        }
        {
            let _s = SpanGuard::begin("t", "op", &[]);
        }
        assert_eq!(counter_value("c"), 14);
        assert_eq!(span_count("t", "op"), 2);
        let events = drain();
        disarm();
        let spans: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::Span { .. }))
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::SpanStat { count: 2, .. }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::Counter { value: 14, .. }
        )));
        // Nothing dropped, so no Dropped record.
        assert!(!events.iter().any(|e| matches!(e, Event::Dropped { .. })));
    }

    #[test]
    fn counter_saturates() {
        let _g = guard();
        arm();
        add_counter("sat", u64::MAX - 1);
        add_counter("sat", 10);
        assert_eq!(counter_value("sat"), u64::MAX);
        reset();
        disarm();
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let _g = guard();
        arm();
        record_histogram("h", 5e-7); // bucket 0
        record_histogram("h", 0.5); // <= 1.0 → bucket 6
        record_histogram("h", 1e9); // overflow bucket
        let events = drain();
        disarm();
        let hist = events
            .iter()
            .find_map(|e| match e {
                Event::Histogram { counts, .. } => Some(counts.clone()),
                _ => None,
            })
            .expect("histogram present");
        assert_eq!(hist[0], 1);
        assert_eq!(hist[6], 1);
        assert_eq!(hist[HISTOGRAM_BOUNDS.len()], 1);
    }

    #[test]
    fn arm_resets_previous_state() {
        let _g = guard();
        arm();
        add_counter("stale", 1);
        arm();
        assert_eq!(counter_value("stale"), 0);
        reset();
        disarm();
    }
}
