//! Property-based tests of the tensor algebra.

use fedprox_tensor::{activations, vecops, Matrix};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_identity_left_right(a in matrix(4, 6)) {
        let il = Matrix::identity(4);
        let ir = Matrix::identity(6);
        prop_assert_eq!(il.matmul(&a), a.clone());
        prop_assert_eq!(a.matmul(&ir), a);
    }

    #[test]
    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let mut bc = b.clone();
        bc.axpy(1.0, &c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.axpy(1.0, &a.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_reverses_matmul(a in matrix(3, 5), b in matrix(5, 2)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn dot_cauchy_schwarz(a in proptest::collection::vec(-50.0f64..50.0, 8),
                          b in proptest::collection::vec(-50.0f64..50.0, 8)) {
        let d = vecops::dot(&a, &b).abs();
        prop_assert!(d <= vecops::norm(&a) * vecops::norm(&b) + 1e-9);
    }

    #[test]
    fn triangle_inequality(a in proptest::collection::vec(-50.0f64..50.0, 8),
                           b in proptest::collection::vec(-50.0f64..50.0, 8)) {
        let mut sum = vec![0.0; 8];
        vecops::add_into(&a, &b, &mut sum);
        prop_assert!(vecops::norm(&sum) <= vecops::norm(&a) + vecops::norm(&b) + 1e-9);
    }

    #[test]
    fn softmax_is_probability_vector(logits in proptest::collection::vec(-30.0f64..30.0, 1..12)) {
        let mut p = logits.clone();
        activations::softmax_inplace(&mut p);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Order-preserving.
        for i in 0..logits.len() {
            for j in 0..logits.len() {
                if logits[i] > logits[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn cross_entropy_nonnegative(logits in proptest::collection::vec(-20.0f64..20.0, 2..10),
                                 pick in any::<prop::sample::Index>()) {
        let target = pick.index(logits.len());
        let ce = activations::cross_entropy_from_logits(&logits, target);
        prop_assert!(ce >= -1e-12);
    }

    #[test]
    fn lerp_between_endpoints(a in proptest::collection::vec(-5.0f64..5.0, 4),
                              b in proptest::collection::vec(-5.0f64..5.0, 4),
                              t in 0.0f64..1.0) {
        let mut out = vec![0.0; 4];
        vecops::lerp_into(&a, &b, t, &mut out);
        for i in 0..4 {
            let lo = a[i].min(b[i]);
            let hi = a[i].max(b[i]);
            prop_assert!(out[i] >= lo - 1e-12 && out[i] <= hi + 1e-12);
        }
    }
}
