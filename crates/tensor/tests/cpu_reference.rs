//! The kernel-layer differential suite: every tiled kernel must match
//! the scalar cpu-reference oracle **bitwise**, and the parallel
//! dispatch must match the sequential tiled kernel bitwise.
//!
//! This is the gate behind the tiled matmul/conv rewrite — the blocked
//! kernels are only allowed to exist because these sweeps prove they
//! are observationally identical to the naive loops on every shape
//! class that matters: degenerate 1×N / N×1, sizes straddling the
//! micro-kernel tile (MR±1, NR±1), sizes straddling the cache blocks
//! (MC±1, KC±1), non-square, and strided / padded convolutions,
//! forward *and* backward.
//!
//! The kernel selector is process-global, so every test takes a shared
//! mutex before switching kernels.

use fedprox_tensor::conv::{conv2d_backward, conv2d_forward, Conv2dSpec, ConvScratch};
use fedprox_tensor::kernel::{with_kernel, Kernel};
use fedprox_tensor::matrix::{matmul_into, matmul_nt_into, matmul_tn_into};
use fedprox_tensor::Matrix;
use std::sync::Mutex;

/// Serializes kernel-selector switches across this binary's tests.
static KERNEL_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    KERNEL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Deterministic xorshift stream; distinct seeds give distinct data.
fn stream(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_vec(rows, cols, stream(seed, rows * cols))
}

fn assert_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{ctx}: bit mismatch at flat index {i}: {g:?} vs {w:?}"
        );
    }
}

/// The (m, k, n) sweep: degenerate vectors, micro-tile straddles around
/// MR = 4 and NR = 8, cache-block straddles around MC = 64 and KC = 256,
/// and assorted non-square shapes.
fn gemm_dims() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 5, 9),    // 1×N row vector times matrix
        (9, 5, 1),    // matrix times N×1 column vector
        (3, 7, 7),    // MR−1 rows, NR−1 cols
        (5, 6, 9),    // MR+1 rows, NR+1 cols
        (4, 4, 8),    // exact micro-tile
        (63, 33, 65), // MC±1 rows
        (65, 40, 63),
        (31, 255, 17), // KC−1 depth
        (18, 257, 34), // KC+1 depth
        (64, 64, 64),  // exact cache-block corner
        (12, 300, 20), // deep non-square
    ]
}

#[test]
fn matmul_all_variants_match_reference_bitwise_across_shape_sweep() {
    let _g = lock();
    for (m, k, n) in gemm_dims() {
        let seed = (m * 1000 + k * 10 + n) as u64;
        // Operands for each transposition convention.
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 0xAA);
        let at = rand_matrix(k, m, seed ^ 0xBB); // matmul_tn: aᵀ·b with a stored k×m
        let bt = rand_matrix(n, k, seed ^ 0xCC); // matmul_nt: a·bᵀ with b stored n×k

        let run = |kern: Kernel| {
            with_kernel(kern, || {
                let mut nn = Matrix::zeros(m, n);
                matmul_into(&a, &b, &mut nn);
                let mut tn = Matrix::zeros(m, n);
                matmul_tn_into(&at, &b, &mut tn);
                let mut nt = Matrix::zeros(m, n);
                matmul_nt_into(&a, &bt, &mut nt);
                (nn, tn, nt)
            })
        };

        let (r_nn, r_tn, r_nt) = run(Kernel::Reference);
        let (t_nn, t_tn, t_nt) = run(Kernel::Tiled);
        let (p_nn, p_tn, p_nt) = run(Kernel::TiledParallel);

        let ctx = format!("m={m} k={k} n={n}");
        assert_bits_eq(t_nn.as_slice(), r_nn.as_slice(), &format!("matmul tiled {ctx}"));
        assert_bits_eq(t_tn.as_slice(), r_tn.as_slice(), &format!("matmul_tn tiled {ctx}"));
        assert_bits_eq(t_nt.as_slice(), r_nt.as_slice(), &format!("matmul_nt tiled {ctx}"));
        // Parallel must equal sequential tiled (and hence the reference).
        assert_bits_eq(p_nn.as_slice(), t_nn.as_slice(), &format!("matmul par {ctx}"));
        assert_bits_eq(p_tn.as_slice(), t_tn.as_slice(), &format!("matmul_tn par {ctx}"));
        assert_bits_eq(p_nt.as_slice(), t_nt.as_slice(), &format!("matmul_nt par {ctx}"));
    }
}

#[test]
fn matvec_and_matvec_t_match_reference_bitwise_across_shape_sweep() {
    let _g = lock();
    // (m, k) straddles the 4-row register block, the 64-row parallel
    // chunk, and the matvec_t 2048-column block.
    for (m, k) in [
        (1, 1),
        (1, 9),
        (9, 1),
        (3, 5),
        (5, 3),
        (4, 8),
        (63, 31),
        (65, 33),
        (64, 64),
        (200, 257),
        (130, 2049),
        (70, 1025), // m·k past the parallel threshold with ragged tails
    ] {
        let seed = (m * 10_000 + k) as u64;
        let a = rand_matrix(m, k, seed);
        let x = stream(seed ^ 0x11, k);
        let xt = stream(seed ^ 0x22, m);

        let run = |kern: Kernel| {
            with_kernel(kern, || (a.matvec(&x), a.matvec_t(&xt)))
        };
        let (r_mv, r_mvt) = run(Kernel::Reference);
        let (t_mv, t_mvt) = run(Kernel::Tiled);
        let (p_mv, p_mvt) = run(Kernel::TiledParallel);

        let ctx = format!("m={m} k={k}");
        assert_bits_eq(&t_mv, &r_mv, &format!("matvec tiled {ctx}"));
        assert_bits_eq(&t_mvt, &r_mvt, &format!("matvec_t tiled {ctx}"));
        assert_bits_eq(&p_mv, &t_mv, &format!("matvec par {ctx}"));
        assert_bits_eq(&p_mvt, &t_mvt, &format!("matvec_t par {ctx}"));
    }
}

/// Conv shape sweep: stride 1 and > 1, with and without padding,
/// multi-channel, non-square, and a receptive field straddling the
/// micro-tile width.
fn conv_specs() -> Vec<Conv2dSpec> {
    vec![
        Conv2dSpec::same(1, 1, 3, 4, 4),
        Conv2dSpec::same(2, 3, 3, 5, 8),
        Conv2dSpec::same(1, 8, 5, 12, 12),
        Conv2dSpec::same(1, 2, 3, 9, 9).with_stride(2),
        Conv2dSpec { in_ch: 2, out_ch: 2, kernel: 3, height: 7, width: 6, pad: 1, stride: 2 },
        Conv2dSpec { in_ch: 1, out_ch: 2, kernel: 2, height: 8, width: 11, pad: 0, stride: 3 },
        Conv2dSpec { in_ch: 3, out_ch: 5, kernel: 3, height: 6, width: 7, pad: 2, stride: 1 },
    ]
}

#[test]
fn conv_forward_matches_reference_bitwise_across_spec_sweep() {
    let _g = lock();
    for (si, spec) in conv_specs().iter().enumerate() {
        let seed = 0xC0DE + si as u64;
        let input = stream(seed, spec.input_len());
        let weight = stream(seed ^ 0x1, spec.weight_len());
        let bias = stream(seed ^ 0x2, spec.out_ch);

        let run = |kern: Kernel| {
            with_kernel(kern, || {
                let mut out = vec![0.0; spec.output_len()];
                let mut scratch = ConvScratch::new(spec);
                conv2d_forward(spec, &input, &weight, &bias, &mut out, &mut scratch);
                out
            })
        };
        let reference = run(Kernel::Reference);
        let tiled = run(Kernel::Tiled);
        let par = run(Kernel::TiledParallel);
        assert_bits_eq(&tiled, &reference, &format!("conv fwd tiled {spec:?}"));
        assert_bits_eq(&par, &tiled, &format!("conv fwd par {spec:?}"));
    }
}

#[test]
fn conv_backward_matches_reference_bitwise_across_spec_sweep() {
    let _g = lock();
    for (si, spec) in conv_specs().iter().enumerate() {
        let seed = 0xBADA + si as u64;
        let input = stream(seed, spec.input_len());
        let weight = stream(seed ^ 0x3, spec.weight_len());
        let grad_output = stream(seed ^ 0x4, spec.output_len());

        let run = |kern: Kernel| {
            with_kernel(kern, || {
                // Non-zero initial gw/gb exercise the accumulate (+=) path.
                let mut gw = stream(seed ^ 0x5, spec.weight_len());
                let mut gb = stream(seed ^ 0x6, spec.out_ch);
                let mut gi = vec![0.0; spec.input_len()];
                let mut scratch = ConvScratch::new(spec);
                conv2d_backward(
                    spec, &input, &grad_output, &weight, &mut gw, &mut gb, &mut gi, &mut scratch,
                );
                (gw, gb, gi)
            })
        };
        let (r_gw, r_gb, r_gi) = run(Kernel::Reference);
        let (t_gw, t_gb, t_gi) = run(Kernel::Tiled);
        let (p_gw, p_gb, p_gi) = run(Kernel::TiledParallel);

        assert_bits_eq(&t_gw, &r_gw, &format!("conv bwd gw tiled {spec:?}"));
        assert_bits_eq(&t_gb, &r_gb, &format!("conv bwd gb tiled {spec:?}"));
        assert_bits_eq(&t_gi, &r_gi, &format!("conv bwd gi tiled {spec:?}"));
        assert_bits_eq(&p_gw, &t_gw, &format!("conv bwd gw par {spec:?}"));
        assert_bits_eq(&p_gb, &t_gb, &format!("conv bwd gb par {spec:?}"));
        assert_bits_eq(&p_gi, &t_gi, &format!("conv bwd gi par {spec:?}"));
    }
}

#[test]
fn repeated_calls_through_one_scratch_stay_reference_identical() {
    // The fused path's thread-local pack buffers and the ConvScratch tap
    // tables persist across calls; later calls must not be perturbed by
    // earlier state. Interleave shapes through shared scratches and
    // compare against fresh reference runs each time.
    let _g = lock();
    let specs = conv_specs();
    let mut scratches: Vec<ConvScratch> = specs.iter().map(ConvScratch::new).collect();
    for round in 0..3u64 {
        for (si, spec) in specs.iter().enumerate() {
            let seed = 0x5EED_0000 + round * 64 + si as u64;
            let input = stream(seed, spec.input_len());
            let weight = stream(seed ^ 0x7, spec.weight_len());
            let bias = stream(seed ^ 0x8, spec.out_ch);

            let reference = with_kernel(Kernel::Reference, || {
                let mut out = vec![0.0; spec.output_len()];
                let mut fresh = ConvScratch::new(spec);
                conv2d_forward(spec, &input, &weight, &bias, &mut out, &mut fresh);
                out
            });
            let tiled = with_kernel(Kernel::TiledParallel, || {
                let mut out = vec![0.0; spec.output_len()];
                conv2d_forward(spec, &input, &weight, &bias, &mut out, &mut scratches[si]);
                out
            });
            assert_bits_eq(&tiled, &reference, &format!("round {round} spec {si} reuse"));
        }
    }
}
