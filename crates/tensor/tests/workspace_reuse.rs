//! Differential tests for scratch-buffer reuse in the convolution kernels.
//!
//! The hot-path entry points ([`conv2d_forward`] / [`conv2d_backward`])
//! thread a caller-held [`ConvScratch`] through every call; the allocation
//! pass relies on one scratch being reused across many samples and many
//! steps. These tests pin down the contract that reuse must be
//! *observationally invisible*: a scratch that has already been through
//! arbitrary other calls produces bitwise-identical results to freshly
//! allocated buffers, across square, non-square, multi-channel and
//! stride > 1 shapes.

use fedprox_tensor::conv::{
    col2im, conv2d_backward, conv2d_forward, conv2d_forward_alloc, im2col, Conv2dSpec,
    ConvScratch,
};
use fedprox_tensor::Matrix;

/// Deterministic xorshift stream so every shape gets distinct, reproducible
/// data without pulling in an RNG crate.
fn stream(seed: u64, n: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

/// The shape matrix the reuse contract is checked over: square stride-1,
/// non-square, multi-channel, and stride-2 variants (both exact and floor
/// output divisions).
fn shapes() -> Vec<Conv2dSpec> {
    vec![
        Conv2dSpec::same(1, 2, 3, 6, 6),
        // Non-square input, multi-channel.
        Conv2dSpec::same(2, 3, 3, 5, 8),
        // Stride 2, square.
        Conv2dSpec::same(1, 2, 3, 9, 9).with_stride(2),
        // Stride 2, non-square, floor division in one dimension.
        Conv2dSpec { in_ch: 2, out_ch: 2, kernel: 3, height: 7, width: 6, pad: 1, stride: 2 },
        // Stride 3, no padding.
        Conv2dSpec { in_ch: 1, out_ch: 2, kernel: 2, height: 8, width: 11, pad: 0, stride: 3 },
    ]
}

#[test]
fn forward_with_reused_scratch_is_bitwise_identical_to_alloc_path() {
    for (si, spec) in shapes().iter().enumerate() {
        let mut scratch = ConvScratch::new(spec);
        // Drive several distinct samples through the SAME scratch; each must
        // match a from-scratch allocation exactly.
        for sample in 0..4u64 {
            let seed = 0xA11C_0000 + (si as u64) * 16 + sample;
            let input = stream(seed, spec.input_len());
            let weight = stream(seed ^ 0xBEEF, spec.weight_len());
            let bias = stream(seed ^ 0xCAFE, spec.out_ch);
            let reference = conv2d_forward_alloc(spec, &input, &weight, &bias);
            // Reused output buffer starts dirty on purpose.
            let mut output = vec![f64::NAN; spec.output_len()];
            conv2d_forward(spec, &input, &weight, &bias, &mut output, &mut scratch);
            assert_eq!(
                output, reference,
                "forward mismatch: shape #{si} ({spec:?}), sample {sample}"
            );
        }
    }
}

#[test]
fn backward_with_reused_scratch_is_bitwise_identical_to_fresh_scratch() {
    for (si, spec) in shapes().iter().enumerate() {
        // `reused` accumulates history across samples; `fresh` is rebuilt
        // per sample. Gradients must agree bitwise either way.
        let mut reused = ConvScratch::new(spec);
        for sample in 0..3u64 {
            let seed = 0xB0B0_0000 + (si as u64) * 16 + sample;
            let input = stream(seed, spec.input_len());
            let weight = stream(seed ^ 0x1234, spec.weight_len());
            let bias = stream(seed ^ 0x5678, spec.out_ch);
            let grad_output = stream(seed ^ 0x9ABC, spec.output_len());

            let run = |scratch: &mut ConvScratch| {
                let mut output = vec![0.0; spec.output_len()];
                conv2d_forward(spec, &input, &weight, &bias, &mut output, scratch);
                let mut gw = vec![0.0; spec.weight_len()];
                let mut gb = vec![0.0; spec.out_ch];
                let mut gi = vec![0.0; spec.input_len()];
                conv2d_backward(
                    spec, &input, &grad_output, &weight, &mut gw, &mut gb, &mut gi, scratch,
                );
                (output, gw, gb, gi)
            };

            let mut fresh = ConvScratch::new(spec);
            let expected = run(&mut fresh);
            let got = run(&mut reused);
            assert_eq!(got, expected, "backward mismatch: shape #{si} ({spec:?}), sample {sample}");
        }
    }
}

#[test]
fn im2col_overwrites_every_scratch_cell() {
    // im2col must fully overwrite `cols` — a partially-written scratch
    // would silently leak the previous sample into the matmul. Poison the
    // buffer and check nothing survives.
    for spec in shapes() {
        let input = stream(0xF00D, spec.input_len());
        let mut clean = Matrix::zeros(spec.col_rows(), spec.col_cols());
        im2col(&spec, &input, &mut clean);
        let poison: Vec<f64> = vec![1e300; spec.col_rows() * spec.col_cols()];
        let mut dirty = Matrix::from_vec(spec.col_rows(), spec.col_cols(), poison);
        im2col(&spec, &input, &mut dirty);
        assert_eq!(dirty.as_slice(), clean.as_slice(), "stale im2col cell leaked: {spec:?}");
    }
}

#[test]
fn strided_im2col_col2im_stay_adjoint() {
    // <im2col(x), C> == <x, col2im(C)> must survive the stride
    // generalisation — the backward pass depends on exact adjointness.
    for spec in shapes() {
        let x = stream(0xAD01, spec.input_len());
        let mut cols = Matrix::zeros(spec.col_rows(), spec.col_cols());
        im2col(&spec, &x, &mut cols);
        let c_data: Vec<f64> =
            (0..spec.col_rows() * spec.col_cols()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let c = Matrix::from_vec(spec.col_rows(), spec.col_cols(), c_data);
        let lhs: f64 = cols.as_slice().iter().zip(c.as_slice()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0; spec.input_len()];
        col2im(&spec, &c, &mut back);
        let rhs: f64 = x.iter().zip(&back).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9, "adjoint broken for {spec:?}: {lhs} vs {rhs}");
    }
}
