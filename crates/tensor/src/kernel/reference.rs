//! Scalar cpu-reference kernels: the oracles the tiled kernels must
//! match **bitwise**.
//!
//! These are deliberately the simplest possible loops — one scalar
//! accumulator per output element, k strictly increasing, no blocking,
//! no skipping, no parallelism. The determinism contract of the whole
//! kernel layer is stated against them: for every entry point, `Tiled`
//! and `TiledParallel` must produce the same bits as these functions
//! (enforced by `crates/tensor/tests/cpu_reference.rs`). That works
//! because the tiled kernels also accumulate each output element in
//! strictly increasing k order with a single f64 chain, and Rust does
//! not contract `a * b + c` into fma, so the rounding sequence is
//! identical even though the loop nests differ.

use super::layout::GemmSource;

/// Naive i-j-k GEMM: `c[i, j] (+)= Σ_p a[i, p] · b[p, j]` with one
/// scalar accumulator per element. When `accumulate` is false the
/// element starts from 0, otherwise from the existing `c` value.
pub fn gemm_ref<A: GemmSource, B: GemmSource>(
    a: &A,
    b: &B,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    accumulate: bool,
) {
    debug_assert_eq!(a.src_rows(), m);
    debug_assert_eq!(a.src_cols(), k);
    debug_assert_eq!(b.src_rows(), k);
    debug_assert_eq!(b.src_cols(), n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        for j in 0..n {
            let mut s = if accumulate { c[i * n + j] } else { 0.0 };
            for p in 0..k {
                s += a.at(i, p) * b.at(p, j);
            }
            c[i * n + j] = s;
        }
    }
}

/// Naive matrix-vector product: `out[r] = Σ_k a[r, k] · x[k]`, one
/// sequential chain per row (the same rounding sequence as
/// `vecops::dot` on the row).
pub fn matvec_ref(a: &[f64], m: usize, k: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(out.len(), m);
    for (r, o) in out.iter_mut().enumerate() {
        let row = &a[r * k..(r + 1) * k];
        let mut s = 0.0;
        for (av, xv) in row.iter().zip(x) {
            s += av * xv;
        }
        *o = s;
    }
}

/// Naive transposed matrix-vector product: `out[j] = Σ_r a[r, j] · x[r]`
/// without materialising the transpose; the r-sweep keeps each output
/// element's additions in increasing r order.
pub fn matvec_t_ref(a: &[f64], m: usize, k: usize, x: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(out.len(), k);
    out.fill(0.0);
    for (r, &xr) in x.iter().enumerate() {
        let row = &a[r * k..(r + 1) * k];
        for (o, &av) in out.iter_mut().zip(row) {
            *o += xr * av;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::layout::MatRef;
    use super::*;

    #[test]
    fn gemm_ref_2x2_by_hand() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm_ref(&MatRef::new(&a, 2, 2), &MatRef::new(&b, 2, 2), &mut c, 2, 2, 2, false);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
        // accumulate = true adds on top.
        gemm_ref(&MatRef::new(&a, 2, 2), &MatRef::new(&b, 2, 2), &mut c, 2, 2, 2, true);
        assert_eq!(c, [38.0, 44.0, 86.0, 100.0]);
    }

    #[test]
    fn matvec_refs_match_each_other_through_transpose() {
        let a: Vec<f64> = (0..12).map(|v| v as f64 * 0.25 - 1.0).collect();
        let x3 = [1.0, -2.0, 0.5];
        let x4 = [0.5, 1.5, -1.0, 2.0];
        let mut fwd = [0.0; 4];
        matvec_ref(&a, 4, 3, &x3, &mut fwd);
        // aᵀ as an explicit matrix, multiplied the forward way.
        let mut at = vec![0.0; 12];
        for r in 0..4 {
            for c in 0..3 {
                at[c * 4 + r] = a[r * 3 + c];
            }
        }
        let mut t_fwd = [0.0; 3];
        matvec_ref(&at, 3, 4, &x4, &mut t_fwd);
        let mut t = [0.0; 3];
        matvec_t_ref(&a, 4, 3, &x4, &mut t);
        for (g, w) in t.iter().zip(&t_fwd) {
            assert!((g - w).abs() < 1e-12);
        }
        assert!(fwd.iter().all(|v| v.is_finite()));
    }
}
