//! Operand layouts and panel packing for the blocked GEMM kernels.
//!
//! The tiled kernels never walk an operand's natural storage in the hot
//! loop. Instead each (KC × NC) block of B and (MC × KC) block of A is
//! packed into contiguous k-major *panels* sized for the register
//! micro-kernel ([`MR`] × [`NR`]), so the innermost loop streams both
//! operands with unit stride regardless of how the source is stored —
//! row-major, transposed, or a virtual im2col view that never
//! materialises (see `kernel::conv`).
//!
//! Edge tiles are zero-padded during packing: a panel always holds a
//! whole number of MR (or NR) lanes, and the micro-kernel masks the
//! store instead of branching per element. Padding lanes multiply into
//! accumulator slots that are never written back, so they cannot
//! perturb results.

/// Rows of the register micro-kernel (accumulator tile height). 8×8
/// gives the FMA units eight independent accumulator chains per column
/// lane — enough to hide the FMA latency — while the tile (64 doubles)
/// still fits the vector register file of every AVX-class target.
pub const MR: usize = 8;

/// Columns of the register micro-kernel (accumulator tile width).
pub const NR: usize = 8;

/// Cache-blocking parameters for the tiled GEMM: C is swept in
/// `mc`-row bands, the k dimension in `kc` slices, and B in `nc`-column
/// blocks (the BLIS loop nest). The defaults suit the workloads in this
/// repo (operands ≤ a few MB, f64); `fedperf` ships a tile-size sweep
/// bench to re-measure them on new hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Blocking {
    /// Row-band height of C processed per A-pack (L2-resident).
    pub mc: usize,
    /// Depth of one packed k-slice (shared by the A and B panels).
    pub kc: usize,
    /// Column width of one packed B block.
    pub nc: usize,
}

impl Blocking {
    /// Blocking with explicit tile sizes (all must be ≥ 1).
    pub const fn new(mc: usize, kc: usize, nc: usize) -> Self {
        assert!(mc >= 1 && kc >= 1 && nc >= 1, "Blocking: tile sizes must be >= 1");
        Blocking { mc, kc, nc }
    }

    /// Doubles of packed-panel budget for [`Blocking::for_shape`]
    /// (256 KiB — comfortably L2-resident on every target we run on).
    const PACK_BUDGET: usize = 32 * 1024;

    /// Blocking adapted to one GEMM shape: when a whole dimension's
    /// packed panels fit [`Self::PACK_BUDGET`], the block grows to
    /// cover it in one piece. A single k slice keeps every C element
    /// on the store-only fast path (no tile reload between slices),
    /// and a single B block avoids re-packing A per column block —
    /// both dominate at the skinny shapes conv lowers to. Blocking
    /// never changes results (each C element's accumulation chain
    /// stays in k order regardless), so this is purely a perf choice.
    pub fn for_shape(m: usize, n: usize, k: usize) -> Self {
        let d = Blocking::default();
        let kc = if m.saturating_mul(k) <= Self::PACK_BUDGET { k.max(1) } else { d.kc };
        let kb = kc.min(k.max(1));
        let nc = if kb.saturating_mul(n) <= Self::PACK_BUDGET { n.max(1) } else { d.nc };
        Blocking { mc: d.mc, kc, nc }
    }
}

impl Default for Blocking {
    fn default() -> Self {
        Blocking { mc: 64, kc: 256, nc: 256 }
    }
}

/// A read-only GEMM operand: anything that can answer "element (i, j)"
/// for a logical `rows × cols` matrix. Implemented by [`MatRef`] (dense,
/// optionally transposed) and by the conv module's virtual im2col view.
///
/// `at` must be cheap and pure — it is called once per element during
/// packing, never from the micro-kernel.
pub trait GemmSource: Sync {
    /// Logical row count.
    fn src_rows(&self) -> usize;
    /// Logical column count.
    fn src_cols(&self) -> usize;
    /// Element at logical position `(i, j)`.
    fn at(&self, i: usize, j: usize) -> f64;

    /// Write `lane[j] = at(row, j0 + j)`. [`pack_b`] reads the source
    /// one row lane at a time through this hook, so implementations can
    /// hoist per-row work (strides, tap tables) out of the element loop
    /// or substitute a contiguous copy. Must write exactly what `at`
    /// would return.
    #[inline]
    fn fill_row(&self, row: usize, j0: usize, lane: &mut [f64]) {
        for (j, slot) in lane.iter_mut().enumerate() {
            *slot = self.at(row, j0 + j);
        }
    }

    /// Write `lane[i] = at(i0 + i, col)` — the column-lane counterpart
    /// of [`GemmSource::fill_row`], used by [`pack_a`].
    #[inline]
    fn fill_col(&self, col: usize, i0: usize, lane: &mut [f64]) {
        for (i, slot) in lane.iter_mut().enumerate() {
            *slot = self.at(i0 + i, col);
        }
    }

    /// Row `(row, j0 .. j0 + len)` as a borrowed contiguous slice, when
    /// the source stores logical rows contiguously. The packers use this
    /// to copy straight from storage with no per-lane call overhead.
    ///
    /// Contract: a source must answer uniformly — `Some` for every
    /// in-bounds request or `None` for all of them — because the packers
    /// probe once and then assume the answer holds for the whole block.
    #[inline]
    fn row_slice(&self, _row: usize, _j0: usize, _len: usize) -> Option<&[f64]> {
        None
    }
}

/// Dense matrix view over a flat row-major buffer, with strides so a
/// transposed operand costs nothing to express (no copy, no transpose).
#[derive(Clone, Copy, Debug)]
pub struct MatRef<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    /// Storage stride between logical rows.
    rs: usize,
    /// Storage stride between logical columns.
    cs: usize,
}

impl<'a> MatRef<'a> {
    /// View `data` as a row-major `rows × cols` matrix.
    pub fn new(data: &'a [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatRef: buffer length mismatch");
        MatRef { data, rows, cols, rs: cols, cs: 1 }
    }

    /// View `data` (stored row-major as `cols × rows`) as its transpose:
    /// a logical `rows × cols` matrix with element `(i, j)` read from
    /// stored position `(j, i)`.
    pub fn transposed(data: &'a [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatRef::transposed: buffer length mismatch");
        MatRef { data, rows, cols, rs: 1, cs: rows }
    }
}

impl GemmSource for MatRef<'_> {
    #[inline]
    fn src_rows(&self) -> usize {
        self.rows
    }

    #[inline]
    fn src_cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.rs + j * self.cs]
    }

    #[inline]
    fn fill_row(&self, row: usize, j0: usize, lane: &mut [f64]) {
        let start = row * self.rs + j0 * self.cs;
        if self.cs == 1 {
            lane.copy_from_slice(&self.data[start..start + lane.len()]);
        } else {
            for (j, slot) in lane.iter_mut().enumerate() {
                *slot = self.data[start + j * self.cs];
            }
        }
    }

    #[inline]
    fn fill_col(&self, col: usize, i0: usize, lane: &mut [f64]) {
        let start = i0 * self.rs + col * self.cs;
        if self.rs == 1 {
            lane.copy_from_slice(&self.data[start..start + lane.len()]);
        } else {
            for (i, slot) in lane.iter_mut().enumerate() {
                *slot = self.data[start + i * self.rs];
            }
        }
    }

    #[inline]
    fn row_slice(&self, row: usize, j0: usize, len: usize) -> Option<&[f64]> {
        if self.cs == 1 {
            let start = row * self.rs + j0;
            Some(&self.data[start..start + len])
        } else {
            None
        }
    }
}

/// Pack the `mb × kb` block of `a` starting at `(i0, p0)` into k-major
/// MR-row panels: `buf[panel][k * MR + i]`. Rows past `mb` in the last
/// panel are zero.
///
/// Sources that expose contiguous rows ([`GemmSource::row_slice`]) are
/// transposed in MR-column strips — each strip's 64-double destination
/// block stays cache-resident across the row sweep, instead of paying
/// one `fill_col` call (strided gather) per packed k.
pub fn pack_a<S: GemmSource>(
    a: &S,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    buf: &mut Vec<f64>,
) {
    let panels = mb.div_ceil(MR);
    let needed = panels * kb * MR;
    // Grow-only: slack beyond `needed` (left by a larger earlier block)
    // is never read, so no per-call memset of the whole buffer.
    if buf.len() < needed {
        buf.resize(needed, 0.0);
    }
    let dense_rows = a.row_slice(i0, p0, kb).is_some();
    for panel in 0..panels {
        let ibase = i0 + panel * MR;
        let rows = MR.min(mb - panel * MR);
        let dst = &mut buf[panel * kb * MR..(panel + 1) * kb * MR];
        if rows < MR {
            // Ragged tail: the dead lanes feed accumulator rows that are
            // never stored back, but zeroing them keeps panel contents
            // deterministic (and cheap — at most one panel per pack).
            dst.fill(0.0);
        }
        if dense_rows {
            for kblk in (0..kb).step_by(MR) {
                let kw = MR.min(kb - kblk);
                for i in 0..rows {
                    if let Some(row) = a.row_slice(ibase + i, p0 + kblk, kw) {
                        for (kk, &v) in row.iter().enumerate() {
                            dst[(kblk + kk) * MR + i] = v;
                        }
                    }
                }
            }
        } else {
            for k in 0..kb {
                a.fill_col(p0 + k, ibase, &mut dst[k * MR..k * MR + rows]);
            }
        }
    }
}

/// Pack the `kb × nb` block of `b` starting at `(p0, j0)` into k-major
/// NR-column panels: `buf[panel][k * NR + j]`. Columns past `nb` in the
/// last panel are zero.
///
/// The walk is row-outer: each source row is materialised once — as a
/// borrowed [`GemmSource::row_slice`] when storage allows, otherwise via
/// a single full-width `fill_row` into scratch space at the tail of
/// `buf` — and then split across the panels. Virtual sources (the conv
/// im2col views) thus run their per-row window setup once per row, not
/// once per panel lane.
pub fn pack_b<S: GemmSource>(
    b: &S,
    p0: usize,
    kb: usize,
    j0: usize,
    nb: usize,
    buf: &mut Vec<f64>,
) {
    let panels = nb.div_ceil(NR);
    let needed = panels * kb * NR;
    let dense_rows = b.row_slice(p0, j0, nb).is_some();
    let total = if dense_rows { needed } else { needed + nb };
    // Grow-only; see pack_a for the padding rationale.
    if buf.len() < total {
        buf.resize(total, 0.0);
    }
    let (dst, scratch) = buf.split_at_mut(needed);
    if !nb.is_multiple_of(NR) {
        dst[(panels - 1) * kb * NR..panels * kb * NR].fill(0.0);
    }
    for k in 0..kb {
        let row: &[f64] = match b.row_slice(p0 + k, j0, nb) {
            Some(r) => r,
            None => {
                let s = &mut scratch[..nb];
                b.fill_row(p0 + k, j0, s);
                s
            }
        };
        for panel in 0..panels {
            let cols = NR.min(nb - panel * NR);
            let off = panel * kb * NR + k * NR;
            dst[off..off + cols].copy_from_slice(&row[panel * NR..panel * NR + cols]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matref_transposed_reads_the_transpose() {
        // Stored 2x3 row-major; viewed as its 3x2 transpose.
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let t = MatRef::transposed(&data, 3, 2);
        assert_eq!((t.src_rows(), t.src_cols()), (3, 2));
        assert_eq!(t.at(0, 0), 1.0);
        assert_eq!(t.at(0, 1), 4.0);
        assert_eq!(t.at(2, 1), 6.0);
    }

    #[test]
    fn pack_a_zero_pads_the_ragged_panel() {
        // MR + 1 rows -> 2 panels; second panel has 1 real row.
        let rows = MR + 1;
        let cols = 3;
        let data: Vec<f64> = (0..rows * cols).map(|v| v as f64).collect();
        let a = MatRef::new(&data, rows, cols);
        let mut buf = Vec::new();
        pack_a(&a, 0, rows, 0, cols, &mut buf);
        assert_eq!(buf.len(), 2 * cols * MR);
        // Panel 0, k = 1, lane holds column 1 of rows 0..MR.
        let want: Vec<f64> = (0..MR).map(|i| (i * cols + 1) as f64).collect();
        assert_eq!(&buf[MR..2 * MR], &want[..]);
        // Panel 1, k = 0: the last row then zero padding.
        let mut want = [0.0; MR];
        want[0] = (MR * cols) as f64;
        assert_eq!(&buf[cols * MR..cols * MR + MR], &want[..]);
    }

    #[test]
    fn pack_b_zero_pads_the_ragged_panel() {
        // 2 x (NR + 2) block -> 2 panels; second panel has 2 real cols.
        let n = NR + 2;
        let data: Vec<f64> = (0..2 * n).map(|v| v as f64).collect();
        let b = MatRef::new(&data, 2, n);
        let mut buf = Vec::new();
        pack_b(&b, 0, 2, 0, n, &mut buf);
        assert_eq!(buf.len(), 2 * 2 * NR);
        // Panel 0, k = 0: columns 0..NR of row 0.
        let want: Vec<f64> = (0..NR).map(|v| v as f64).collect();
        assert_eq!(&buf[..NR], &want[..]);
        // Panel 1, k = 0: the 2 trailing columns of row 0, zero padded.
        let mut want = [0.0; NR];
        want[0] = NR as f64;
        want[1] = (NR + 1) as f64;
        assert_eq!(&buf[2 * NR..3 * NR], &want[..]);
    }
}
