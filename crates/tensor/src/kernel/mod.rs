//! Kernel layer: a runtime-selectable dispatch over the scalar
//! cpu-reference kernels and the cache-blocked tiled kernels.
//!
//! Every matmul / matvec / conv call site in the workspace routes
//! through this module's entry points, which check shapes (returning
//! [`ShapeError`] through the `try_*` variants), open the telemetry
//! span, dispatch on the active [`Kernel`], and run the numeric guard
//! on the output. The three kernels are **bitwise interchangeable** —
//! `Tiled` and `TiledParallel` must produce the same bits as
//! `Reference` (see `kernel::reference` for why, and
//! `tests/cpu_reference.rs` for the differential suite enforcing it) —
//! so switching the selector is observationally invisible to training
//! math and the global can be relaxed-atomic without a determinism
//! hazard.

pub mod layout;
pub mod reference;
pub mod tiled;

pub use layout::{Blocking, GemmSource, MatRef, MR, NR};

use crate::error::{ShapeError, TensorResult};
use crate::matrix::Matrix;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which kernel implementation services the tensor entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Naive scalar loops — the cpu-reference oracle.
    Reference,
    /// Cache-blocked register-tiled kernels, sequential.
    Tiled,
    /// Tiled kernels with rayon partitioned dispatch over disjoint
    /// row/column bands (reduction-free, bitwise equal to `Tiled`).
    TiledParallel,
}

impl Kernel {
    /// The selector's stable name — the `--kernel` CLI vocabulary and
    /// the string stamped into run ledgers and fedperf reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Reference => "reference",
            Kernel::Tiled => "tiled",
            Kernel::TiledParallel => "tiled-par",
        }
    }
}

/// Process-global kernel selector (default: [`Kernel::TiledParallel`]).
static ACTIVE: AtomicU8 = AtomicU8::new(2);

/// Select the kernel used by all subsequent tensor entry points.
pub fn set_kernel(k: Kernel) {
    let v = match k {
        Kernel::Reference => 0,
        Kernel::Tiled => 1,
        Kernel::TiledParallel => 2,
    };
    ACTIVE.store(v, Ordering::Relaxed);
}

/// The currently selected kernel.
pub fn active() -> Kernel {
    match ACTIVE.load(Ordering::Relaxed) {
        0 => Kernel::Reference,
        1 => Kernel::Tiled,
        _ => Kernel::TiledParallel,
    }
}

/// Run `f` with `k` selected, restoring the previous selection after
/// (also on panic). The selector is process-global, so concurrent tests
/// switching kernels should serialize; a race is still *correct* (all
/// kernels produce identical bits) — it only blurs which implementation
/// ran.
pub fn with_kernel<T>(k: Kernel, f: impl FnOnce() -> T) -> T {
    struct Restore(Kernel);
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(self.0);
        }
    }
    let _restore = Restore(active());
    set_kernel(k);
    f()
}

/// Dispatch one GEMM over the active kernel.
fn gemm_dispatch<A: GemmSource, B: GemmSource>(
    a: &A,
    b: &B,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    accumulate: bool,
) {
    match active() {
        Kernel::Reference => reference::gemm_ref(a, b, c, m, n, k, accumulate),
        Kernel::Tiled => tiled::gemm(a, b, c, m, n, k, accumulate, Blocking::for_shape(m, n, k), false),
        Kernel::TiledParallel => {
            tiled::gemm(a, b, c, m, n, k, accumulate, Blocking::for_shape(m, n, k), true)
        }
    }
}

/// `out ← a · b` through the active kernel; [`ShapeError`] when the
/// inner dimensions disagree. `out` must be preallocated to
/// `(a.rows, b.cols)`.
pub fn try_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> TensorResult<()> {
    if a.cols() != b.rows() {
        return Err(ShapeError { op: "matmul", lhs: a.shape(), rhs: b.shape() });
    }
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul: out shape mismatch");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    fedprox_telemetry::span!("tensor", "matmul", "m" => m, "k" => k, "n" => n);
    let ar = MatRef::new(a.as_slice(), m, k);
    let br = MatRef::new(b.as_slice(), k, n);
    gemm_dispatch(&ar, &br, out.as_mut_slice(), m, n, k, false);
    crate::guard::check_finite("matmul", out.as_slice());
    Ok(())
}

/// `out ← aᵀ · b` (without materialising `aᵀ`) through the active
/// kernel; [`ShapeError`] when the inner dimensions disagree.
pub fn try_matmul_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> TensorResult<()> {
    if a.rows() != b.rows() {
        return Err(ShapeError { op: "matmul_tn", lhs: a.shape(), rhs: b.shape() });
    }
    assert_eq!(out.shape(), (a.cols(), b.cols()), "matmul_tn: out shape mismatch");
    let (m, n, k) = (a.cols(), b.cols(), a.rows());
    fedprox_telemetry::span!("tensor", "matmul_tn", "m" => m, "k" => k, "n" => n);
    let ar = MatRef::transposed(a.as_slice(), m, k);
    let br = MatRef::new(b.as_slice(), k, n);
    gemm_dispatch(&ar, &br, out.as_mut_slice(), m, n, k, false);
    crate::guard::check_finite("matmul_tn", out.as_slice());
    Ok(())
}

/// `out ← a · bᵀ` (without materialising `bᵀ`) through the active
/// kernel; [`ShapeError`] when the inner dimensions disagree.
pub fn try_matmul_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) -> TensorResult<()> {
    if a.cols() != b.cols() {
        return Err(ShapeError { op: "matmul_nt", lhs: a.shape(), rhs: b.shape() });
    }
    assert_eq!(out.shape(), (a.rows(), b.rows()), "matmul_nt: out shape mismatch");
    let (m, n, k) = (a.rows(), b.rows(), a.cols());
    fedprox_telemetry::span!("tensor", "matmul_nt", "m" => m, "k" => k, "n" => n);
    let ar = MatRef::new(a.as_slice(), m, k);
    let br = MatRef::transposed(b.as_slice(), k, n);
    gemm_dispatch(&ar, &br, out.as_mut_slice(), m, n, k, false);
    crate::guard::check_finite("matmul_nt", out.as_slice());
    Ok(())
}

/// `out ← a · x` for a flat row-major `m × k` weight slice;
/// [`ShapeError`] when `x` or `a` disagree with `(m, k)`.
pub fn try_matvec_into(
    a: &[f64],
    m: usize,
    k: usize,
    x: &[f64],
    out: &mut [f64],
) -> TensorResult<()> {
    if a.len() != m * k || x.len() != k {
        return Err(ShapeError { op: "matvec", lhs: (m, k), rhs: (x.len(), 1) });
    }
    assert_eq!(out.len(), m, "matvec: out length mismatch");
    fedprox_telemetry::span!("tensor", "matvec", "m" => m, "k" => k);
    match active() {
        Kernel::Reference => reference::matvec_ref(a, m, k, x, out),
        Kernel::Tiled => tiled::matvec(a, m, k, x, out, false),
        Kernel::TiledParallel => tiled::matvec(a, m, k, x, out, true),
    }
    crate::guard::check_finite("matvec", out);
    Ok(())
}

/// `out ← aᵀ · x` for a flat row-major `m × k` weight slice;
/// [`ShapeError`] when `x` or `a` disagree with `(m, k)`.
pub fn try_matvec_t_into(
    a: &[f64],
    m: usize,
    k: usize,
    x: &[f64],
    out: &mut [f64],
) -> TensorResult<()> {
    if a.len() != m * k || x.len() != m {
        return Err(ShapeError { op: "matvec_t", lhs: (m, k), rhs: (x.len(), 1) });
    }
    assert_eq!(out.len(), k, "matvec_t: out length mismatch");
    fedprox_telemetry::span!("tensor", "matvec_t", "m" => m, "k" => k);
    match active() {
        Kernel::Reference => reference::matvec_t_ref(a, m, k, x, out),
        Kernel::Tiled => tiled::matvec_t(a, m, k, x, out, false),
        Kernel::TiledParallel => tiled::matvec_t(a, m, k, x, out, true),
    }
    crate::guard::check_finite("matvec_t", out);
    Ok(())
}

/// Infallible wrapper over [`try_matvec_into`] for call sites whose
/// shapes are statically correct (model forward passes).
pub fn matvec_into(a: &[f64], m: usize, k: usize, x: &[f64], out: &mut [f64]) {
    let r = try_matvec_into(a, m, k, x, out);
    assert!(r.is_ok(), "matvec shape mismatch: {r:?}");
}

/// Infallible wrapper over [`try_matvec_t_into`] for call sites whose
/// shapes are statically correct (model backward passes).
pub fn matvec_t_into(a: &[f64], m: usize, k: usize, x: &[f64], out: &mut [f64]) {
    let r = try_matvec_t_into(a, m, k, x, out);
    assert!(r.is_ok(), "matvec_t shape mismatch: {r:?}");
}

/// Tiled matmul with explicit [`Blocking`] — the probe behind fedperf's
/// tile-size sweep benches. Bypasses the selector (it measures the
/// tiled kernel specifically); results are bitwise identical for every
/// valid blocking, so the sweep isolates pure cache effects.
pub fn matmul_into_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix, bl: Blocking) {
    assert_eq!(a.cols(), b.rows(), "matmul_into_blocked: inner dim mismatch");
    assert_eq!(out.shape(), (a.rows(), b.cols()), "matmul_into_blocked: out shape mismatch");
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let ar = MatRef::new(a.as_slice(), m, k);
    let br = MatRef::new(b.as_slice(), k, n);
    tiled::gemm(&ar, &br, out.as_mut_slice(), m, n, k, false, bl, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_roundtrip_and_scoped_restore() {
        let before = active();
        with_kernel(Kernel::Reference, || {
            assert_eq!(active(), Kernel::Reference);
            with_kernel(Kernel::Tiled, || assert_eq!(active(), Kernel::Tiled));
            assert_eq!(active(), Kernel::Reference);
        });
        assert_eq!(active(), before);
    }

    #[test]
    fn try_matvec_reports_shape_errors() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let mut out = [0.0; 2];
        let err = try_matvec_into(&a, 2, 2, &[1.0, 2.0, 3.0], &mut out).unwrap_err();
        assert_eq!(err.op, "matvec");
        let err = try_matvec_t_into(&a, 2, 2, &[1.0], &mut out).unwrap_err();
        assert_eq!(err.op, "matvec_t");
    }

    #[test]
    fn blocked_matmul_is_blocking_invariant_bitwise() {
        let a = Matrix::from_vec(5, 7, (0..35).map(|v| (v as f64 * 0.37).sin()).collect());
        let b = Matrix::from_vec(7, 6, (0..42).map(|v| (v as f64 * 0.61).cos()).collect());
        let mut base = Matrix::zeros(5, 6);
        matmul_into_blocked(&a, &b, &mut base, Blocking::default());
        for bl in [Blocking::new(1, 1, 1), Blocking::new(2, 3, 4), Blocking::new(64, 64, 64)] {
            let mut out = Matrix::zeros(5, 6);
            matmul_into_blocked(&a, &b, &mut out, bl);
            let same = out
                .as_slice()
                .iter()
                .zip(base.as_slice())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "blocking {bl:?} changed bits");
        }
    }
}
