//! Cache-blocked, register-tiled kernels.
//!
//! The GEMM follows the BLIS loop nest: B is packed per (KC × NC)
//! block, A per (MC × KC) band, and an MR × NR register micro-kernel
//! sweeps the packed panels. The bitwise-determinism contract with the
//! scalar reference (see `kernel::reference`) holds because every
//! output element is accumulated by a single f64 chain in strictly
//! increasing k order: the first KC slice starts each tile from
//! literal zeros and overwrites C (IEEE `0.0 + x` makes that bitwise
//! the chain's first step), every later slice loads C back into the
//! accumulator tile, adds its products in k order, and stores — exactly
//! the rounding sequence of the naive i-j-k loop, just interleaved
//! across the tile.
//!
//! Parallel mode partitions C into disjoint MC row bands and dispatches
//! them over rayon. There is no reduction at all — each band owns its
//! output rows outright — so the parallel result is bitwise identical
//! to sequential *by construction*, not by tolerance. (The vendored
//! rayon shim executes sequentially anyway; the invariant is what keeps
//! the strict path reproducible if a real thread pool is dropped in.)
//!
//! Packing buffers live in thread-locals so steady-state calls allocate
//! nothing (the fedperf alloc columns gate on this).

use super::layout::{pack_a, pack_b, Blocking, GemmSource, MR, NR};
use rayon::prelude::*;
use std::cell::RefCell;

/// Minimum output elements before the row-band dispatch fans out to
/// rayon; below this the pool overhead dominates.
const GEMM_PAR_THRESHOLD: usize = 64 * 64;

/// Row chunk handed to each rayon task by the parallel matvec.
const MATVEC_PAR_ROWS: usize = 64;

/// Minimum `m * k` before matvec fans out.
const MATVEC_PAR_THRESHOLD: usize = 64 * 1024;

/// Column block width for the transposed matvec (keeps the streamed
/// output slice cache-resident across the row sweep).
const MATVEC_T_BLOCK: usize = 2048;

thread_local! {
    static PACK_A_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
    static PACK_B_BUF: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Register micro-kernel over the leading `W ≤ NR` tile columns:
/// `tile[i][j] += Σ_p ap[p, i] · bp[p, j]` for one packed KC slice.
/// `tile` holds the C tile for the duration, so each element's
/// additions stay a single chain in increasing p order.
///
/// Shape notes that keep this on the fast path: `chunks_exact` gives
/// the optimiser compile-time lane lengths (no bounds checks in the
/// p loop), and the constant-bound i/j loops over a nested array let
/// it promote the whole accumulator tile into vector registers. `W` is
/// const so narrow edge panels don't pay for the columns they drop: a
/// 1-wide panel at `W = NR` would spend 8× the FMAs it keeps.
#[inline(always)]
fn micro_kernel_w<const W: usize>(kb: usize, ap: &[f64], bp: &[f64], tile: &mut [[f64; NR]; MR]) {
    debug_assert!(W <= NR && ap.len() == kb * MR && bp.len() == kb * NR);
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for i in 0..MR {
            let a = av[i];
            for j in 0..W {
                tile[i][j] += a * bv[j];
            }
        }
    }
}

/// Full-width micro-kernel (the common case).
#[inline(always)]
fn micro_kernel(kb: usize, ap: &[f64], bp: &[f64], tile: &mut [[f64; NR]; MR]) {
    micro_kernel_w::<NR>(kb, ap, bp, tile);
}

/// Narrow-panel micro-kernel dispatch: rounds `nr` up to the next
/// {1, 2, 4, 8} width so dead columns cost at most 2× (they feed tile
/// slots the caller never stores).
#[inline(always)]
fn micro_kernel_narrow(nr: usize, kb: usize, ap: &[f64], bp: &[f64], tile: &mut [[f64; NR]; MR]) {
    match nr {
        1 => micro_kernel_w::<1>(kb, ap, bp, tile),
        2 => micro_kernel_w::<2>(kb, ap, bp, tile),
        3 | 4 => micro_kernel_w::<4>(kb, ap, bp, tile),
        _ => micro_kernel_w::<NR>(kb, ap, bp, tile),
    }
}

/// One full MR × NR tile of C against packed panels. `first_slice`
/// means C holds no prior partial sums for this block (first KC slice,
/// not accumulating): the tile then starts from literal zeros and
/// *overwrites* C — bitwise identical to loading the zeros (IEEE
/// `0.0 + x` reproduces the naive chain's first step exactly) but with
/// no tile load at all. Later slices load C by value (`try_into` keeps
/// the length compile-time, so the tile stays in registers).
#[inline(always)]
fn tile_full(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
    cband: &mut [f64],
    base0: usize,
    ldc: usize,
    first_slice: bool,
) {
    let mut tile = if first_slice {
        [[0.0f64; NR]; MR]
    } else {
        std::array::from_fn(|i| {
            let base = base0 + i * ldc;
            match <[f64; NR]>::try_from(&cband[base..base + NR]) {
                Ok(row) => row,
                Err(_) => unreachable!("slice length is exactly NR"),
            }
        })
    };
    micro_kernel(kb, ap, bp, &mut tile);
    for (i, row) in tile.iter().enumerate() {
        let base = base0 + i * ldc;
        cband[base..base + NR].copy_from_slice(row);
    }
}

/// An edge tile (`mr < MR` and/or `nr < NR`): same contract as
/// [`tile_full`] with runtime lane lengths.
#[allow(clippy::too_many_arguments)]
fn tile_edge(
    kb: usize,
    ap: &[f64],
    bp: &[f64],
    cband: &mut [f64],
    base0: usize,
    ldc: usize,
    mr: usize,
    nr: usize,
    first_slice: bool,
) {
    let mut tile = [[0.0f64; NR]; MR];
    if !first_slice {
        for (i, row) in tile.iter_mut().enumerate().take(mr) {
            let base = base0 + i * ldc;
            row[..nr].copy_from_slice(&cband[base..base + nr]);
        }
    }
    micro_kernel_narrow(nr, kb, ap, bp, &mut tile);
    for (i, row) in tile.iter().enumerate().take(mr) {
        let base = base0 + i * ldc;
        cband[base..base + nr].copy_from_slice(&row[..nr]);
    }
}

/// One MC row band of C against the packed B block: packs the band of
/// A (thread-local) and runs the micro-kernel over every register tile.
/// `cband` is the band's full-width rows (`mb × ldc`); the block's
/// columns start at `jc`. With `first_slice` set, every tile overwrites
/// its C elements (see [`tile_full`]), which is what lets the caller
/// skip zero-filling C up front.
#[allow(clippy::too_many_arguments)]
fn macro_kernel<A: GemmSource>(
    a: &A,
    ic: usize,
    mb: usize,
    pc: usize,
    kb: usize,
    jc: usize,
    nb: usize,
    bp: &[f64],
    cband: &mut [f64],
    ldc: usize,
    first_slice: bool,
) {
    PACK_A_BUF.with(|buf| {
        let ap = &mut *buf.borrow_mut();
        pack_a(a, ic, mb, pc, kb, ap);
        for jr in (0..nb).step_by(NR) {
            let nr = NR.min(nb - jr);
            let bpanel = &bp[(jr / NR) * kb * NR..(jr / NR + 1) * kb * NR];
            for ir in (0..mb).step_by(MR) {
                let mr = MR.min(mb - ir);
                let apanel = &ap[(ir / MR) * kb * MR..(ir / MR + 1) * kb * MR];
                let base0 = ir * ldc + jc + jr;
                if mr == MR && nr == NR {
                    tile_full(kb, apanel, bpanel, cband, base0, ldc, first_slice);
                } else {
                    tile_edge(kb, apanel, bpanel, cband, base0, ldc, mr, nr, first_slice);
                }
            }
        }
    });
}

/// Blocked GEMM: `c (+)= a · b` for any pair of [`GemmSource`]
/// operands. `c` is `m × n` row-major; when `accumulate` is false it is
/// zeroed first (the micro-kernel then *loads* the zeros, which is
/// bitwise the same as starting each chain at 0.0).
#[allow(clippy::too_many_arguments)]
pub fn gemm<A: GemmSource, B: GemmSource>(
    a: &A,
    b: &B,
    c: &mut [f64],
    m: usize,
    n: usize,
    k: usize,
    accumulate: bool,
    bl: Blocking,
    parallel: bool,
) {
    debug_assert_eq!(a.src_rows(), m);
    debug_assert_eq!(a.src_cols(), k);
    debug_assert_eq!(b.src_rows(), k);
    debug_assert_eq!(b.src_cols(), n);
    assert_eq!(c.len(), m * n, "gemm: output length mismatch");
    if m == 0 || n == 0 || k == 0 {
        // Nothing to accumulate; honour the overwrite contract.
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    // No up-front zero fill when overwriting: the first KC slice's tiles
    // write every C element via the store-only path (see tile_full).
    let fan_out = parallel && m > bl.mc && m * n >= GEMM_PAR_THRESHOLD;
    for jc in (0..n).step_by(bl.nc) {
        let nb = bl.nc.min(n - jc);
        for pc in (0..k).step_by(bl.kc) {
            let kb = bl.kc.min(k - pc);
            let first_slice = pc == 0 && !accumulate;
            PACK_B_BUF.with(|buf| {
                let bp = &mut *buf.borrow_mut();
                pack_b(b, pc, kb, jc, nb, bp);
                if fan_out {
                    c.par_chunks_mut(bl.mc * n).enumerate().for_each(|(band, cband)| {
                        let ic = band * bl.mc;
                        let mb = bl.mc.min(m - ic);
                        macro_kernel(a, ic, mb, pc, kb, jc, nb, bp, cband, n, first_slice);
                    });
                } else {
                    for (band, cband) in c.chunks_mut(bl.mc * n).enumerate() {
                        let ic = band * bl.mc;
                        let mb = bl.mc.min(m - ic);
                        macro_kernel(a, ic, mb, pc, kb, jc, nb, bp, cband, n, first_slice);
                    }
                }
            });
        }
    }
}

/// Rows sharing one streamed pass over `x` in the blocked matvec
/// (independent of the GEMM tile height).
const MV_ROWS: usize = 4;

/// Row-blocked matvec: four rows share each streamed load of `x`, each
/// row keeping its own sequential accumulator chain (bitwise equal to a
/// per-row `vecops::dot`).
fn matvec_rows(a: &[f64], k: usize, r0: usize, out: &mut [f64], x: &[f64]) {
    let rows = out.len();
    let mut rb = 0;
    while rb + MV_ROWS <= rows {
        let base = (r0 + rb) * k;
        let row0 = &a[base..base + k];
        let row1 = &a[base + k..base + 2 * k];
        let row2 = &a[base + 2 * k..base + 3 * k];
        let row3 = &a[base + 3 * k..base + 4 * k];
        let mut s = [0.0f64; MV_ROWS];
        for (kk, &xv) in x.iter().enumerate() {
            s[0] += row0[kk] * xv;
            s[1] += row1[kk] * xv;
            s[2] += row2[kk] * xv;
            s[3] += row3[kk] * xv;
        }
        out[rb..rb + MV_ROWS].copy_from_slice(&s);
        rb += MV_ROWS;
    }
    for (i, o) in out.iter_mut().enumerate().skip(rb) {
        let row = &a[(r0 + i) * k..(r0 + i + 1) * k];
        let mut s = 0.0;
        for (av, xv) in row.iter().zip(x) {
            s += av * xv;
        }
        *o = s;
    }
}

/// Tiled matvec `out = a · x` (`a` is `m × k` row-major). Parallel mode
/// partitions the output rows into disjoint chunks — reduction-free, so
/// bitwise identical to sequential.
pub fn matvec(a: &[f64], m: usize, k: usize, x: &[f64], out: &mut [f64], parallel: bool) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), k);
    debug_assert_eq!(out.len(), m);
    if parallel && m * k >= MATVEC_PAR_THRESHOLD && m > MATVEC_PAR_ROWS {
        out.par_chunks_mut(MATVEC_PAR_ROWS).enumerate().for_each(|(band, chunk)| {
            matvec_rows(a, k, band * MATVEC_PAR_ROWS, chunk, x);
        });
    } else {
        matvec_rows(a, k, 0, out, x);
    }
}

/// One column block of the transposed matvec: sweeps all rows, so each
/// output element accumulates in increasing r order (the reference
/// order), while the written slice stays cache-resident.
fn matvec_t_block(a: &[f64], m: usize, k: usize, j0: usize, out_block: &mut [f64], x: &[f64]) {
    let width = out_block.len();
    for (r, &xr) in x.iter().enumerate().take(m) {
        let row = &a[r * k + j0..r * k + j0 + width];
        for (o, &av) in out_block.iter_mut().zip(row) {
            *o += xr * av;
        }
    }
}

/// Tiled transposed matvec `out = aᵀ · x`. Parallel mode partitions the
/// output columns into disjoint blocks — again reduction-free and
/// bitwise identical to sequential.
pub fn matvec_t(a: &[f64], m: usize, k: usize, x: &[f64], out: &mut [f64], parallel: bool) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(x.len(), m);
    debug_assert_eq!(out.len(), k);
    out.fill(0.0);
    if parallel && m * k >= MATVEC_PAR_THRESHOLD && k > MATVEC_T_BLOCK {
        out.par_chunks_mut(MATVEC_T_BLOCK).enumerate().for_each(|(band, block)| {
            matvec_t_block(a, m, k, band * MATVEC_T_BLOCK, block, x);
        });
    } else {
        for (band, block) in out.chunks_mut(MATVEC_T_BLOCK).enumerate() {
            matvec_t_block(a, m, k, band * MATVEC_T_BLOCK, block, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::layout::MatRef;
    use super::super::reference;
    use super::*;

    fn pseudo(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state as f64 / u64::MAX as f64) * 2.0 - 1.0
            })
            .collect()
    }

    /// The in-crate smoke check; the exhaustive sweep (boundary sizes,
    /// strides, parallel mode) lives in tests/cpu_reference.rs.
    #[test]
    fn gemm_matches_reference_bitwise_across_tile_edges() {
        for &(m, n, k) in &[(1, 1, 1), (4, 8, 16), (5, 9, 17), (13, 7, 3), (65, 33, 70)] {
            let a = pseudo(m * k, 3);
            let b = pseudo(k * n, 5);
            let ar = MatRef::new(&a, m, k);
            let br = MatRef::new(&b, k, n);
            let mut want = vec![0.0; m * n];
            reference::gemm_ref(&ar, &br, &mut want, m, n, k, false);
            let mut got = vec![0.0; m * n];
            let small = Blocking::new(8, 8, 16);
            gemm(&ar, &br, &mut got, m, n, k, false, small, false);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "({m},{n},{k})");
            }
        }
    }

    #[test]
    fn matvec_matches_reference_bitwise() {
        let (m, k) = (9, 13);
        let a = pseudo(m * k, 7);
        let x = pseudo(k, 8);
        let xt = pseudo(m, 9);
        let mut want = vec![0.0; m];
        reference::matvec_ref(&a, m, k, &x, &mut want);
        let mut got = vec![0.0; m];
        matvec(&a, m, k, &x, &mut got, false);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let mut want_t = vec![0.0; k];
        reference::matvec_t_ref(&a, m, k, &xt, &mut want_t);
        let mut got_t = vec![0.0; k];
        matvec_t(&a, m, k, &xt, &mut got_t, false);
        assert_eq!(
            got_t.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_t.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
