//! Dense linear-algebra and neural-network kernels for the FedProxVR
//! reproduction.
//!
//! The paper trains its models in TensorFlow; this crate is the from-scratch
//! numeric substrate that replaces it. It provides:
//!
//! * [`vecops`] — BLAS-level-1 style operations on `&[f64]` slices (dot,
//!   axpy, norms, …) with rayon-parallel variants for long vectors,
//! * [`kernel`] — the runtime-selectable kernel layer: scalar
//!   cpu-reference oracles and cache-blocked register-tiled GEMM /
//!   matvec kernels that match them bitwise,
//! * [`Matrix`] — a row-major dense matrix whose products dispatch
//!   through the kernel layer,
//! * [`conv`] — im2col-based 2-D convolution and max-pooling with full
//!   backward passes (enough to express the paper's two-layer CNN),
//! * [`activations`] — ReLU / softmax / log-softmax and their derivatives,
//! * [`init`] — seeded Xavier/He parameter initialisation.
//!
//! Everything is `f64`: the experiments compare convergence *curves*, and
//! curve fidelity matters more than the 2x throughput a switch to `f32`
//! would buy (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use fedprox_tensor::{Matrix, vecops};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! assert_eq!(vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
//! ```

#![warn(missing_docs)]

pub mod activations;
pub mod conv;
pub mod error;
pub mod guard;
pub mod init;
pub mod kernel;
pub mod matrix;
pub mod vecops;

pub use error::{ShapeError, TensorResult};
pub use matrix::Matrix;
