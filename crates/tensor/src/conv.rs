//! im2col-based 2-D convolution and max-pooling with backward passes.
//!
//! Layout convention: feature maps are flat `[channels, height, width]`
//! buffers in row-major order (`c * h * w + y * w + x`), matching what the
//! CNN model in `fedprox-models` stores per sample. Convolutions support an
//! arbitrary stride with symmetric zero padding; the paper's CNN uses the
//! stride-1 "same" configuration (two 5x5 convolutions each followed by
//! 2x2 max-pooling), built via [`Conv2dSpec::same`].
//!
//! Like the matmul entry points, the convolutions dispatch on the
//! kernel selector (see [`crate::kernel`]): the `Reference` kernel
//! materialises the im2col matrix and runs the naive GEMM over it,
//! while the tiled kernels run a *fused* im2col-GEMM — the packing
//! stage of the blocked GEMM reads receptive-field taps straight from
//! the input image through a virtual [`GemmSource`] view, so the
//! `col_rows × col_cols` column matrix (≈ 5 MB for the paper's second
//! conv layer) never exists on the fast path. Both paths accumulate
//! every output element in the same order, so they agree bitwise.

use crate::kernel::{self, Blocking, GemmSource, Kernel, MatRef};
use crate::matrix::Matrix;

/// Static description of a convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Square kernel edge length.
    pub kernel: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Symmetric zero padding on each side.
    pub pad: usize,
    /// Step between receptive-field origins (1 = dense convolution).
    pub stride: usize,
}

impl Conv2dSpec {
    /// A "same" convolution (output spatial size equals input, stride 1)
    /// for an odd kernel.
    pub fn same(in_ch: usize, out_ch: usize, kernel: usize, height: usize, width: usize) -> Self {
        assert!(!kernel.is_multiple_of(2), "same-padding requires an odd kernel");
        Conv2dSpec { in_ch, out_ch, kernel, height, width, pad: kernel / 2, stride: 1 }
    }

    /// Same spec with a different stride (builder style). Output spatial
    /// dims follow the usual floor formula `(h + 2p − k)/stride + 1`.
    pub fn with_stride(mut self, stride: usize) -> Self {
        assert!(stride >= 1, "conv stride must be >= 1");
        self.stride = stride;
        self
    }

    /// Output height.
    pub fn out_height(&self) -> usize {
        (self.height + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        (self.width + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Number of weight parameters (`out_ch * in_ch * k * k`).
    pub fn weight_len(&self) -> usize {
        self.out_ch * self.in_ch * self.kernel * self.kernel
    }

    /// Length of an input buffer.
    pub fn input_len(&self) -> usize {
        self.in_ch * self.height * self.width
    }

    /// Length of an output buffer.
    pub fn output_len(&self) -> usize {
        self.out_ch * self.out_height() * self.out_width()
    }

    /// Rows of the im2col matrix (= number of output pixels).
    pub fn col_rows(&self) -> usize {
        self.out_height() * self.out_width()
    }

    /// Columns of the im2col matrix (= receptive-field size).
    pub fn col_cols(&self) -> usize {
        self.in_ch * self.kernel * self.kernel
    }
}

/// Unfold `input` (`[in_ch, h, w]`) into the im2col matrix: one row per
/// `v` clamped into `[0, hi]` as an index — the shared lossy cast
/// behind every padding-window clamp in this module.
#[inline(always)]
fn clamp_idx(v: isize, hi: usize) -> usize {
    // fedlint: allow(lossy-cast) — the clamp proves the value is in [0, hi]
    v.clamp(0, hi as isize) as usize
}

/// `v` as an index, for call sites whose guards prove `v ≥ 0`.
#[inline(always)]
fn pos_idx(v: isize) -> usize {
    debug_assert!(v >= 0, "pos_idx: negative index {v}");
    // fedlint: allow(lossy-cast) — every caller guards v ≥ 0 (debug-asserted)
    v as usize
}

/// output pixel, one column per (channel, ky, kx) of the receptive field.
/// Out-of-bounds taps read zero.
pub fn im2col(spec: &Conv2dSpec, input: &[f64], cols: &mut Matrix) {
    assert_eq!(input.len(), spec.input_len(), "im2col: input length");
    assert_eq!(cols.shape(), (spec.col_rows(), spec.col_cols()), "im2col: cols shape");
    fedprox_telemetry::span!("tensor", "im2col", "rows" => spec.col_rows(), "cols" => spec.col_cols());
    let (oh, ow) = (spec.out_height(), spec.out_width());
    let (h, w, k, pad, s) = (spec.height, spec.width, spec.kernel, spec.pad, spec.stride);
    // One kernel row (fixed c, ky) taps k consecutive input cells, so
    // each row segment is a clamped contiguous copy with zero fill for
    // the padding overhang — same values as the per-tap loop, written
    // a window at a time.
    for oy in 0..oh {
        for ox in 0..ow {
            let row = cols.row_mut(oy * ow + ox);
            let y0 = (oy * s) as isize - pad as isize;
            let x0 = (ox * s) as isize - pad as isize;
            let lo = clamp_idx(-x0, k);
            let hi = clamp_idx(w as isize - x0, k);
            let mut idx = 0;
            for c in 0..spec.in_ch {
                let chan = &input[c * h * w..(c + 1) * h * w];
                for ky in 0..k {
                    let iy = y0 + ky as isize;
                    let seg = &mut row[idx..idx + k];
                    if iy < 0 || iy >= h as isize {
                        seg.fill(0.0);
                    } else {
                        seg[..lo].fill(0.0);
                        if lo < hi {
                            let src = pos_idx(iy) * w + pos_idx(x0 + lo as isize);
                            seg[lo..hi].copy_from_slice(&chan[src..src + (hi - lo)]);
                        }
                        seg[hi..].fill(0.0);
                    }
                    idx += k;
                }
            }
        }
    }
}

/// Fold an im2col-shaped gradient back onto the input (`col2im`),
/// accumulating overlapping taps. Inverse-adjoint of [`im2col`].
pub fn col2im(spec: &Conv2dSpec, cols: &Matrix, input_grad: &mut [f64]) {
    assert_eq!(input_grad.len(), spec.input_len(), "col2im: input length");
    assert_eq!(cols.shape(), (spec.col_rows(), spec.col_cols()), "col2im: cols shape");
    input_grad.fill(0.0);
    let (oh, ow) = (spec.out_height(), spec.out_width());
    let (h, w, k, pad, s) = (spec.height, spec.width, spec.kernel, spec.pad, spec.stride);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = cols.row(oy * ow + ox);
            let mut idx = 0;
            for c in 0..spec.in_ch {
                let base = c * h * w;
                for ky in 0..k {
                    let iy = (oy * s + ky) as isize - pad as isize;
                    for kx in 0..k {
                        let ix = (ox * s + kx) as isize - pad as isize;
                        if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                            input_grad[base + pos_idx(iy) * w + pos_idx(ix)] += row[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Scratch buffers reused across convolution calls to avoid per-sample
/// allocation in the training hot loop. All buffers are grown lazily on
/// first use and retained, so steady-state calls allocate nothing; the
/// materialised `cols` matrix is only ever populated by the `Reference`
/// kernel.
#[derive(Debug, Clone)]
pub struct ConvScratch {
    /// im2col matrix (reference path only).
    cols: Matrix,
    /// Column-gradient matrix (both backward paths).
    cols_grad: Matrix,
    /// Spec the tap tables below were built for.
    table_spec: Option<Conv2dSpec>,
    /// Receptive-field origin (y) per output pixel, pre-pad.
    pix_y: Vec<isize>,
    /// Receptive-field origin (x) per output pixel, pre-pad.
    pix_x: Vec<isize>,
    /// Channel base offset per im2col column.
    f_base: Vec<usize>,
    /// Vertical tap offset (ky − pad) per im2col column.
    f_dy: Vec<isize>,
    /// Horizontal tap offset (kx − pad) per im2col column.
    f_dx: Vec<isize>,
}

impl ConvScratch {
    /// Scratch for `spec`; buffers are grown on first use.
    pub fn new(spec: &Conv2dSpec) -> Self {
        let mut s = ConvScratch {
            cols: Matrix::zeros(0, 0),
            cols_grad: Matrix::zeros(0, 0),
            table_spec: None,
            pix_y: Vec::new(),
            pix_x: Vec::new(),
            f_base: Vec::new(),
            f_dy: Vec::new(),
            f_dx: Vec::new(),
        };
        s.prepare_tables(spec);
        s
    }

    /// (Re)build the pixel/field tap tables when the spec changed.
    fn prepare_tables(&mut self, spec: &Conv2dSpec) {
        if self.table_spec == Some(*spec) {
            return;
        }
        let (oh, ow) = (spec.out_height(), spec.out_width());
        let (k, pad, s) = (spec.kernel, spec.pad, spec.stride);
        self.pix_y.clear();
        self.pix_x.clear();
        for oy in 0..oh {
            for ox in 0..ow {
                self.pix_y.push((oy * s) as isize);
                self.pix_x.push((ox * s) as isize);
            }
        }
        self.f_base.clear();
        self.f_dy.clear();
        self.f_dx.clear();
        for c in 0..spec.in_ch {
            for ky in 0..k {
                for kx in 0..k {
                    self.f_base.push(c * spec.height * spec.width);
                    self.f_dy.push(ky as isize - pad as isize);
                    self.f_dx.push(kx as isize - pad as isize);
                }
            }
        }
        self.table_spec = Some(*spec);
    }

    /// The virtual im2col operand over `input` (tables must be built).
    fn im2col_view<'a>(&'a self, spec: &Conv2dSpec, input: &'a [f64], trans: bool) -> Im2colView<'a> {
        debug_assert_eq!(self.table_spec, Some(*spec));
        Im2colView {
            input,
            h: spec.height as isize,
            w: spec.width as isize,
            width: spec.width,
            pix_y: &self.pix_y,
            pix_x: &self.pix_x,
            f_base: &self.f_base,
            f_dy: &self.f_dy,
            f_dx: &self.f_dx,
            kw: spec.kernel,
            ow: spec.out_width(),
            stride: spec.stride,
            fields: spec.col_cols(),
            npix: spec.col_rows(),
            trans,
        }
    }
}

/// Virtual im2col matrix: answers GEMM packing reads with receptive-
/// field taps straight from the input image — the column matrix is
/// never materialised. Natural orientation is `col_cols × col_rows`
/// (one row per field, one column per output pixel); `trans` flips it.
struct Im2colView<'a> {
    input: &'a [f64],
    h: isize,
    w: isize,
    width: usize,
    pix_y: &'a [isize],
    pix_x: &'a [isize],
    f_base: &'a [usize],
    f_dy: &'a [isize],
    f_dx: &'a [isize],
    /// Kernel edge length — field index `f` taps column `f % kw` of its
    /// kernel row, which is what lets `fill_fields` split a lane into
    /// contiguous per-row runs.
    kw: usize,
    /// Output row width — pixel index `p` sits in output row `p / ow`,
    /// which is what lets `fill_pixels` split a lane into per-row runs.
    ow: usize,
    /// Conv stride: within one output row consecutive pixels tap input
    /// cells `stride` apart (contiguous copies when 1).
    stride: usize,
    fields: usize,
    npix: usize,
    trans: bool,
}

impl Im2colView<'_> {
    /// The im2col value at (field `f`, pixel `p`): the tapped input
    /// cell, or 0.0 when the tap lands in the zero padding. Bitwise
    /// identical to what [`im2col`] writes at `cols[p, f]`.
    #[inline]
    fn tap(&self, f: usize, p: usize) -> f64 {
        let iy = self.pix_y[p] + self.f_dy[f];
        let ix = self.pix_x[p] + self.f_dx[f];
        if iy >= 0 && iy < self.h && ix >= 0 && ix < self.w {
            self.input[self.f_base[f] + pos_idx(iy) * self.width + pos_idx(ix)]
        } else {
            0.0
        }
    }

    /// Packing lane in field-major orientation: one field `f`, pixels
    /// `p0 ..`. Hoists the field's tap offsets out of the pixel loop and
    /// walks the lane one output row at a time: within a row, pixel taps
    /// advance `stride` input cells, so at stride 1 each row segment is
    /// a clamped `copy_from_slice` with zero fill for the padding
    /// overhang — no per-element bounds branch at any lane width.
    #[inline]
    fn fill_pixels(&self, f: usize, p0: usize, lane: &mut [f64]) {
        let base = self.f_base[f];
        let dy = self.f_dy[f];
        let dx = self.f_dx[f];
        let len = lane.len();
        let mut j = 0;
        while j < len {
            let p = p0 + j;
            let run = (self.ow - p % self.ow).min(len - j);
            let iy = self.pix_y[p] + dy;
            if iy < 0 || iy >= self.h {
                lane[j..j + run].fill(0.0);
                j += run;
                continue;
            }
            let rowbase = base + pos_idx(iy) * self.width;
            let ix0 = self.pix_x[p] + dx;
            if self.stride == 1 {
                // Clamp the tap run [ix0, ix0 + run) to the image row.
                let lo = clamp_idx(-ix0, run);
                let hi = clamp_idx(self.w - ix0, run);
                lane[j..j + lo].fill(0.0);
                if lo < hi {
                    let src = rowbase + pos_idx(ix0 + lo as isize);
                    lane[j + lo..j + hi].copy_from_slice(&self.input[src..src + (hi - lo)]);
                }
                lane[j + hi..j + run].fill(0.0);
            } else {
                for (t, slot) in lane[j..j + run].iter_mut().enumerate() {
                    let ix = ix0 + (t * self.stride) as isize;
                    *slot = if ix >= 0 && ix < self.w {
                        self.input[rowbase + pos_idx(ix)]
                    } else {
                        0.0
                    };
                }
            }
            j += run;
        }
    }

    /// Packing lane in pixel-major orientation (the `trans` view): one
    /// pixel `p`, fields `f0 ..`. Hoists the pixel's origin, and walks
    /// the lane one kernel-row run at a time: consecutive fields within
    /// a run share (channel, ky) and tap consecutive input cells, so
    /// each run is a clamped contiguous copy.
    #[inline]
    fn fill_fields(&self, p: usize, f0: usize, lane: &mut [f64]) {
        let y0 = self.pix_y[p];
        let x0 = self.pix_x[p];
        let k = self.kw;
        let len = lane.len();
        let mut j = 0;
        while j < len {
            let f = f0 + j;
            let run = (k - (f % k)).min(len - j);
            let iy = y0 + self.f_dy[f];
            if iy < 0 || iy >= self.h {
                lane[j..j + run].fill(0.0);
            } else {
                let ix0 = x0 + self.f_dx[f];
                let lo = clamp_idx(-ix0, run);
                let hi = clamp_idx(self.w - ix0, run);
                lane[j..j + lo].fill(0.0);
                if lo < hi {
                    let src = self.f_base[f] + pos_idx(iy * self.w + ix0 + lo as isize);
                    lane[j + lo..j + hi].copy_from_slice(&self.input[src..src + (hi - lo)]);
                }
                lane[j + hi..j + run].fill(0.0);
            }
            j += run;
        }
    }
}

impl GemmSource for Im2colView<'_> {
    #[inline]
    fn src_rows(&self) -> usize {
        if self.trans {
            self.npix
        } else {
            self.fields
        }
    }

    #[inline]
    fn src_cols(&self) -> usize {
        if self.trans {
            self.fields
        } else {
            self.npix
        }
    }

    #[inline]
    fn at(&self, i: usize, j: usize) -> f64 {
        if self.trans {
            self.tap(j, i)
        } else {
            self.tap(i, j)
        }
    }

    #[inline]
    fn fill_row(&self, row: usize, j0: usize, lane: &mut [f64]) {
        if self.trans {
            self.fill_fields(row, j0, lane);
        } else {
            self.fill_pixels(row, j0, lane);
        }
    }

    #[inline]
    fn fill_col(&self, col: usize, i0: usize, lane: &mut [f64]) {
        if self.trans {
            self.fill_pixels(col, i0, lane);
        } else {
            self.fill_fields(col, i0, lane);
        }
    }
}

/// Forward convolution: `output[o, y, x] = Σ weight[o, ·]·cols[yx, ·] + bias[o]`.
///
/// `weight` is `[out_ch, in_ch*k*k]` flattened, `bias` has `out_ch`
/// entries, `output` is `[out_ch, oh, ow]` flattened. Dispatches on the
/// active kernel; all kernels produce bitwise-identical output.
pub fn conv2d_forward(
    spec: &Conv2dSpec,
    input: &[f64],
    weight: &[f64],
    bias: &[f64],
    output: &mut [f64],
    scratch: &mut ConvScratch,
) {
    assert_eq!(input.len(), spec.input_len(), "conv2d: input length");
    assert_eq!(weight.len(), spec.weight_len(), "conv2d: weight length");
    assert_eq!(bias.len(), spec.out_ch, "conv2d: bias length");
    assert_eq!(output.len(), spec.output_len(), "conv2d: output length");
    fedprox_telemetry::span!(
        "tensor", "conv2d_fwd",
        "out_ch" => spec.out_ch, "pix" => spec.col_rows(), "fields" => spec.col_cols(),
    );
    let npix = spec.col_rows();
    let fields = spec.col_cols();
    let wref = MatRef::new(weight, spec.out_ch, fields);
    match kernel::active() {
        Kernel::Reference => {
            scratch.cols.reshape_in_place(npix, fields);
            im2col(spec, input, &mut scratch.cols);
            // cols is stored pixel-major; view it transposed so the GEMM
            // reads `cols[p, f]` as its (f, p) operand element.
            let cview = MatRef::transposed(scratch.cols.as_slice(), fields, npix);
            kernel::reference::gemm_ref(&wref, &cview, output, spec.out_ch, npix, fields, false);
        }
        k => {
            scratch.prepare_tables(spec);
            let view = scratch.im2col_view(spec, input, false);
            kernel::tiled::gemm(
                &wref,
                &view,
                output,
                spec.out_ch,
                npix,
                fields,
                false,
                Blocking::for_shape(spec.out_ch, npix, fields),
                k == Kernel::TiledParallel,
            );
        }
    }
    for (o, &b) in bias.iter().enumerate() {
        for v in output[o * npix..(o + 1) * npix].iter_mut() {
            *v += b;
        }
    }
    crate::guard::check_finite("conv2d_forward", output);
}

/// Allocating convenience wrapper around [`conv2d_forward`]: builds fresh
/// scratch and output buffers on every call. The scratch-reusing entry
/// point is the hot-path API; this one serves one-off callers and is the
/// reference implementation the workspace-reuse differential tests compare
/// against.
pub fn conv2d_forward_alloc(
    spec: &Conv2dSpec,
    input: &[f64],
    weight: &[f64],
    bias: &[f64],
) -> Vec<f64> {
    let mut output = vec![0.0; spec.output_len()];
    let mut scratch = ConvScratch::new(spec);
    conv2d_forward(spec, input, weight, bias, &mut output, &mut scratch);
    output
}

/// Backward convolution. Given the forward `input` and `grad_output`
/// (`[out_ch, oh, ow]`), accumulates `grad_weight` / `grad_bias` (+=)
/// and writes `grad_input` (overwrite). Self-contained: the pass
/// re-derives every receptive-field tap from `input`, so it does not
/// depend on which kernel (if any) ran the forward pass.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    spec: &Conv2dSpec,
    input: &[f64],
    grad_output: &[f64],
    weight: &[f64],
    grad_weight: &mut [f64],
    grad_bias: &mut [f64],
    grad_input: &mut [f64],
    scratch: &mut ConvScratch,
) {
    let npix = spec.col_rows();
    fedprox_telemetry::span!(
        "tensor", "conv2d_bwd",
        "out_ch" => spec.out_ch, "pix" => npix, "fields" => spec.col_cols(),
    );
    assert_eq!(input.len(), spec.input_len(), "conv2d_backward: input");
    assert_eq!(grad_output.len(), spec.output_len(), "conv2d_backward: grad_output");
    assert_eq!(grad_weight.len(), spec.weight_len(), "conv2d_backward: grad_weight");
    assert_eq!(grad_bias.len(), spec.out_ch, "conv2d_backward: grad_bias");
    assert_eq!(grad_input.len(), spec.input_len(), "conv2d_backward: grad_input");

    // grad_bias[o] += Σ_p grad_output[o, p] — kernel-independent, so the
    // accumulation tree is shared by every path.
    for (o, gb) in grad_bias.iter_mut().enumerate() {
        for &g in &grad_output[o * npix..(o + 1) * npix] {
            *gb += g;
        }
    }

    let fields = spec.col_cols();
    let go_ref = MatRef::new(grad_output, spec.out_ch, npix);
    match kernel::active() {
        Kernel::Reference => {
            scratch.cols.reshape_in_place(npix, fields);
            im2col(spec, input, &mut scratch.cols);
            // grad_weight[o, f] += Σ_p grad_output[o, p] * cols[p, f]
            let cref = MatRef::new(scratch.cols.as_slice(), npix, fields);
            kernel::reference::gemm_ref(
                &go_ref,
                &cref,
                grad_weight,
                spec.out_ch,
                fields,
                npix,
                true,
            );
            // cols_grad[p, f] = Σ_o grad_output[o, p] * weight[o, f]
            scratch.cols_grad.reshape_in_place(npix, fields);
            let got = MatRef::transposed(grad_output, npix, spec.out_ch);
            let wref = MatRef::new(weight, spec.out_ch, fields);
            kernel::reference::gemm_ref(
                &got,
                &wref,
                scratch.cols_grad.as_mut_slice(),
                npix,
                fields,
                spec.out_ch,
                false,
            );
            col2im(spec, &scratch.cols_grad, grad_input);
        }
        k => {
            scratch.prepare_tables(spec);
            // grad_weight through the fused GEMM: B is the transposed
            // virtual im2col view, packed straight from the input.
            {
                let view = scratch.im2col_view(spec, input, true);
                kernel::tiled::gemm(
                    &go_ref,
                    &view,
                    grad_weight,
                    spec.out_ch,
                    fields,
                    npix,
                    true,
                    Blocking::for_shape(spec.out_ch, fields, npix),
                    k == Kernel::TiledParallel,
                );
            }
            // grad_input = col2im(goᵀ · W): the column gradient runs
            // through the tiled GEMM — bitwise equal to the reference
            // gemm by the kernel contract — and the scatter replays the
            // reference col2im adds as kernel-row windows: fields are
            // (c, ky, kx)-lexicographic, so one (c, ky) run taps
            // contiguous input cells, and clamping the kx window
            // replaces the per-field bounds branch while keeping every
            // add in the exact (p, f) order of col2im.
            scratch.cols_grad.reshape_in_place(npix, fields);
            let got = MatRef::transposed(grad_output, npix, spec.out_ch);
            let wref = MatRef::new(weight, spec.out_ch, fields);
            kernel::tiled::gemm(
                &got,
                &wref,
                scratch.cols_grad.as_mut_slice(),
                npix,
                fields,
                spec.out_ch,
                false,
                Blocking::for_shape(npix, fields, spec.out_ch),
                k == Kernel::TiledParallel,
            );
            grad_input.fill(0.0);
            let (h, w, kk) = (spec.height, spec.width, spec.kernel);
            let pad = spec.pad as isize;
            for p in 0..npix {
                let x0 = scratch.pix_x[p] - pad;
                let lo = clamp_idx(-x0, kk);
                let hi = clamp_idx(w as isize - x0, kk);
                let row = scratch.cols_grad.row(p);
                for c in 0..spec.in_ch {
                    let cbase = c * h * w;
                    for ky in 0..kk {
                        let iy = scratch.pix_y[p] + ky as isize - pad;
                        if iy < 0 || iy >= h as isize || lo >= hi {
                            continue;
                        }
                        let rbase = c * kk * kk + ky * kk;
                        let dst0 = cbase + pos_idx(iy) * w + pos_idx(x0 + lo as isize);
                        for (d, &v) in grad_input[dst0..dst0 + (hi - lo)]
                            .iter_mut()
                            .zip(&row[rbase + lo..rbase + hi])
                        {
                            *d += v;
                        }
                    }
                }
            }
        }
    }
}

/// Static description of a non-overlapping 2-D max-pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dSpec {
    /// Channels (pooling is per channel).
    pub channels: usize,
    /// Input height (must be divisible by `size`).
    pub height: usize,
    /// Input width (must be divisible by `size`).
    pub width: usize,
    /// Pool window edge (stride equals window: non-overlapping).
    pub size: usize,
}

impl Pool2dSpec {
    /// Output height.
    pub fn out_height(&self) -> usize {
        self.height / self.size
    }
    /// Output width.
    pub fn out_width(&self) -> usize {
        self.width / self.size
    }
    /// Input buffer length.
    pub fn input_len(&self) -> usize {
        self.channels * self.height * self.width
    }
    /// Output buffer length.
    pub fn output_len(&self) -> usize {
        self.channels * self.out_height() * self.out_width()
    }
}

/// Max-pool forward. Records the argmax index of each window in `argmax`
/// (same length as `output`) for the backward pass.
pub fn maxpool2d_forward(
    spec: &Pool2dSpec,
    input: &[f64],
    output: &mut [f64],
    argmax: &mut [usize],
) {
    assert!(spec.height.is_multiple_of(spec.size), "maxpool: height not divisible");
    assert!(spec.width.is_multiple_of(spec.size), "maxpool: width not divisible");
    assert_eq!(input.len(), spec.input_len());
    assert_eq!(output.len(), spec.output_len());
    assert_eq!(argmax.len(), spec.output_len());
    let (oh, ow, s, h, w) = (spec.out_height(), spec.out_width(), spec.size, spec.height, spec.width);
    for c in 0..spec.channels {
        let chan = &input[c * h * w..(c + 1) * h * w];
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f64::NEG_INFINITY;
                let mut best_idx = 0;
                for py in 0..s {
                    for px in 0..s {
                        let idx = (oy * s + py) * w + (ox * s + px);
                        if chan[idx] > best {
                            best = chan[idx];
                            best_idx = idx;
                        }
                    }
                }
                let o = c * oh * ow + oy * ow + ox;
                output[o] = best;
                argmax[o] = c * h * w + best_idx;
            }
        }
    }
}

/// Max-pool backward: routes each output gradient to its recorded argmax.
/// `grad_input` is overwritten.
pub fn maxpool2d_backward(
    spec: &Pool2dSpec,
    grad_output: &[f64],
    argmax: &[usize],
    grad_input: &mut [f64],
) {
    assert_eq!(grad_output.len(), spec.output_len());
    assert_eq!(argmax.len(), spec.output_len());
    assert_eq!(grad_input.len(), spec.input_len());
    grad_input.fill(0.0);
    for (g, &idx) in grad_output.iter().zip(argmax) {
        grad_input[idx] += g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_3x3() -> Conv2dSpec {
        Conv2dSpec::same(1, 1, 3, 4, 4)
    }

    #[test]
    fn same_spec_preserves_spatial_size() {
        let s = Conv2dSpec::same(3, 8, 5, 28, 28);
        assert_eq!(s.out_height(), 28);
        assert_eq!(s.out_width(), 28);
        assert_eq!(s.weight_len(), 8 * 3 * 25);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        let spec = spec_3x3();
        let input: Vec<f64> = (0..16).map(|i| i as f64).collect();
        // Kernel with 1 at the centre.
        let mut weight = vec![0.0; 9];
        weight[4] = 1.0;
        let bias = [0.0];
        let mut output = vec![0.0; 16];
        let mut scratch = ConvScratch::new(&spec);
        conv2d_forward(&spec, &input, &weight, &bias, &mut output, &mut scratch);
        assert_eq!(output, input);
    }

    #[test]
    fn bias_shifts_all_outputs() {
        let spec = spec_3x3();
        let input = vec![0.0; 16];
        let weight = vec![0.0; 9];
        let bias = [2.5];
        let mut output = vec![0.0; 16];
        let mut scratch = ConvScratch::new(&spec);
        conv2d_forward(&spec, &input, &weight, &bias, &mut output, &mut scratch);
        assert!(output.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn conv_matches_naive_direct_convolution() {
        let spec =
            Conv2dSpec { in_ch: 2, out_ch: 3, kernel: 3, height: 5, width: 6, pad: 1, stride: 1 };
        let mut rng_state = 12345u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) - 0.5
        };
        let input: Vec<f64> = (0..spec.input_len()).map(|_| next()).collect();
        let weight: Vec<f64> = (0..spec.weight_len()).map(|_| next()).collect();
        let bias: Vec<f64> = (0..spec.out_ch).map(|_| next()).collect();
        let mut output = vec![0.0; spec.output_len()];
        let mut scratch = ConvScratch::new(&spec);
        conv2d_forward(&spec, &input, &weight, &bias, &mut output, &mut scratch);

        // Naive direct convolution.
        let (h, w, k, p) = (spec.height, spec.width, spec.kernel, spec.pad as isize);
        for o in 0..spec.out_ch {
            for oy in 0..spec.out_height() {
                for ox in 0..spec.out_width() {
                    let mut s = bias[o];
                    for c in 0..spec.in_ch {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy as isize + ky as isize - p;
                                let ix = ox as isize + kx as isize - p;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    let wi = o * spec.in_ch * k * k + c * k * k + ky * k + kx;
                                    s += weight[wi] * input[c * h * w + iy as usize * w + ix as usize];
                                }
                            }
                        }
                    }
                    let got = output[o * spec.out_height() * spec.out_width()
                        + oy * spec.out_width()
                        + ox];
                    assert!((got - s).abs() < 1e-10, "mismatch at o={o} oy={oy} ox={ox}");
                }
            }
        }
    }

    #[test]
    fn with_stride_dims_follow_floor_formula() {
        let s = Conv2dSpec::same(1, 4, 3, 9, 9).with_stride(2);
        assert_eq!((s.out_height(), s.out_width()), (5, 5));
        // Non-exact division exercises the floor: (6-2)/2+1 = 3, (5-2)/2+1 = 2.
        let t = Conv2dSpec { in_ch: 1, out_ch: 1, kernel: 2, height: 6, width: 5, pad: 0, stride: 2 };
        assert_eq!((t.out_height(), t.out_width()), (3, 2));
    }

    #[test]
    fn strided_conv_matches_naive_direct_convolution() {
        let spec =
            Conv2dSpec { in_ch: 2, out_ch: 3, kernel: 3, height: 7, width: 6, pad: 1, stride: 2 };
        assert_eq!((spec.out_height(), spec.out_width()), (4, 3));
        let mut rng_state = 777u64;
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) - 0.5
        };
        let input: Vec<f64> = (0..spec.input_len()).map(|_| next()).collect();
        let weight: Vec<f64> = (0..spec.weight_len()).map(|_| next()).collect();
        let bias: Vec<f64> = (0..spec.out_ch).map(|_| next()).collect();
        let output = conv2d_forward_alloc(&spec, &input, &weight, &bias);

        let (h, w, k, p) = (spec.height, spec.width, spec.kernel, spec.pad as isize);
        for o in 0..spec.out_ch {
            for oy in 0..spec.out_height() {
                for ox in 0..spec.out_width() {
                    let mut s = bias[o];
                    for c in 0..spec.in_ch {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - p;
                                let ix = (ox * spec.stride + kx) as isize - p;
                                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                    let wi = o * spec.in_ch * k * k + c * k * k + ky * k + kx;
                                    s += weight[wi] * input[c * h * w + iy as usize * w + ix as usize];
                                }
                            }
                        }
                    }
                    let got = output[o * spec.out_height() * spec.out_width()
                        + oy * spec.out_width()
                        + ox];
                    assert!((got - s).abs() < 1e-10, "mismatch at o={o} oy={oy} ox={ox}");
                }
            }
        }
    }

    #[test]
    fn conv_backward_matches_finite_difference() {
        let spec =
            Conv2dSpec { in_ch: 1, out_ch: 2, kernel: 3, height: 4, width: 4, pad: 1, stride: 1 };
        let mut state = 999u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let input: Vec<f64> = (0..spec.input_len()).map(|_| next()).collect();
        let weight: Vec<f64> = (0..spec.weight_len()).map(|_| next()).collect();
        let bias: Vec<f64> = (0..spec.out_ch).map(|_| next()).collect();
        // Loss = sum of squares of conv output / 2.
        let loss = |input: &[f64], weight: &[f64], bias: &[f64]| -> f64 {
            let mut out = vec![0.0; spec.output_len()];
            let mut s = ConvScratch::new(&spec);
            conv2d_forward(&spec, input, weight, bias, &mut out, &mut s);
            out.iter().map(|v| v * v).sum::<f64>() / 2.0
        };
        let mut out = vec![0.0; spec.output_len()];
        let mut scratch = ConvScratch::new(&spec);
        conv2d_forward(&spec, &input, &weight, &bias, &mut out, &mut scratch);
        let grad_output = out.clone(); // d(½Σo²)/do = o
        let mut gw = vec![0.0; spec.weight_len()];
        let mut gb = vec![0.0; spec.out_ch];
        let mut gi = vec![0.0; spec.input_len()];
        conv2d_backward(
            &spec, &input, &grad_output, &weight, &mut gw, &mut gb, &mut gi, &mut scratch,
        );

        let h = 1e-6;
        for i in (0..spec.weight_len()).step_by(5) {
            let mut wp = weight.clone();
            let mut wm = weight.clone();
            wp[i] += h;
            wm[i] -= h;
            let fd = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * h);
            assert!((fd - gw[i]).abs() < 1e-4, "grad_weight[{i}]: fd={fd} an={}", gw[i]);
        }
        for i in 0..spec.out_ch {
            let mut bp = bias.clone();
            let mut bm = bias.clone();
            bp[i] += h;
            bm[i] -= h;
            let fd = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * h);
            assert!((fd - gb[i]).abs() < 1e-4, "grad_bias[{i}]");
        }
        for i in (0..spec.input_len()).step_by(3) {
            let mut ip = input.clone();
            let mut im = input.clone();
            ip[i] += h;
            im[i] -= h;
            let fd = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * h);
            assert!((fd - gi[i]).abs() < 1e-4, "grad_input[{i}]: fd={fd} an={}", gi[i]);
        }
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), C> == <x, col2im(C)> — the two operators are adjoint.
        let spec =
            Conv2dSpec { in_ch: 2, out_ch: 1, kernel: 3, height: 4, width: 5, pad: 1, stride: 1 };
        let x: Vec<f64> = (0..spec.input_len()).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut cols = Matrix::zeros(spec.col_rows(), spec.col_cols());
        im2col(&spec, &x, &mut cols);
        let c_data: Vec<f64> =
            (0..spec.col_rows() * spec.col_cols()).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let c = Matrix::from_vec(spec.col_rows(), spec.col_cols(), c_data);
        let lhs = crate::vecops::dot(cols.as_slice(), c.as_slice());
        let mut back = vec![0.0; spec.input_len()];
        col2im(&spec, &c, &mut back);
        let rhs = crate::vecops::dot(&x, &back);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn im2col_view_matches_materialised_cols_bitwise() {
        // The fused path's virtual operand must read exactly what
        // im2col writes, including padding zeros and stride > 1.
        for spec in [
            Conv2dSpec::same(2, 3, 3, 5, 6),
            Conv2dSpec::same(1, 2, 5, 7, 7).with_stride(2),
            Conv2dSpec { in_ch: 1, out_ch: 1, kernel: 2, height: 6, width: 5, pad: 0, stride: 3 },
        ] {
            let input: Vec<f64> =
                (0..spec.input_len()).map(|i| (i as f64 * 0.83).sin() - 0.2).collect();
            let mut cols = Matrix::zeros(spec.col_rows(), spec.col_cols());
            im2col(&spec, &input, &mut cols);
            let scratch = ConvScratch::new(&spec);
            let view = scratch.im2col_view(&spec, &input, false);
            let viewt = scratch.im2col_view(&spec, &input, true);
            for p in 0..spec.col_rows() {
                for f in 0..spec.col_cols() {
                    let want = cols.get(p, f).to_bits();
                    assert_eq!(view.at(f, p).to_bits(), want, "{spec:?} p={p} f={f}");
                    assert_eq!(viewt.at(p, f).to_bits(), want, "{spec:?} p={p} f={f} (t)");
                }
            }
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let spec = Pool2dSpec { channels: 1, height: 4, width: 4, size: 2 };
        #[rustfmt::skip]
        let input = vec![
            1.0, 2.0,   5.0, 6.0,
            3.0, 4.0,   8.0, 7.0,

            0.0, -1.0,  9.0, 1.0,
            -2.0, -3.0, 2.0, 3.0,
        ];
        let mut out = vec![0.0; 4];
        let mut arg = vec![0usize; 4];
        maxpool2d_forward(&spec, &input, &mut out, &mut arg);
        assert_eq!(out, vec![4.0, 8.0, 0.0, 9.0]);
        let go = vec![1.0, 2.0, 3.0, 4.0];
        let mut gi = vec![0.0; 16];
        maxpool2d_backward(&spec, &go, &arg, &mut gi);
        assert_eq!(gi[5], 1.0); // position of 4.0
        assert_eq!(gi[6], 2.0); // position of 8.0
        assert_eq!(gi[8], 3.0); // position of 0.0
        assert_eq!(gi[10], 4.0); // position of 9.0
        assert_eq!(gi.iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn maxpool_multichannel() {
        let spec = Pool2dSpec { channels: 2, height: 2, width: 2, size: 2 };
        let input = vec![1.0, 2.0, 3.0, 4.0, 8.0, 7.0, 6.0, 5.0];
        let mut out = vec![0.0; 2];
        let mut arg = vec![0usize; 2];
        maxpool2d_forward(&spec, &input, &mut out, &mut arg);
        assert_eq!(out, vec![4.0, 8.0]);
        assert_eq!(arg, vec![3, 4]);
    }
}
