//! BLAS-level-1 style vector operations on `&[f64]` slices.
//!
//! Model parameters in this workspace are flat `Vec<f64>` buffers, so the
//! optimizers (SVRG / SARAH / prox steps) are expressed entirely in terms of
//! these kernels. Sequential versions are used on short vectors; the `par_*`
//! variants switch to rayon for the long parameter vectors of the CNN
//! (~10^5 elements), chunked so each task does real work (see the rayon
//! guide's advice on task granularity).

use rayon::prelude::*;

/// Length above which the `par_*` kernels actually fan out to rayon.
/// Below this, thread-pool overhead dominates the memory-bound work.
pub const PAR_THRESHOLD: usize = 16 * 1024;

/// Chunk size for parallel kernels: large enough to amortise scheduling,
/// small enough to load-balance.
const PAR_CHUNK: usize = 4096;

#[inline]
fn assert_same_len(a: &[f64], b: &[f64], op: &str) {
    assert_eq!(a.len(), b.len(), "vecops::{op}: length mismatch {} vs {}", a.len(), b.len());
}

/// Dot product `aᵀb`.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_same_len(a, b, "dot");
    let s = a.iter().zip(b).map(|(x, y)| x * y).sum();
    crate::guard::check_finite_scalar("dot reduction", s);
    s
}

/// Parallel dot product; falls back to [`dot`] below [`PAR_THRESHOLD`].
pub fn par_dot(a: &[f64], b: &[f64]) -> f64 {
    assert_same_len(a, b, "par_dot");
    if a.len() < PAR_THRESHOLD {
        return dot(a, b);
    }
    let s = a
        .par_chunks(PAR_CHUNK)
        .zip(b.par_chunks(PAR_CHUNK))
        .map(|(ca, cb)| dot(ca, cb))
        .sum();
    crate::guard::check_finite_scalar("par_dot reduction", s);
    s
}

/// Squared Euclidean norm `‖a‖²`.
#[inline]
pub fn norm_sq(a: &[f64]) -> f64 {
    let s = a.iter().map(|x| x * x).sum();
    crate::guard::check_finite_scalar("norm_sq reduction", s);
    s
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    norm_sq(a).sqrt()
}

/// Parallel squared norm.
pub fn par_norm_sq(a: &[f64]) -> f64 {
    if a.len() < PAR_THRESHOLD {
        return norm_sq(a);
    }
    let s = a.par_chunks(PAR_CHUNK).map(norm_sq).sum();
    crate::guard::check_finite_scalar("par_norm_sq reduction", s);
    s
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_same_len(a, b, "dist_sq");
    let s = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    crate::guard::check_finite_scalar("dist_sq reduction", s);
    s
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist_sq(a, b).sqrt()
}

/// `y ← y + alpha * x` (BLAS axpy).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_same_len(x, y, "axpy");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Parallel axpy for long vectors.
pub fn par_axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_same_len(x, y, "par_axpy");
    if x.len() < PAR_THRESHOLD {
        return axpy(alpha, x, y);
    }
    y.par_chunks_mut(PAR_CHUNK)
        .zip(x.par_chunks(PAR_CHUNK))
        .for_each(|(cy, cx)| axpy(alpha, cx, cy));
}

/// `y ← alpha * x` (overwrite).
#[inline]
pub fn scale_into(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_same_len(x, y, "scale_into");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi;
    }
}

/// `x ← alpha * x` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `out ← a + b`.
#[inline]
pub fn add_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_same_len(a, b, "add_into");
    assert_same_len(a, out, "add_into(out)");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// `out ← a − b`.
#[inline]
pub fn sub_into(a: &[f64], b: &[f64], out: &mut [f64]) {
    assert_same_len(a, b, "sub_into");
    assert_same_len(a, out, "sub_into(out)");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// `a ← a + b` in place.
#[inline]
pub fn add_assign(a: &mut [f64], b: &[f64]) {
    assert_same_len(a, b, "add_assign");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

/// `a ← a − b` in place.
#[inline]
pub fn sub_assign(a: &mut [f64], b: &[f64]) {
    assert_same_len(a, b, "sub_assign");
    for (x, y) in a.iter_mut().zip(b) {
        *x -= y;
    }
}

/// Fill with zeros.
#[inline]
pub fn zero(a: &mut [f64]) {
    a.fill(0.0);
}

/// Weighted in-place accumulation `acc ← acc + w * x`, the aggregation
/// primitive of the server update (Algorithm 1, line 12).
#[inline]
pub fn weighted_accumulate(acc: &mut [f64], w: f64, x: &[f64]) {
    axpy(w, x, acc);
}

/// Linear interpolation `out ← (1−t)·a + t·b`.
#[inline]
pub fn lerp_into(a: &[f64], b: &[f64], t: f64, out: &mut [f64]) {
    assert_same_len(a, b, "lerp_into");
    assert_same_len(a, out, "lerp_into(out)");
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = (1.0 - t) * x + t * y;
    }
}

/// Maximum absolute element (`‖a‖∞`); 0 for an empty slice.
#[inline]
pub fn max_abs(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// True iff every element is finite (no NaN / ±inf). Used by the drivers to
/// detect divergence (the paper's Fig. 4 shows μ = 0 diverging).
#[inline]
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|x| x.is_finite())
}

/// Arithmetic mean; 0 for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let m = a.iter().sum::<f64>() / a.len() as f64;
    crate::guard::check_finite_scalar("mean reduction", m);
    m
}

/// Population variance; 0 for slices with fewer than two elements.
#[inline]
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    let v = a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64;
    crate::guard::check_finite_scalar("variance reduction", v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn par_dot_matches_dot_on_long_vector() {
        let n = PAR_THRESHOLD + 1234;
        let a: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.25).collect();
        let b: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let d1 = dot(&a, &b);
        let d2 = par_dot(&a, &b);
        assert!((d1 - d2).abs() < 1e-6 * d1.abs().max(1.0));
    }

    #[test]
    fn norms() {
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(dist(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
    }

    #[test]
    fn par_norm_sq_matches() {
        let n = PAR_THRESHOLD * 2;
        let a: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        assert!((par_norm_sq(&a) - norm_sq(&a)).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn par_axpy_matches_axpy() {
        let n = PAR_THRESHOLD + 999;
        let x: Vec<f64> = (0..n).map(|i| i as f64 * 1e-3).collect();
        let mut y1 = vec![1.0; n];
        let mut y2 = vec![1.0; n];
        axpy(-0.5, &x, &mut y1);
        par_axpy(-0.5, &x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn scale_and_scale_into() {
        let mut x = vec![2.0, -4.0];
        scale(0.5, &mut x);
        assert_eq!(x, vec![1.0, -2.0]);
        let mut y = vec![0.0, 0.0];
        scale_into(3.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 6.0]);
    }

    #[test]
    fn add_sub() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        let mut out = [0.0, 0.0];
        add_into(&a, &b, &mut out);
        assert_eq!(out, [11.0, 22.0]);
        sub_into(&b, &a, &mut out);
        assert_eq!(out, [9.0, 18.0]);
        let mut c = [1.0, 1.0];
        add_assign(&mut c, &a);
        assert_eq!(c, [2.0, 3.0]);
        sub_assign(&mut c, &a);
        assert_eq!(c, [1.0, 1.0]);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 10.0];
        let b = [4.0, 20.0];
        let mut out = [0.0; 2];
        lerp_into(&a, &b, 0.0, &mut out);
        assert_eq!(out, a);
        lerp_into(&a, &b, 1.0, &mut out);
        assert_eq!(out, b);
        lerp_into(&a, &b, 0.5, &mut out);
        assert_eq!(out, [2.0, 15.0]);
    }

    #[test]
    fn finite_detection() {
        assert!(all_finite(&[1.0, -2.0, 0.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((variance(&[1.0, 2.0, 3.0]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn weighted_accumulate_is_axpy() {
        let mut acc = vec![0.0, 0.0];
        weighted_accumulate(&mut acc, 0.25, &[4.0, 8.0]);
        assert_eq!(acc, vec![1.0, 2.0]);
    }
}
