//! Seeded parameter initialisation (Xavier/Glorot, He, uniform, zeros).
//!
//! All initialisers take an explicit RNG so that every experiment in the
//! benchmark harness is reproducible from a single `u64` seed.

use rand::Rng;
use rand_distr::{Distribution, Normal};

/// Fill `buf` with zeros. (Exists for symmetry with the other
/// initialisers so model code can be written uniformly.)
pub fn zeros(buf: &mut [f64]) {
    buf.fill(0.0);
}

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(rng: &mut impl Rng, buf: &mut [f64], fan_in: usize, fan_out: usize) {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    for v in buf.iter_mut() {
        *v = rng.gen_range(-a..=a);
    }
}

/// He normal: `N(0, sqrt(2 / fan_in))`, suited to ReLU layers.
pub fn he_normal(rng: &mut impl Rng, buf: &mut [f64], fan_in: usize) {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    #[allow(clippy::expect_used)]
    // fedlint: allow(no-panic) — σ = sqrt(2 / max(fan_in, 1)) is finite and positive for every layer shape
    let dist = Normal::new(0.0, std).expect("he_normal: invalid std");
    for v in buf.iter_mut() {
        *v = dist.sample(rng);
    }
}

/// Uniform `U(-scale, scale)`.
pub fn uniform(rng: &mut impl Rng, buf: &mut [f64], scale: f64) {
    for v in buf.iter_mut() {
        *v = rng.gen_range(-scale..=scale);
    }
}

/// Standard normal scaled by `std`.
pub fn normal(rng: &mut impl Rng, buf: &mut [f64], std: f64) {
    #[allow(clippy::expect_used)]
    // fedlint: allow(no-panic) — callers pass literal non-negative σ; Normal::new only rejects NaN/negative σ
    let dist = Normal::new(0.0, std).expect("normal: invalid std");
    for v in buf.iter_mut() {
        *v = dist.sample(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0; 1000];
        xavier_uniform(&mut rng, &mut buf, 100, 50);
        let a = (6.0_f64 / 150.0).sqrt();
        assert!(buf.iter().all(|v| v.abs() <= a));
        // Not all zero.
        assert!(buf.iter().any(|v| v.abs() > 1e-6));
    }

    #[test]
    fn he_normal_std_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = vec![0.0; 20000];
        he_normal(&mut rng, &mut buf, 50);
        let want_std = (2.0_f64 / 50.0).sqrt();
        let mean = buf.iter().sum::<f64>() / buf.len() as f64;
        let var = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / buf.len() as f64;
        assert!(mean.abs() < 0.01);
        assert!((var.sqrt() - want_std).abs() < 0.02);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = vec![0.0; 16];
        let mut b = vec![0.0; 16];
        xavier_uniform(&mut StdRng::seed_from_u64(7), &mut a, 4, 4);
        xavier_uniform(&mut StdRng::seed_from_u64(7), &mut b, 4, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn zeros_fills() {
        let mut buf = vec![1.0; 4];
        zeros(&mut buf);
        assert_eq!(buf, vec![0.0; 4]);
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![0.0; 500];
        uniform(&mut rng, &mut buf, 0.1);
        assert!(buf.iter().all(|v| v.abs() <= 0.1));
    }
}
