//! Numeric guards: finite-checks on the outputs of tensor hot paths.
//!
//! Divergence in FedProxVR experiments is detected at the *round* level
//! (the runner checks the aggregated model between rounds), but by then
//! a NaN has lost its origin. The guard layer pins the offending op:
//! each guarded kernel calls [`check_finite`] / [`check_finite_scalar`]
//! on its output with an op label, so the first non-finite value aborts
//! with "which op, which index, which value" context.
//!
//! Two modes:
//!
//! * default — active only under `debug_assertions` (tests and debug
//!   builds), compiled out of release builds so production kernels stay
//!   branch-free;
//! * `--features check` — hard error in **every** profile, for hunting
//!   numeric bugs at release speed.
//!
//! Intentional-divergence sweeps (e.g. the fig4 μ-effect binary) run in
//! release without `check`, where the guards cost nothing; the guards
//! exist to catch *unexpected* non-finites, not the divergence dynamics
//! those experiments study.

/// First non-finite entry of a slice, as `(index, value)`.
#[inline]
pub fn first_non_finite(xs: &[f64]) -> Option<(usize, f64)> {
    xs.iter().copied().enumerate().find(|&(_, v)| !v.is_finite())
}

/// Whether the guards are active in this build.
#[inline]
pub const fn guards_active() -> bool {
    cfg!(feature = "check") || cfg!(debug_assertions)
}

/// Abort with op context if `xs` contains a NaN or infinity. No-op in
/// release builds unless the `check` feature is enabled.
#[inline]
#[track_caller]
pub fn check_finite(op: &str, xs: &[f64]) {
    if guards_active() {
        if let Some((index, value)) = first_non_finite(xs) {
            // fedlint: allow(no-panic) — the guard's contract is to abort with op context when enabled
            panic!(
                "numeric guard: {op} produced {value} at index {index} (len {})",
                xs.len()
            );
        }
    }
}

/// Scalar variant of [`check_finite`] for reduction outputs.
#[inline]
#[track_caller]
pub fn check_finite_scalar(op: &str, value: f64) {
    if guards_active() && !value.is_finite() {
        // fedlint: allow(no-panic) — the guard's contract is to abort with op context when enabled
        panic!("numeric guard: {op} produced {value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_first_non_finite() {
        assert_eq!(first_non_finite(&[1.0, 2.0]), None);
        let (i, v) = first_non_finite(&[1.0, f64::NAN, f64::INFINITY]).unwrap();
        assert_eq!(i, 1);
        assert!(v.is_nan());
        assert_eq!(first_non_finite(&[f64::NEG_INFINITY]), Some((0, f64::NEG_INFINITY)));
    }

    #[test]
    fn passes_finite_data() {
        check_finite("test op", &[0.0, -1.5, f64::MAX]);
        check_finite_scalar("test op", f64::MIN_POSITIVE);
    }

    #[test]
    fn guard_panic_names_the_op() {
        if !guards_active() {
            return;
        }
        let err = std::panic::catch_unwind(|| check_finite("matmul", &[1.0, f64::NAN]))
            .expect_err("guard must fire on NaN");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("numeric guard: matmul"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
    }
}
