//! Row-major dense matrix whose products run through the kernel layer.
//!
//! The multinomial logistic-regression model is a `classes x features`
//! matrix applied to mini-batches, and the CNN's im2col path reduces
//! convolution to matmul, so this type is the workhorse of every
//! experiment. All multiplication entry points here are thin wrappers
//! over [`crate::kernel`], which dispatches between the scalar
//! cpu-reference kernels and the cache-blocked tiled kernels; every
//! kernel produces bitwise-identical results.

use crate::error::TensorResult;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix { rows, cols, data: vec![value; rows * cols] }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Build from an owned buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices (all rows must have equal length).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix { rows: r, cols: c, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Checked matrix multiply; returns a [`crate::error::ShapeError`]
    /// when inner dimensions disagree.
    pub fn try_matmul(&self, rhs: &Matrix) -> TensorResult<Matrix> {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        crate::kernel::try_matmul_into(self, rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix multiply; panics on shape mismatch (use [`Self::try_matmul`]
    /// for the checked variant).
    #[allow(clippy::expect_used)]
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        // fedlint: allow(no-panic) — documented panicking wrapper; try_matmul is the checked API
        self.try_matmul(rhs).expect("matmul shape mismatch")
    }

    /// Checked matrix-vector product `self * x`; returns a
    /// [`crate::error::ShapeError`] when `x` has the wrong length.
    pub fn try_matvec(&self, x: &[f64]) -> TensorResult<Vec<f64>> {
        let mut out = vec![0.0; self.rows];
        crate::kernel::try_matvec_into(&self.data, self.rows, self.cols, x, &mut out)?;
        Ok(out)
    }

    /// Matrix-vector product `self * x`; panics on shape mismatch (use
    /// [`Self::try_matvec`] for the checked variant).
    #[allow(clippy::expect_used)]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        // fedlint: allow(no-panic) — documented panicking wrapper; try_matvec is the checked API
        self.try_matvec(x).expect("matvec shape mismatch")
    }

    /// Checked `selfᵀ * x` without materialising the transpose; returns
    /// a [`crate::error::ShapeError`] when `x` has the wrong length.
    pub fn try_matvec_t(&self, x: &[f64]) -> TensorResult<Vec<f64>> {
        let mut out = vec![0.0; self.cols];
        crate::kernel::try_matvec_t_into(&self.data, self.rows, self.cols, x, &mut out)?;
        Ok(out)
    }

    /// `selfᵀ * x` without materialising the transpose; panics on shape
    /// mismatch (use [`Self::try_matvec_t`] for the checked variant).
    #[allow(clippy::expect_used)]
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        // fedlint: allow(no-panic) — documented panicking wrapper; try_matvec_t is the checked API
        self.try_matvec_t(x).expect("matvec_t shape mismatch")
    }

    /// Reshape in place to `rows × cols`, resizing the buffer (new cells
    /// are zero; surviving prefix cells keep their values only when the
    /// element count is unchanged — callers treat the buffer as scratch).
    pub(crate) fn reshape_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vecops::norm(&self.data)
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Add `rhs` scaled by `alpha` into `self`.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "Matrix::axpy shape mismatch");
        crate::vecops::axpy(alpha, &rhs.data, &mut self.data);
    }
}

/// `out ← a * b` through the active kernel (see [`crate::kernel`]).
/// `out` must already have shape `(a.rows, b.cols)`.
pub fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let r = crate::kernel::try_matmul_into(a, b, out);
    assert!(r.is_ok(), "matmul_into shape mismatch: {r:?}");
}

/// `out ← aᵀ * b` without materialising `aᵀ`, through the active kernel.
pub fn matmul_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let r = crate::kernel::try_matmul_tn_into(a, b, out);
    assert!(r.is_ok(), "matmul_tn_into shape mismatch: {r:?}");
}

/// `out ← a * bᵀ` without materialising `bᵀ`, through the active kernel.
pub fn matmul_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let r = crate::kernel::try_matmul_nt_into(a, b, out);
    assert!(r.is_ok(), "matmul_nt_into shape mismatch: {r:?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a.get(i, k) * b.get(k, j);
                }
                out.set(i, j, s);
            }
        }
        out
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| next()).collect())
    }

    #[test]
    fn identity_is_neutral() {
        let a = pseudo_random(5, 5, 42);
        let i = Matrix::identity(5);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = pseudo_random(7, 11, 1);
        let b = pseudo_random(11, 3, 2);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        let a = pseudo_random(80, 100, 3);
        let b = pseudo_random(100, 90, 4);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn try_matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let err = a.try_matmul(&b).unwrap_err();
        assert_eq!(err.op, "matmul");
    }

    #[test]
    fn transpose_involution() {
        let a = pseudo_random(4, 9, 7);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_consistent_with_matmul() {
        let a = pseudo_random(6, 4, 9);
        let x = vec![1.0, -2.0, 0.5, 3.0];
        let xm = Matrix::from_vec(4, 1, x.clone());
        let via_matmul = a.matmul(&xm);
        let via_matvec = a.matvec(&x);
        for (m, v) in via_matmul.as_slice().iter().zip(&via_matvec) {
            assert!((m - v).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = pseudo_random(6, 4, 10);
        let x = vec![0.5; 6];
        let got = a.matvec_t(&x);
        let want = a.transpose().matvec(&x);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_tn_matches() {
        let a = pseudo_random(8, 5, 11);
        let b = pseudo_random(8, 6, 12);
        let mut out = Matrix::zeros(5, 6);
        matmul_tn_into(&a, &b, &mut out);
        let want = a.transpose().matmul(&b);
        for (g, w) in out.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_nt_matches() {
        let a = pseudo_random(8, 5, 13);
        let b = pseudo_random(6, 5, 14);
        let mut out = Matrix::zeros(8, 6);
        matmul_nt_into(&a, &b, &mut out);
        let want = a.matmul(&b.transpose());
        for (g, w) in out.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn row_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn map_and_axpy() {
        let a = Matrix::filled(2, 2, 2.0);
        let b = a.map(|x| x * x);
        assert_eq!(b.as_slice(), &[4.0; 4]);
        let mut c = Matrix::zeros(2, 2);
        c.axpy(0.5, &b);
        assert_eq!(c.as_slice(), &[2.0; 4]);
    }

    #[test]
    #[should_panic(expected = "buffer length mismatch")]
    fn from_vec_bad_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }
}
