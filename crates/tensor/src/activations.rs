//! Activation functions and their derivatives.
//!
//! Only what the paper's models need: ReLU for the CNN/MLP hidden layers,
//! numerically-stable softmax / log-softmax for the multinomial outputs,
//! and the smoothed hinge used by the SVM loss (the paper's Assumption 1
//! requires L-smooth per-sample losses, which the plain hinge is not).

/// ReLU applied in place.
#[inline]
pub fn relu_inplace(x: &mut [f64]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Derivative mask of ReLU evaluated at the *pre*-activation values:
/// `grad[i] ← grad[i] * (pre[i] > 0)`.
#[inline]
pub fn relu_backward_inplace(grad: &mut [f64], pre: &[f64]) {
    debug_assert_eq!(grad.len(), pre.len());
    for (g, &p) in grad.iter_mut().zip(pre) {
        if p <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Numerically-stable softmax in place (subtracts the max before
/// exponentiating).
pub fn softmax_inplace(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    fedprox_telemetry::span!("tensor", "softmax", "len" => x.len());
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in x.iter_mut() {
        *v = (*v - m).exp();
        sum += *v;
    }
    let inv = 1.0 / sum;
    for v in x.iter_mut() {
        *v *= inv;
    }
    crate::guard::check_finite("softmax", x);
}

/// Stable log-sum-exp of a slice.
pub fn log_sum_exp(x: &[f64]) -> f64 {
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return m;
    }
    m + x.iter().map(|v| (v - m).exp()).sum::<f64>().ln()
}

/// Cross-entropy loss `-log softmax(logits)[target]` computed stably from
/// raw logits.
pub fn cross_entropy_from_logits(logits: &[f64], target: usize) -> f64 {
    debug_assert!(target < logits.len());
    log_sum_exp(logits) - logits[target]
}

/// Gradient of [`cross_entropy_from_logits`] w.r.t. the logits:
/// `softmax(logits) - e_target`, written into `out`.
pub fn cross_entropy_grad_from_logits(logits: &[f64], target: usize, out: &mut [f64]) {
    debug_assert_eq!(logits.len(), out.len());
    out.copy_from_slice(logits);
    softmax_inplace(out);
    out[target] -= 1.0;
}

/// Smoothed (quadratically-huberised) hinge loss with smoothing width
/// `gamma`: equals the plain hinge for margins below `1 - gamma`, zero above
/// `1`, and a quadratic blend between. Its gradient is `1/gamma`-Lipschitz,
/// satisfying the paper's L-smoothness assumption.
pub fn smooth_hinge(margin: f64, gamma: f64) -> f64 {
    debug_assert!(gamma > 0.0);
    if margin >= 1.0 {
        0.0
    } else if margin <= 1.0 - gamma {
        1.0 - margin - gamma / 2.0
    } else {
        (1.0 - margin) * (1.0 - margin) / (2.0 * gamma)
    }
}

/// Derivative of [`smooth_hinge`] with respect to the margin.
pub fn smooth_hinge_deriv(margin: f64, gamma: f64) -> f64 {
    debug_assert!(gamma > 0.0);
    if margin >= 1.0 {
        0.0
    } else if margin <= 1.0 - gamma {
        -1.0
    } else {
        -(1.0 - margin) / gamma
    }
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut x = vec![-1.0, 0.0, 2.5];
        relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5]);
    }

    #[test]
    fn relu_backward_masks() {
        let pre = [-1.0, 0.0, 3.0];
        let mut g = [5.0, 5.0, 5.0];
        relu_backward_inplace(&mut g, &pre);
        assert_eq!(g, [0.0, 0.0, 5.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let mut a = vec![1.0, 2.0, 3.0];
        let mut b = vec![1001.0, 1002.0, 1003.0];
        softmax_inplace(&mut a);
        softmax_inplace(&mut b);
        let sum: f64 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(a[2] > a[1] && a[1] > a[0]);
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut x = vec![-1e308, 0.0, 1e3];
        softmax_inplace(&mut x);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let logits = [0.2, -1.0, 0.5];
        let ce = cross_entropy_from_logits(&logits, 2);
        let mut probs = logits.to_vec();
        softmax_inplace(&mut probs);
        assert!((ce - (-probs[2].ln())).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_grad_sums_to_zero() {
        let logits = [0.3, 0.7, -0.2, 1.5];
        let mut g = [0.0; 4];
        cross_entropy_grad_from_logits(&logits, 1, &mut g);
        assert!(g.iter().sum::<f64>().abs() < 1e-12);
        assert!(g[1] < 0.0);
    }

    #[test]
    fn cross_entropy_grad_is_finite_difference_of_loss() {
        let logits = [0.1, -0.4, 0.9];
        let mut g = [0.0; 3];
        cross_entropy_grad_from_logits(&logits, 0, &mut g);
        let h = 1e-6;
        for i in 0..3 {
            let mut lp = logits;
            let mut lm = logits;
            lp[i] += h;
            lm[i] -= h;
            let fd = (cross_entropy_from_logits(&lp, 0) - cross_entropy_from_logits(&lm, 0))
                / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-6, "coord {i}: fd={fd} g={}", g[i]);
        }
    }

    #[test]
    fn smooth_hinge_regions() {
        let gamma = 0.5;
        assert_eq!(smooth_hinge(2.0, gamma), 0.0);
        assert_eq!(smooth_hinge_deriv(2.0, gamma), 0.0);
        // Linear region.
        assert!((smooth_hinge(-1.0, gamma) - (2.0 - 0.25)).abs() < 1e-12);
        assert_eq!(smooth_hinge_deriv(-1.0, gamma), -1.0);
        // Quadratic region is C1 at both joints.
        let h = 1e-7;
        for m in [1.0 - gamma, 1.0] {
            let d_left = (smooth_hinge(m, gamma) - smooth_hinge(m - h, gamma)) / h;
            let d_right = (smooth_hinge(m + h, gamma) - smooth_hinge(m, gamma)) / h;
            assert!((d_left - d_right).abs() < 1e-5);
        }
    }

    #[test]
    fn smooth_hinge_deriv_is_fd() {
        let gamma = 0.3;
        let h = 1e-7;
        for &m in &[-2.0, 0.5, 0.8, 0.95, 1.5] {
            let fd = (smooth_hinge(m + h, gamma) - smooth_hinge(m - h, gamma)) / (2.0 * h);
            assert!((fd - smooth_hinge_deriv(m, gamma)).abs() < 1e-5);
        }
    }

    #[test]
    fn sigmoid_symmetry_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn log_sum_exp_stable() {
        let v = [1000.0, 1000.0];
        assert!((log_sum_exp(&v) - (1000.0 + 2.0_f64.ln())).abs() < 1e-9);
    }
}
