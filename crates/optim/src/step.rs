//! Step-size schedules.
//!
//! The paper fixes `η = 1/(βL)` (Section 4.2, footnote 1: "a fixed step
//! size is more practical than diminishing step size"); a diminishing
//! schedule is provided for the ablation bench that justifies that choice.

use serde::{Deserialize, Serialize};

/// Step-size schedule evaluated per local iteration `t`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StepSize {
    /// The paper's fixed `η = 1/(βL)`.
    FixedBeta {
        /// Step-size parameter β (> 0).
        beta: f64,
        /// Smoothness constant L of the per-sample losses.
        smoothness: f64,
    },
    /// A fixed constant `η`.
    Constant(f64),
    /// Diminishing `η_t = c / (t + 1)` (ablation only).
    Diminishing {
        /// Numerator constant c.
        c: f64,
    },
}

impl StepSize {
    /// The step to use at local iteration `t` (0-based).
    pub fn at(&self, t: usize) -> f64 {
        match *self {
            StepSize::FixedBeta { beta, smoothness } => {
                debug_assert!(beta > 0.0 && smoothness > 0.0);
                1.0 / (beta * smoothness)
            }
            StepSize::Constant(eta) => eta,
            StepSize::Diminishing { c } => c / (t as f64 + 1.0),
        }
    }

    /// Convenience constructor for the paper's schedule.
    pub fn paper(beta: f64, smoothness: f64) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        assert!(smoothness > 0.0, "L must be positive");
        StepSize::FixedBeta { beta, smoothness }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_beta_is_inverse_beta_l() {
        let s = StepSize::paper(5.0, 2.0);
        assert!((s.at(0) - 0.1).abs() < 1e-15);
        assert_eq!(s.at(0), s.at(100));
    }

    #[test]
    fn constant_ignores_t() {
        let s = StepSize::Constant(0.3);
        assert_eq!(s.at(0), 0.3);
        assert_eq!(s.at(9), 0.3);
    }

    #[test]
    fn diminishing_decreases() {
        let s = StepSize::Diminishing { c: 1.0 };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(1), 0.5);
        assert!(s.at(10) < s.at(9));
    }

    #[test]
    #[should_panic(expected = "beta must be positive")]
    fn paper_rejects_bad_beta() {
        let _ = StepSize::paper(0.0, 1.0);
    }
}
