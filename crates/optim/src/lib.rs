//! Optimization substrate for FedProxVR.
//!
//! Implements exactly the machinery of the paper's Algorithm 1:
//!
//! * [`prox`] — proximal operators, including the closed-form
//!   prox of the quadratic penalty `h_s(w) = μ/2 ‖w − w̄‖²` (eq. (10)) and
//!   a generic iterative prox used to cross-validate it,
//! * [`estimator`] — the stochastic gradient estimators of eq. (8):
//!   SARAH (8a), SVRG (8b), plus plain SGD and full GD as baselines,
//! * [`solver`] — the inner loop (lines 3–10): τ proximal steps with a
//!   chosen estimator, returning the uniformly-random iterate of line 10,
//! * [`step`] — step-size schedules (the paper's fixed `η = 1/(βL)` and a
//!   diminishing schedule for comparison).

#![warn(missing_docs)]

pub mod estimator;
pub mod prox;
pub mod solver;
pub mod step;

pub use estimator::{DirectionStats, Estimator, EstimatorKind};
pub use prox::{ElasticNetProx, IterativeProx, L1Prox, Proximal, QuadraticProx, SparseQuadraticProx, ZeroProx};
pub use solver::{LocalOutcome, LocalSolver, LocalSolverConfig, SolveScratch};
pub use step::StepSize;
