//! The stochastic gradient estimators of eq. (8).
//!
//! At global iteration `s`, device `n` starts from the anchor
//! `w^{(0)} = w̄^{(s−1)}` with a full gradient `v^{(0)} = ∇F_n(w^{(0)})`,
//! then at each local step `t ≥ 1` draws a mini-batch `I_t` and forms:
//!
//! * **SARAH** (8a): `v^{(t)} = ∇f_{I_t}(w^{(t)}) − ∇f_{I_t}(w^{(t−1)}) + v^{(t−1)}`
//! * **SVRG** (8b):  `v^{(t)} = ∇f_{I_t}(w^{(t)}) − ∇f_{I_t}(w^{(0)}) + v^{(0)}`
//! * **SGD**:        `v^{(t)} = ∇f_{I_t}(w^{(t)})` (the vanilla baseline)
//! * **FullGd**:     `v^{(t)} = ∇F_n(w^{(t)})` (deterministic reference)
//!
//! The estimator owns all recursion state (`v`, the previous iterate for
//! SARAH, the anchor for SVRG) so the solver's loop body is estimator
//! agnostic — mirroring how line 7 of Algorithm 1 swaps (8a)/(8b).

use fedprox_data::Dataset;
use fedprox_models::{GradScratch, LossModel};
use fedprox_tensor::vecops;
use serde::{Deserialize, Serialize};

/// Which estimator drives the local update (line 7 of Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// Vanilla stochastic gradient (the FedAvg baseline).
    Sgd,
    /// Stochastic variance reduced gradient, eq. (8b).
    Svrg,
    /// Stochastic recursive gradient, eq. (8a).
    Sarah,
    /// Deterministic full gradient (reference / debugging).
    FullGd,
}

impl EstimatorKind {
    /// Short lowercase name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::Sgd => "sgd",
            EstimatorKind::Svrg => "svrg",
            EstimatorKind::Sarah => "sarah",
            EstimatorKind::FullGd => "gd",
        }
    }

    /// Whether the estimator needs the anchor full gradient `v^{(0)}`.
    pub fn needs_anchor(&self) -> bool {
        matches!(self, EstimatorKind::Svrg | EstimatorKind::Sarah)
    }
}

/// Running statistics of squared estimator direction norms `‖v^{(t)}‖²`
/// over the inner steps of one or more local solves — the raw material
/// for the health layer's variance-reduction-effectiveness rule.
///
/// Filled only when the `telemetry` feature is compiled in **and** the
/// collector is armed at runtime; otherwise every field stays zero and
/// the probe costs nothing. The probe reads the direction, never writes
/// it, so armed and disarmed runs stay bitwise identical.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DirectionStats {
    /// Local solves contributing (1 per armed restart; summed by merge).
    pub solves: u64,
    /// Inner steps observed across those solves.
    pub steps: u64,
    /// Running mean of `‖v^{(t)}‖²` over the observed steps.
    pub mean_sq: f64,
    /// Welford M2 of `‖v^{(t)}‖²` (population variance × `steps`).
    pub m2_sq: f64,
    /// Summed anchor norms `‖v^{(0)}‖²`, one term per solve (divide by
    /// `solves` for the mean anchor second moment).
    pub anchor_sq: f64,
}

impl DirectionStats {
    /// Begin one solve's observation with its anchor `‖v^{(0)}‖²`.
    pub fn start(&mut self, anchor_norm_sq: f64) {
        self.solves += 1;
        self.anchor_sq += anchor_norm_sq;
    }

    /// Record one inner step's `‖v^{(t)}‖²` (Welford update).
    pub fn push(&mut self, norm_sq: f64) {
        self.steps += 1;
        let delta = norm_sq - self.mean_sq;
        self.mean_sq += delta / self.steps as f64;
        self.m2_sq += delta * (norm_sq - self.mean_sq);
    }

    /// Merge another solve's statistics into this accumulator
    /// (Chan et al. parallel Welford combination).
    pub fn merge(&mut self, other: &DirectionStats) {
        if other.steps > 0 {
            let (na, nb) = (self.steps as f64, other.steps as f64);
            let delta = other.mean_sq - self.mean_sq;
            let n = na + nb;
            self.mean_sq += delta * nb / n;
            self.m2_sq += other.m2_sq + delta * delta * na * nb / n;
            self.steps += other.steps;
        }
        self.solves += other.solves;
        self.anchor_sq += other.anchor_sq;
    }
}

/// Stateful gradient estimator for one device within one global iteration.
///
/// ```
/// use fedprox_data::Dataset;
/// use fedprox_models::{LinearRegression, LossModel};
/// use fedprox_optim::estimator::{Estimator, EstimatorKind};
/// use fedprox_tensor::Matrix;
///
/// let data = Dataset::new(Matrix::from_rows(&[&[1.0], &[2.0]]), vec![2.0, 4.0], 0);
/// let model = LinearRegression::new(1);
/// let w0 = vec![0.0];
/// // Lines 3–4 of Algorithm 1: the anchor full gradient.
/// let mut est = Estimator::begin(EstimatorKind::Svrg, &model, &data, &w0);
/// assert_eq!(est.grad_evals(), data.len());
/// // One SVRG step at the anchor with any batch leaves v unchanged.
/// let v0 = est.direction().to_vec();
/// est.step(&model, &data, &[1], &w0);
/// assert_eq!(est.direction(), &v0[..]);
/// ```
#[derive(Debug, Clone)]
pub struct Estimator {
    kind: EstimatorKind,
    dim: usize,
    /// Current direction `v^{(t)}`.
    v: Vec<f64>,
    /// SARAH's previous iterate `w^{(t−1)}`.
    w_prev: Vec<f64>,
    /// SVRG's anchor `w^{(0)}`.
    anchor: Vec<f64>,
    /// Anchor full gradient `v^{(0)} = ∇F_n(w^{(0)})`.
    anchor_grad: Vec<f64>,
    /// Scratch for the two batch gradients of a VR step.
    scratch_a: Vec<f64>,
    scratch_b: Vec<f64>,
    /// Model gradient workspace, reused across every evaluation this
    /// estimator makes (chunk accumulators, forward/backward buffers).
    scratch: GradScratch,
    /// Count of per-sample gradient evaluations (for the cost model).
    grad_evals: usize,
    /// Direction-norm probe for the health layer; stays zero unless the
    /// `telemetry` feature is on and the collector is armed.
    probe: DirectionStats,
}

/// True when the direction probe should record: telemetry compiled in
/// and the collector armed. Constant `false` in default builds.
#[inline]
fn probe_armed() -> bool {
    #[cfg(feature = "telemetry")]
    {
        fedprox_telemetry::collector::is_armed()
    }
    #[cfg(not(feature = "telemetry"))]
    {
        false
    }
}

impl Estimator {
    /// Allocate an estimator's buffers without computing anything; the
    /// `restart_*` methods bring it into a started state.
    fn with_capacity(kind: EstimatorKind, dim: usize) -> Self {
        Estimator {
            kind,
            dim,
            v: vec![0.0; dim],
            w_prev: vec![0.0; dim],
            anchor: vec![0.0; dim],
            anchor_grad: vec![0.0; dim],
            scratch_a: vec![0.0; dim],
            scratch_b: vec![0.0; dim],
            scratch: GradScratch::new(),
            grad_evals: 0,
            probe: DirectionStats::default(),
        }
    }

    /// Start an epoch at the anchor `w0` (computes the full gradient once,
    /// as lines 3–4 of Algorithm 1 prescribe).
    pub fn begin<M: LossModel>(kind: EstimatorKind, model: &M, data: &Dataset, w0: &[f64]) -> Self {
        let dim = model.dim();
        let mut est = Self::with_capacity(kind, dim);
        est.restart(kind, model, data, w0);
        est
    }

    /// Re-run the [`Self::begin`] initialisation **in place**, reusing
    /// every buffer (including the model's gradient workspace). Requires
    /// a model of the same dimension.
    pub fn restart<M: LossModel>(
        &mut self,
        kind: EstimatorKind,
        model: &M,
        data: &Dataset,
        w0: &[f64],
    ) {
        assert_eq!(model.dim(), self.dim, "estimator restart: model dim");
        assert_eq!(w0.len(), self.dim, "estimator: w0 length");
        self.kind = kind;
        fedprox_telemetry::counter!("optim.anchor_full_grad", 1u32);
        fedprox_telemetry::counter!("optim.grad_evals", data.len());
        model.full_grad_in(w0, data, &mut self.anchor_grad, &mut self.scratch);
        fedprox_tensor::guard::check_finite(
            "anchor full gradient (Algorithm 1 line 3)",
            &self.anchor_grad,
        );
        self.v.copy_from_slice(&self.anchor_grad);
        self.w_prev.copy_from_slice(w0);
        self.anchor.copy_from_slice(w0);
        self.grad_evals = data.len();
        self.probe = DirectionStats::default();
        if probe_armed() {
            self.probe.start(vecops::norm_sq(&self.v));
        }
    }

    /// Start an epoch with an *externally supplied* anchor gradient
    /// instead of the device's own full gradient. This is how FSVRG
    /// (Konečný et al.) anchors its variance reduction at the **global**
    /// gradient `∇F̄(w̄)` that the server distributed — the device itself
    /// spends no gradient evaluations on the anchor.
    pub fn begin_with_anchor_grad<M: LossModel>(
        kind: EstimatorKind,
        model: &M,
        w0: &[f64],
        anchor_grad: &[f64],
    ) -> Self {
        let mut est = Self::with_capacity(kind, model.dim());
        est.restart_with_anchor_grad(kind, model, w0, anchor_grad);
        est
    }

    /// In-place, buffer-reusing variant of [`Self::begin_with_anchor_grad`].
    pub fn restart_with_anchor_grad<M: LossModel>(
        &mut self,
        kind: EstimatorKind,
        model: &M,
        w0: &[f64],
        anchor_grad: &[f64],
    ) {
        assert_eq!(model.dim(), self.dim, "estimator restart: model dim");
        assert_eq!(w0.len(), self.dim, "estimator: w0 length");
        assert_eq!(anchor_grad.len(), self.dim, "estimator: anchor_grad length");
        assert!(kind.needs_anchor(), "anchor injection only applies to VR estimators");
        self.kind = kind;
        self.v.copy_from_slice(anchor_grad);
        self.w_prev.copy_from_slice(w0);
        self.anchor.copy_from_slice(w0);
        self.anchor_grad.copy_from_slice(anchor_grad);
        self.grad_evals = 0;
        self.probe = DirectionStats::default();
        if probe_armed() {
            self.probe.start(vecops::norm_sq(&self.v));
        }
    }

    /// Start an SGD epoch *without* the anchor full gradient: the first
    /// direction is a plain mini-batch gradient. This is the FedAvg local
    /// update, which never touches the full dataset. Panics for
    /// variance-reduced kinds (they are defined by their anchor).
    pub fn begin_sgd<M: LossModel>(model: &M, data: &Dataset, w0: &[f64], batch: &[usize]) -> Self {
        let mut est = Self::with_capacity(EstimatorKind::Sgd, model.dim());
        est.restart_sgd(model, data, w0, batch);
        est
    }

    /// In-place, buffer-reusing variant of [`Self::begin_sgd`].
    pub fn restart_sgd<M: LossModel>(
        &mut self,
        model: &M,
        data: &Dataset,
        w0: &[f64],
        batch: &[usize],
    ) {
        assert_eq!(model.dim(), self.dim, "estimator restart: model dim");
        assert_eq!(w0.len(), self.dim, "estimator: w0 length");
        self.kind = EstimatorKind::Sgd;
        fedprox_telemetry::counter!("optim.grad_evals", batch.len());
        model.batch_grad_in(w0, data, batch, &mut self.v, &mut self.scratch);
        fedprox_tensor::guard::check_finite("initial mini-batch gradient", &self.v);
        self.w_prev.copy_from_slice(w0);
        self.anchor.copy_from_slice(w0);
        self.anchor_grad.fill(0.0);
        self.grad_evals = batch.len();
        self.probe = DirectionStats::default();
        if probe_armed() {
            self.probe.start(vecops::norm_sq(&self.v));
        }
    }

    /// The estimator kind.
    pub fn kind(&self) -> EstimatorKind {
        self.kind
    }

    /// The parameter dimension this estimator's buffers are sized for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The current direction `v^{(t)}` (after [`Self::begin`] this is the
    /// anchor full gradient `v^{(0)}`).
    pub fn direction(&self) -> &[f64] {
        &self.v
    }

    /// Total per-sample gradient evaluations so far.
    pub fn grad_evals(&self) -> usize {
        self.grad_evals
    }

    /// The direction-norm probe accumulated since the last restart.
    /// All-zero unless the `telemetry` feature is compiled in and the
    /// collector was armed when the solve ran.
    pub fn direction_stats(&self) -> DirectionStats {
        self.probe
    }

    /// Advance to local step `t` at the new iterate `w_t` using mini-batch
    /// `batch`; updates the internal direction per eq. (8a)/(8b).
    pub fn step<M: LossModel>(&mut self, model: &M, data: &Dataset, batch: &[usize], w_t: &[f64]) {
        assert_eq!(w_t.len(), self.dim, "estimator: w_t length");
        fedprox_telemetry::counter!("optim.inner_step", 1u32);
        let evals_before = self.grad_evals;
        match self.kind {
            EstimatorKind::Sgd => {
                model.batch_grad_in(w_t, data, batch, &mut self.v, &mut self.scratch);
                self.grad_evals += batch.len();
            }
            EstimatorKind::FullGd => {
                model.full_grad_in(w_t, data, &mut self.v, &mut self.scratch);
                self.grad_evals += data.len();
            }
            EstimatorKind::Svrg => {
                // v = ∇f_B(w_t) − ∇f_B(anchor) + v0.
                model.batch_grad_in(w_t, data, batch, &mut self.scratch_a, &mut self.scratch);
                model.batch_grad_in(&self.anchor, data, batch, &mut self.scratch_b, &mut self.scratch);
                for i in 0..self.dim {
                    self.v[i] = self.scratch_a[i] - self.scratch_b[i] + self.anchor_grad[i];
                }
                self.grad_evals += 2 * batch.len();
            }
            EstimatorKind::Sarah => {
                // v = ∇f_B(w_t) − ∇f_B(w_prev) + v_prev (recursion in place).
                model.batch_grad_in(w_t, data, batch, &mut self.scratch_a, &mut self.scratch);
                model.batch_grad_in(&self.w_prev, data, batch, &mut self.scratch_b, &mut self.scratch);
                for i in 0..self.dim {
                    self.v[i] += self.scratch_a[i] - self.scratch_b[i];
                }
                self.w_prev.copy_from_slice(w_t);
                self.grad_evals += 2 * batch.len();
            }
        }
        fedprox_telemetry::counter!("optim.grad_evals", self.grad_evals - evals_before);
        let op = match self.kind {
            EstimatorKind::Sgd => "SGD direction",
            EstimatorKind::FullGd => "full-gradient direction",
            EstimatorKind::Svrg => "SVRG direction (8a)",
            EstimatorKind::Sarah => "SARAH direction (8b)",
        };
        fedprox_tensor::guard::check_finite(op, &self.v);
        if probe_armed() {
            self.probe.push(vecops::norm_sq(&self.v));
        }
    }

    /// `‖v − ∇F_n(w_t)‖` — the estimator error, used by the variance
    /// ablation bench (the quantity bounded in the paper's eqs. (33)/(35)).
    pub fn error_vs_full<M: LossModel>(&self, model: &M, data: &Dataset, w_t: &[f64]) -> f64 {
        let mut full = vec![0.0; self.dim];
        model.full_grad(w_t, data, &mut full);
        vecops::dist(&self.v, &full)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedprox_models::LinearRegression;
    use fedprox_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_data(n: usize) -> Dataset {
        let mut f = Matrix::zeros(n, 2);
        let mut y = Vec::new();
        for i in 0..n {
            let x0 = (i as f64 * 0.37).sin();
            let x1 = (i as f64 * 0.73).cos();
            f.row_mut(i).copy_from_slice(&[x0, x1]);
            y.push(2.0 * x0 - x1);
        }
        Dataset::new(f, y, 0)
    }

    #[test]
    fn begin_sets_full_gradient_direction() {
        let d = toy_data(10);
        let m = LinearRegression::new(2);
        let w0 = vec![0.5, -0.5];
        let est = Estimator::begin(EstimatorKind::Svrg, &m, &d, &w0);
        let mut full = vec![0.0; 2];
        m.full_grad(&w0, &d, &mut full);
        assert_eq!(est.direction(), &full[..]);
        assert_eq!(est.grad_evals(), 10);
    }

    #[test]
    fn svrg_direction_at_anchor_with_same_batch_is_full_grad() {
        // At w_t == anchor, the correction cancels: v = v0 exactly.
        let d = toy_data(10);
        let m = LinearRegression::new(2);
        let w0 = vec![0.1, 0.9];
        let mut est = Estimator::begin(EstimatorKind::Svrg, &m, &d, &w0);
        let v0 = est.direction().to_vec();
        est.step(&m, &d, &[3, 7], &w0);
        for (a, b) in est.direction().iter().zip(&v0) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn sarah_recursion_matches_manual_computation() {
        let d = toy_data(8);
        let m = LinearRegression::new(2);
        let w0 = vec![0.0, 0.0];
        let w1 = vec![0.1, -0.1];
        let w2 = vec![0.15, -0.2];
        let mut est = Estimator::begin(EstimatorKind::Sarah, &m, &d, &w0);
        let v0 = est.direction().to_vec();
        est.step(&m, &d, &[2], &w1);
        let mut g1 = vec![0.0; 2];
        let mut g0 = vec![0.0; 2];
        m.batch_grad(&w1, &d, &[2], &mut g1);
        m.batch_grad(&w0, &d, &[2], &mut g0);
        let v1: Vec<f64> = (0..2).map(|i| g1[i] - g0[i] + v0[i]).collect();
        assert_eq!(est.direction(), &v1[..]);

        est.step(&m, &d, &[5], &w2);
        let mut h2 = vec![0.0; 2];
        let mut h1 = vec![0.0; 2];
        m.batch_grad(&w2, &d, &[5], &mut h2);
        m.batch_grad(&w1, &d, &[5], &mut h1);
        let v2: Vec<f64> = (0..2).map(|i| h2[i] - h1[i] + v1[i]).collect();
        for (a, b) in est.direction().iter().zip(&v2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn sgd_direction_is_plain_batch_gradient() {
        let d = toy_data(6);
        let m = LinearRegression::new(2);
        let w = vec![0.3, 0.3];
        let mut est = Estimator::begin(EstimatorKind::Sgd, &m, &d, &w);
        let wt = vec![0.5, -0.4];
        est.step(&m, &d, &[1, 4], &wt);
        let mut g = vec![0.0; 2];
        m.batch_grad(&wt, &d, &[1, 4], &mut g);
        assert_eq!(est.direction(), &g[..]);
    }

    #[test]
    fn full_gd_tracks_full_gradient() {
        let d = toy_data(6);
        let m = LinearRegression::new(2);
        let mut est = Estimator::begin(EstimatorKind::FullGd, &m, &d, &[0.0, 0.0]);
        let wt = vec![1.0, 1.0];
        est.step(&m, &d, &[0], &wt); // batch ignored
        let mut g = vec![0.0; 2];
        m.full_grad(&wt, &d, &mut g);
        assert_eq!(est.direction(), &g[..]);
    }

    #[test]
    fn svrg_estimator_is_unbiased_over_batches() {
        // E_B[v] = ∇F(w_t): average the SVRG direction over all singleton
        // batches and compare with the full gradient.
        let d = toy_data(12);
        let m = LinearRegression::new(2);
        let w0 = vec![0.2, -0.3];
        let wt = vec![0.5, 0.1];
        let mut mean = vec![0.0; 2];
        for i in 0..12 {
            let mut est = Estimator::begin(EstimatorKind::Svrg, &m, &d, &w0);
            est.step(&m, &d, &[i], &wt);
            vecops::axpy(1.0 / 12.0, est.direction(), &mut mean);
        }
        let mut full = vec![0.0; 2];
        m.full_grad(&wt, &d, &mut full);
        assert!(vecops::dist(&mean, &full) < 1e-12);
    }

    #[test]
    fn variance_reduction_beats_sgd_near_anchor() {
        // Close to the anchor, SVRG/SARAH error vs full gradient should be
        // (on average) much smaller than plain SGD's.
        let d = toy_data(40);
        let m = LinearRegression::new(2);
        let w0 = vec![1.0, -1.0];
        let wt = vec![1.02, -0.98]; // near the anchor
        let mut rng = StdRng::seed_from_u64(5);
        let mut err = |kind: EstimatorKind| -> f64 {
            let mut total = 0.0;
            for _ in 0..50 {
                let mut est = Estimator::begin(kind, &m, &d, &w0);
                let b = [rng.gen_range(0..40)];
                est.step(&m, &d, &b, &wt);
                total += est.error_vs_full(&m, &d, &wt);
            }
            total / 50.0
        };
        let e_svrg = err(EstimatorKind::Svrg);
        let e_sarah = err(EstimatorKind::Sarah);
        let e_sgd = err(EstimatorKind::Sgd);
        assert!(e_svrg < e_sgd / 5.0, "svrg {e_svrg} vs sgd {e_sgd}");
        assert!(e_sarah < e_sgd / 5.0, "sarah {e_sarah} vs sgd {e_sgd}");
    }

    #[test]
    fn grad_eval_accounting() {
        let d = toy_data(10);
        let m = LinearRegression::new(2);
        let w = vec![0.0; 2];
        let mut est = Estimator::begin(EstimatorKind::Svrg, &m, &d, &w);
        assert_eq!(est.grad_evals(), 10); // anchor full gradient
        est.step(&m, &d, &[0, 1, 2], &w);
        assert_eq!(est.grad_evals(), 16); // +2×3 for the VR step
        let mut sgd = Estimator::begin(EstimatorKind::Sgd, &m, &d, &w);
        sgd.step(&m, &d, &[0, 1], &w);
        assert_eq!(sgd.grad_evals(), 12);
    }

    #[test]
    fn direction_stats_welford_matches_direct() {
        let xs = [4.0, 1.0, 9.0, 2.0, 2.0];
        let mut st = DirectionStats::default();
        st.start(3.0);
        for x in xs {
            st.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let m2: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum();
        assert!((st.mean_sq - mean).abs() < 1e-12);
        assert!((st.m2_sq - m2).abs() < 1e-12);
        assert_eq!(st.steps, 5);
        assert_eq!(st.solves, 1);
        assert!((st.anchor_sq - 3.0).abs() < 1e-12);
    }

    #[test]
    fn direction_stats_merge_equals_pooled() {
        let xs = [4.0, 1.0, 9.0, 2.0, 2.0, 7.5, 0.25];
        let mut pooled = DirectionStats::default();
        pooled.start(1.0);
        let (mut a, mut b) = (DirectionStats::default(), DirectionStats::default());
        a.start(0.25);
        b.start(0.75);
        for (i, x) in xs.iter().enumerate() {
            pooled.push(*x);
            if i < 3 {
                a.push(*x);
            } else {
                b.push(*x);
            }
        }
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.steps, pooled.steps);
        assert_eq!(merged.solves, 2);
        assert!((merged.mean_sq - pooled.mean_sq).abs() < 1e-12);
        assert!((merged.m2_sq - pooled.m2_sq).abs() < 1e-12);
        assert!((merged.anchor_sq - 1.0).abs() < 1e-12);
        // Merging into an empty accumulator copies the other side.
        let mut empty = DirectionStats::default();
        empty.merge(&pooled);
        assert!((empty.mean_sq - pooled.mean_sq).abs() < 1e-12);
    }

    #[test]
    fn probe_is_zero_when_disarmed() {
        // Without the telemetry feature, or with it compiled but the
        // collector disarmed, the probe must never record.
        let d = toy_data(6);
        let m = LinearRegression::new(2);
        let mut est = Estimator::begin(EstimatorKind::Svrg, &m, &d, &[0.1, 0.2]);
        est.step(&m, &d, &[0, 1], &[0.2, 0.1]);
        #[cfg(not(feature = "telemetry"))]
        assert_eq!(est.direction_stats(), DirectionStats::default());
        #[cfg(feature = "telemetry")]
        if !fedprox_telemetry::collector::is_armed() {
            assert_eq!(est.direction_stats(), DirectionStats::default());
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(EstimatorKind::Sarah.name(), "sarah");
        assert!(EstimatorKind::Svrg.needs_anchor());
        assert!(!EstimatorKind::Sgd.needs_anchor());
    }

    use fedprox_tensor::vecops;
}
