//! Proximal operators.
//!
//! The paper's surrogate objective (6) is `J_n(w) = F_n(w) + h_s(w)` with
//! `h_s(w) = μ/2 ‖w − w̄^{(s−1)}‖²` (eq. (7)); its proximal update (line 8
//! of Algorithm 1) uses `prox_{η h_s}`, which for this quadratic has the
//! closed form of eq. (10):
//!
//! ```text
//! prox_{η h_s}(x) = (η / (1 + ημ)) (μ w̄ + x/η) = (x + ημ w̄) / (1 + ημ)
//! ```

use fedprox_tensor::vecops;

/// A proximable regulariser `h` with value, gradient and prox.
pub trait Proximal: Send + Sync {
    /// `prox_{η h}(x)` written into `out` (`out` may alias `x` in length
    /// only; the buffers must be distinct slices).
    fn prox(&self, eta: f64, x: &[f64], out: &mut [f64]);

    /// `h(w)`.
    fn value(&self, w: &[f64]) -> f64;

    /// `out += scale · ∇h(w)`.
    fn grad_accum(&self, w: &[f64], scale: f64, out: &mut [f64]);
}

/// The zero regulariser: `prox` is the identity. Using it in the inner
/// solver turns the proximal step into a plain (variance-reduced) SGD
/// step — this is how the FedAvg baseline is expressed.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroProx;

impl Proximal for ZeroProx {
    fn prox(&self, _eta: f64, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(x);
    }
    fn value(&self, _w: &[f64]) -> f64 {
        0.0
    }
    fn grad_accum(&self, _w: &[f64], _scale: f64, _out: &mut [f64]) {}
}

/// The paper's quadratic penalty `h_s(w) = μ/2 ‖w − anchor‖²` with its
/// closed-form prox (eq. (10)).
///
/// ```
/// use fedprox_optim::{Proximal, QuadraticProx};
/// let prox = QuadraticProx::new(2.0, vec![1.0, -1.0]);
/// let mut out = vec![0.0; 2];
/// prox.prox(0.25, &[3.0, 5.0], &mut out);
/// // eq. (10): prox(x) = (x + ημ·anchor) / (1 + ημ)
/// assert!((out[0] - (3.0 + 0.5) / 1.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct QuadraticProx {
    /// Proximal penalty coefficient μ.
    pub mu: f64,
    /// The anchor `w̄^{(s−1)}` (the current global model).
    pub anchor: Vec<f64>,
}

impl QuadraticProx {
    /// Build with penalty `mu` around `anchor`.
    pub fn new(mu: f64, anchor: Vec<f64>) -> Self {
        assert!(mu >= 0.0, "mu must be non-negative");
        QuadraticProx { mu, anchor }
    }
}

impl Proximal for QuadraticProx {
    fn prox(&self, eta: f64, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(x.len(), self.anchor.len());
        debug_assert_eq!(out.len(), x.len());
        let denom = 1.0 + eta * self.mu;
        let coef = eta * self.mu / denom;
        for ((o, &xi), &ai) in out.iter_mut().zip(x).zip(&self.anchor) {
            *o = xi / denom + coef * ai;
        }
    }

    fn value(&self, w: &[f64]) -> f64 {
        self.mu / 2.0 * vecops::dist_sq(w, &self.anchor)
    }

    fn grad_accum(&self, w: &[f64], scale: f64, out: &mut [f64]) {
        let s = scale * self.mu;
        for ((o, &wi), &ai) in out.iter_mut().zip(w).zip(&self.anchor) {
            *o += s * (wi - ai);
        }
    }
}

/// L1 regulariser `h(w) = strength · ‖w‖₁` with the soft-threshold prox.
///
/// The paper's machinery comes from ProxSVRG / ProxSARAH, whose canonical
/// *non-smooth* instance is exactly this: the inner solver works
/// unchanged with it, giving sparse federated models (see the
/// `sparse_regression` example). Note `grad_accum` uses the subgradient
/// `sign(w)` — fine for the θ-measurement diagnostics, not for smooth
/// optimisation of `h` itself.
#[derive(Debug, Clone, Copy)]
pub struct L1Prox {
    /// Regularisation strength.
    pub strength: f64,
}

impl L1Prox {
    /// Build with the given strength.
    pub fn new(strength: f64) -> Self {
        assert!(strength >= 0.0);
        L1Prox { strength }
    }
}

impl Proximal for L1Prox {
    fn prox(&self, eta: f64, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), x.len());
        let t = eta * self.strength;
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = soft_threshold(xi, t);
        }
    }
    fn value(&self, w: &[f64]) -> f64 {
        self.strength * w.iter().map(|v| v.abs()).sum::<f64>()
    }
    fn grad_accum(&self, w: &[f64], scale: f64, out: &mut [f64]) {
        for (o, &wi) in out.iter_mut().zip(w) {
            *o += scale * self.strength * wi.signum();
        }
    }
}

/// Elastic-net regulariser `h(w) = l1 ‖w‖₁ + l2/2 ‖w‖²`, prox in closed
/// form (soft threshold then shrink).
#[derive(Debug, Clone, Copy)]
pub struct ElasticNetProx {
    /// L1 strength.
    pub l1: f64,
    /// L2 strength.
    pub l2: f64,
}

impl ElasticNetProx {
    /// Build with the given strengths.
    pub fn new(l1: f64, l2: f64) -> Self {
        assert!(l1 >= 0.0 && l2 >= 0.0);
        ElasticNetProx { l1, l2 }
    }
}

impl Proximal for ElasticNetProx {
    fn prox(&self, eta: f64, x: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), x.len());
        let t = eta * self.l1;
        let shrink = 1.0 / (1.0 + eta * self.l2);
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = soft_threshold(xi, t) * shrink;
        }
    }
    fn value(&self, w: &[f64]) -> f64 {
        self.l1 * w.iter().map(|v| v.abs()).sum::<f64>()
            + self.l2 / 2.0 * vecops::norm_sq(w)
    }
    fn grad_accum(&self, w: &[f64], scale: f64, out: &mut [f64]) {
        for (o, &wi) in out.iter_mut().zip(w) {
            *o += scale * (self.l1 * wi.signum() + self.l2 * wi);
        }
    }
}

/// Composite of the paper's quadratic anchor penalty and an L1 term:
/// `h(w) = μ/2 ‖w − w̄‖² + l1 ‖w‖₁`. The prox remains closed-form: the
/// quadratic part shifts/shrinks, then soft-threshold — giving *sparse
/// FedProxVR* local updates (a natural extension the paper's framework
/// admits because h only needs to be proximable).
#[derive(Debug, Clone)]
pub struct SparseQuadraticProx {
    /// Proximal penalty μ.
    pub mu: f64,
    /// L1 strength.
    pub l1: f64,
    /// The anchor `w̄^{(s−1)}`.
    pub anchor: Vec<f64>,
}

impl SparseQuadraticProx {
    /// Build with penalty `mu`, sparsity `l1`, around `anchor`.
    pub fn new(mu: f64, l1: f64, anchor: Vec<f64>) -> Self {
        assert!(mu >= 0.0 && l1 >= 0.0);
        SparseQuadraticProx { mu, l1, anchor }
    }
}

impl Proximal for SparseQuadraticProx {
    fn prox(&self, eta: f64, x: &[f64], out: &mut [f64]) {
        // argmin_w  μ/2‖w−a‖² + l1‖w‖₁ + ‖w−x‖²/(2η)
        // = soft_threshold((x + ημ a)/(1+ημ), η l1/(1+ημ)).
        debug_assert_eq!(x.len(), self.anchor.len());
        let denom = 1.0 + eta * self.mu;
        let t = eta * self.l1 / denom;
        for ((o, &xi), &ai) in out.iter_mut().zip(x).zip(&self.anchor) {
            let centred = (xi + eta * self.mu * ai) / denom;
            *o = soft_threshold(centred, t);
        }
    }
    fn value(&self, w: &[f64]) -> f64 {
        self.mu / 2.0 * vecops::dist_sq(w, &self.anchor)
            + self.l1 * w.iter().map(|v| v.abs()).sum::<f64>()
    }
    fn grad_accum(&self, w: &[f64], scale: f64, out: &mut [f64]) {
        for ((o, &wi), &ai) in out.iter_mut().zip(w).zip(&self.anchor) {
            *o += scale * (self.mu * (wi - ai) + self.l1 * wi.signum());
        }
    }
}

/// Scalar soft-threshold `sign(x) · max(|x| − t, 0)`.
#[inline]
pub fn soft_threshold(x: f64, t: f64) -> f64 {
    if x > t {
        x - t
    } else if x < -t {
        x + t
    } else {
        0.0
    }
}

/// Generic iterative prox that solves the defining minimisation (eq. (9))
/// `argmin_w h(w) + ‖w − x‖²/(2η)` by gradient descent. Only used to
/// cross-validate closed forms in tests and the ablation bench — the
/// training loop always uses the closed form.
#[derive(Debug, Clone)]
pub struct IterativeProx<P> {
    inner: P,
    /// Gradient-descent iterations.
    pub iters: usize,
    /// Gradient-descent step size.
    pub lr: f64,
}

impl<P: Proximal> IterativeProx<P> {
    /// Wrap `inner`, solving its prox numerically.
    pub fn new(inner: P, iters: usize, lr: f64) -> Self {
        IterativeProx { inner, iters, lr }
    }
}

impl<P: Proximal> Proximal for IterativeProx<P> {
    fn prox(&self, eta: f64, x: &[f64], out: &mut [f64]) {
        out.copy_from_slice(x);
        let mut grad = vec![0.0; x.len()];
        for _ in 0..self.iters {
            grad.fill(0.0);
            self.inner.grad_accum(out, 1.0, &mut grad);
            // + (w − x)/η
            for ((g, &wi), &xi) in grad.iter_mut().zip(out.iter()).zip(x) {
                *g += (wi - xi) / eta;
            }
            vecops::axpy(-self.lr, &grad, out);
        }
    }

    fn value(&self, w: &[f64]) -> f64 {
        self.inner.value(w)
    }

    fn grad_accum(&self, w: &[f64], scale: f64, out: &mut [f64]) {
        self.inner.grad_accum(w, scale, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_prox_is_identity() {
        let p = ZeroProx;
        let x = vec![1.0, -2.0, 3.0];
        let mut out = vec![0.0; 3];
        p.prox(0.5, &x, &mut out);
        assert_eq!(out, x);
        assert_eq!(p.value(&x), 0.0);
        let mut g = vec![0.0; 3];
        p.grad_accum(&x, 1.0, &mut g);
        assert_eq!(g, vec![0.0; 3]);
    }

    #[test]
    fn quadratic_prox_closed_form_matches_eq10() {
        // eq. (10): prox(x) = η/(1+ημ) (μ w̄ + x/η).
        let anchor = vec![1.0, -1.0];
        let p = QuadraticProx::new(2.0, anchor.clone());
        let x = vec![3.0, 5.0];
        let eta = 0.25;
        let mut out = vec![0.0; 2];
        p.prox(eta, &x, &mut out);
        for i in 0..2 {
            let want = eta / (1.0 + eta * 2.0) * (2.0 * anchor[i] + x[i] / eta);
            assert!((out[i] - want).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_prox_fixed_point_is_anchor() {
        // prox of the anchor itself is the anchor (gradient of h is 0).
        let anchor = vec![0.5, 2.0, -3.0];
        let p = QuadraticProx::new(1.7, anchor.clone());
        let mut out = vec![0.0; 3];
        p.prox(0.3, &anchor, &mut out);
        for (o, a) in out.iter().zip(&anchor) {
            assert!((o - a).abs() < 1e-12);
        }
    }

    #[test]
    fn quadratic_prox_nonexpansive() {
        let p = QuadraticProx::new(3.0, vec![0.0; 4]);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = vec![-1.0, 0.5, 2.0, 8.0];
        let mut px = vec![0.0; 4];
        let mut py = vec![0.0; 4];
        p.prox(0.4, &x, &mut px);
        p.prox(0.4, &y, &mut py);
        assert!(vecops::dist(&px, &py) <= vecops::dist(&x, &y) + 1e-12);
    }

    #[test]
    fn mu_zero_reduces_to_identity() {
        let p = QuadraticProx::new(0.0, vec![9.0; 3]);
        let x = vec![1.0, 2.0, 3.0];
        let mut out = vec![0.0; 3];
        p.prox(0.7, &x, &mut out);
        assert_eq!(out, x);
    }

    #[test]
    fn soft_threshold_cases() {
        assert_eq!(soft_threshold(3.0, 1.0), 2.0);
        assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
        assert_eq!(soft_threshold(0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(-0.5, 1.0), 0.0);
        assert_eq!(soft_threshold(2.0, 0.0), 2.0);
    }

    #[test]
    fn l1_prox_sparsifies() {
        let p = L1Prox::new(2.0);
        let x = vec![3.0, -0.1, 0.4, -5.0];
        let mut out = vec![0.0; 4];
        p.prox(0.5, &x, &mut out); // threshold = 1.0
        assert_eq!(out, vec![2.0, 0.0, 0.0, -4.0]);
        assert_eq!(p.value(&[1.0, -2.0]), 6.0);
    }

    #[test]
    fn l1_prox_minimises_objective() {
        let p = L1Prox::new(1.5);
        let x = vec![2.0, -0.3, 0.9];
        let eta = 0.4;
        let mut star = vec![0.0; 3];
        p.prox(eta, &x, &mut star);
        let obj = |w: &[f64]| p.value(w) + vecops::dist_sq(w, &x) / (2.0 * eta);
        // Probe random perturbations.
        for k in 0..50 {
            let probe: Vec<f64> = star
                .iter()
                .enumerate()
                .map(|(i, &s)| s + 0.1 * (((k * 7 + i * 13) % 11) as f64 - 5.0) / 5.0)
                .collect();
            assert!(obj(&star) <= obj(&probe) + 1e-12);
        }
    }

    #[test]
    fn elastic_net_prox_combines_threshold_and_shrink() {
        let p = ElasticNetProx::new(1.0, 2.0);
        let x = vec![3.0];
        let mut out = vec![0.0];
        let eta = 0.5;
        p.prox(eta, &x, &mut out);
        // soft(3, 0.5) = 2.5; shrink by 1/(1+1) = 0.5 → 1.25.
        assert!((out[0] - 1.25).abs() < 1e-12);
        // Value matches manual.
        assert!((p.value(&[2.0]) - (2.0 + 4.0)).abs() < 1e-12);
        // l1 = 0 reduces to pure shrink.
        let q = ElasticNetProx::new(0.0, 2.0);
        q.prox(eta, &x, &mut out);
        assert!((out[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_quadratic_prox_special_cases() {
        let anchor = vec![1.0, -1.0];
        // l1 = 0 reduces to QuadraticProx.
        let sparse0 = SparseQuadraticProx::new(2.0, 0.0, anchor.clone());
        let quad = QuadraticProx::new(2.0, anchor.clone());
        let x = vec![4.0, -3.0];
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        sparse0.prox(0.3, &x, &mut a);
        quad.prox(0.3, &x, &mut b);
        // Same map, different evaluation order — equal within rounding.
        for (u, v) in a.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
        // mu = 0 reduces to L1Prox.
        let sparse1 = SparseQuadraticProx::new(0.0, 2.0, anchor.clone());
        let l1 = L1Prox::new(2.0);
        sparse1.prox(0.3, &x, &mut a);
        l1.prox(0.3, &x, &mut b);
        assert_eq!(a, b);
        // Full composite minimises its objective (FD probe).
        let p = SparseQuadraticProx::new(1.5, 0.8, anchor);
        let eta = 0.4;
        let mut star = vec![0.0; 2];
        p.prox(eta, &x, &mut star);
        let obj = |w: &[f64]| p.value(w) + vecops::dist_sq(w, &x) / (2.0 * eta);
        for k in 0..40 {
            let probe: Vec<f64> = star
                .iter()
                .enumerate()
                .map(|(i, &s)| s + 0.05 * (((k * 3 + i * 17) % 9) as f64 - 4.0))
                .collect();
            assert!(obj(&star) <= obj(&probe) + 1e-12);
        }
    }

    #[test]
    fn iterative_prox_agrees_with_closed_form() {
        let anchor = vec![1.0, -2.0, 0.0];
        let closed = QuadraticProx::new(1.5, anchor.clone());
        let iterative = IterativeProx::new(QuadraticProx::new(1.5, anchor), 500, 0.05);
        let x = vec![4.0, 4.0, 4.0];
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 3];
        closed.prox(0.2, &x, &mut a);
        iterative.prox(0.2, &x, &mut b);
        assert!(vecops::dist(&a, &b) < 1e-6, "closed {a:?} vs iterative {b:?}");
    }

    #[test]
    fn value_and_grad_consistent() {
        let p = QuadraticProx::new(2.0, vec![1.0, 1.0]);
        let w = vec![2.0, 0.0];
        // h = 1.0 * (1 + 1) = 2
        assert!((p.value(&w) - 2.0).abs() < 1e-12);
        let mut g = vec![0.0; 2];
        p.grad_accum(&w, 1.0, &mut g);
        assert_eq!(g, vec![2.0, -2.0]);
        // FD check.
        let h = 1e-6;
        for i in 0..2 {
            let mut wp = w.clone();
            let mut wm = w.clone();
            wp[i] += h;
            wm[i] -= h;
            let fd = (p.value(&wp) - p.value(&wm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-5);
        }
    }
}
