//! The inner loop of Algorithm 1 (lines 3–10): a device's local model
//! update by proximal variance-reduced stochastic steps.
//!
//! ```text
//! w^{(0)} = w̄^{(s−1)};  v^{(0)} = ∇F_n(w^{(0)});  w^{(1)} = prox_{ηh}(w^{(0)} − η v^{(0)})
//! for t = 1..τ:
//!     draw mini-batch I_t;  update v^{(t)} per (8a)/(8b)
//!     w^{(t+1)} = prox_{ηh}(w^{(t)} − η v^{(t)})
//! return w^{(t')} with t' ~ U{0..τ}          (line 10)
//! ```
//!
//! The random-iterate selection is done by *pre-drawing* `t'`, so only one
//! candidate iterate is ever kept — O(dim) memory instead of O(τ·dim),
//! which matters for the 135k-parameter CNN.

use crate::estimator::{Estimator, EstimatorKind};
use crate::prox::Proximal;
use crate::step::StepSize;
use fedprox_data::Dataset;
use fedprox_models::LossModel;
use fedprox_tensor::vecops;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which iterate the solver returns as the local model (line 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IterateChoice {
    /// The paper's uniformly-random iterate from `{w^{(0)}, …, w^{(τ)}}`.
    UniformRandom,
    /// The final iterate `w^{(τ+1)}` (what FedAvg uses in practice).
    Last,
}

/// Configuration of one local solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalSolverConfig {
    /// Gradient estimator (line 7).
    pub kind: EstimatorKind,
    /// Step-size schedule (the paper: `η = 1/(βL)`).
    pub step: StepSize,
    /// Number of local iterations τ.
    pub tau: usize,
    /// Mini-batch size B (the paper's experiments use 16–64).
    pub batch_size: usize,
    /// Iterate selection rule.
    pub choice: IterateChoice,
}

/// Result of a local solve.
#[derive(Debug, Clone)]
pub struct LocalOutcome {
    /// The returned local model `w_n^{(s)}`.
    pub w: Vec<f64>,
    /// Which `t'` was returned (τ+1 denotes the final iterate).
    pub chosen_t: usize,
    /// Total per-sample gradient evaluations (compute-cost model input).
    pub grad_evals: usize,
    /// Direction-norm probe for the health layer; all-zero unless the
    /// `telemetry` feature is on and the collector was armed.
    pub dir_stats: crate::estimator::DirectionStats,
}

/// Reusable buffers for repeated local solves (the per-round hot path):
/// the estimator with its model gradient workspace, the mini-batch index
/// buffers, and the iterate/intermediate vectors. One `SolveScratch` held
/// across `R` solves turns `O(R·τ)` allocations into `O(R)` (one output
/// clone per solve).
#[derive(Debug, Default)]
pub struct SolveScratch {
    est: Option<Estimator>,
    batch: Vec<usize>,
    /// Index pool for `sample_batch`'s shuffle branch.
    pool: Vec<usize>,
    w_t: Vec<f64>,
    x: Vec<f64>,
    w_next: Vec<f64>,
}

impl SolveScratch {
    /// Fresh, empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SolveScratch::default()
    }
}

/// Runs local solves; stateless apart from scratch reuse.
#[derive(Debug, Default)]
pub struct LocalSolver;

impl LocalSolver {
    /// Execute the inner loop on `data` starting at the global model `w0`.
    ///
    /// `prox` carries the surrogate's regulariser `h_s`; pass
    /// [`crate::prox::ZeroProx`] for FedAvg-style unregularised steps.
    pub fn solve<M: LossModel, P: Proximal, R: Rng>(
        &self,
        model: &M,
        data: &Dataset,
        prox: &P,
        w0: &[f64],
        cfg: &LocalSolverConfig,
        rng: &mut R,
    ) -> LocalOutcome {
        self.solve_anchored(model, data, prox, w0, cfg, rng, None)
    }

    /// Like [`Self::solve`], but with an optional externally-supplied
    /// anchor gradient for VR estimators (the FSVRG pattern: the server
    /// ships `∇F̄(w̄)` alongside the model and devices anchor there
    /// instead of computing their own full gradient).
    #[allow(clippy::too_many_arguments)]
    pub fn solve_anchored<M: LossModel, P: Proximal, R: Rng>(
        &self,
        model: &M,
        data: &Dataset,
        prox: &P,
        w0: &[f64],
        cfg: &LocalSolverConfig,
        rng: &mut R,
        anchor_grad: Option<&[f64]>,
    ) -> LocalOutcome {
        let mut scratch = SolveScratch::new();
        self.solve_anchored_with(model, data, prox, w0, cfg, rng, anchor_grad, &mut scratch)
    }

    /// Like [`Self::solve`], reusing `scratch` across calls — the hot
    /// path of the round runners. Bit-identical to `solve`: the RNG draw
    /// sequence and every floating-point operation are unchanged, only
    /// buffer provenance differs.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_with<M: LossModel, P: Proximal, R: Rng>(
        &self,
        model: &M,
        data: &Dataset,
        prox: &P,
        w0: &[f64],
        cfg: &LocalSolverConfig,
        rng: &mut R,
        scratch: &mut SolveScratch,
    ) -> LocalOutcome {
        self.solve_anchored_with(model, data, prox, w0, cfg, rng, None, scratch)
    }

    /// [`Self::solve_anchored`] with caller-held [`SolveScratch`].
    #[allow(clippy::too_many_arguments)]
    pub fn solve_anchored_with<M: LossModel, P: Proximal, R: Rng>(
        &self,
        model: &M,
        data: &Dataset,
        prox: &P,
        w0: &[f64],
        cfg: &LocalSolverConfig,
        rng: &mut R,
        anchor_grad: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> LocalOutcome {
        assert!(!data.is_empty(), "local solve on an empty device");
        assert!(cfg.batch_size >= 1, "batch size must be >= 1");
        let dim = model.dim();
        assert_eq!(w0.len(), dim, "w0 length");
        fedprox_telemetry::span!("optim", "local_solve", "tau" => cfg.tau, "n" => data.len());

        // Pre-draw the returned iterate index (line 10).
        let chosen_t = match cfg.choice {
            IterateChoice::UniformRandom => rng.gen_range(0..=cfg.tau),
            IterateChoice::Last => cfg.tau + 1,
        };
        let mut kept: Option<Vec<f64>> = if chosen_t == 0 { Some(w0.to_vec()) } else { None };

        // Lines 3–4: anchor gradient and first proximal step. For the
        // variance-reduced kinds this is the full gradient the paper
        // prescribes; for plain SGD (FedAvg baseline) the first step uses
        // a mini-batch like every other step.
        scratch.batch.resize(cfg.batch_size.min(data.len()), 0);
        if anchor_grad.is_none() && cfg.kind == EstimatorKind::Sgd {
            sample_batch(rng, data.len(), &mut scratch.batch, &mut scratch.pool);
        }
        // Restart a dimension-compatible estimator in place; otherwise
        // (first use, or scratch shared across differently-sized models)
        // build a fresh one.
        match &mut scratch.est {
            Some(est) if est.dim() == dim => {
                if let Some(ag) = anchor_grad {
                    est.restart_with_anchor_grad(cfg.kind, model, w0, ag);
                } else if cfg.kind == EstimatorKind::Sgd {
                    est.restart_sgd(model, data, w0, &scratch.batch);
                } else {
                    est.restart(cfg.kind, model, data, w0);
                }
            }
            slot => {
                *slot = Some(if let Some(ag) = anchor_grad {
                    Estimator::begin_with_anchor_grad(cfg.kind, model, w0, ag)
                } else if cfg.kind == EstimatorKind::Sgd {
                    Estimator::begin_sgd(model, data, w0, &scratch.batch)
                } else {
                    Estimator::begin(cfg.kind, model, data, w0)
                });
            }
        }
        let Some(est) = scratch.est.as_mut() else {
            // Installed by the match above.
            unreachable!("solve: estimator just installed")
        };
        scratch.w_t.clear();
        scratch.w_t.extend_from_slice(w0);
        scratch.x.resize(dim, 0.0); // gradient-step intermediate
        scratch.w_next.resize(dim, 0.0);

        let eta0 = cfg.step.at(0);
        scratch.x.copy_from_slice(&scratch.w_t);
        vecops::axpy(-eta0, est.direction(), &mut scratch.x);
        fedprox_telemetry::counter!("optim.prox_apply", 1u32);
        prox.prox(eta0, &scratch.x, &mut scratch.w_next);
        std::mem::swap(&mut scratch.w_t, &mut scratch.w_next); // w_t = w^{(1)}
        if chosen_t == 1 {
            kept = Some(scratch.w_t.clone());
        }

        // Lines 5–9.
        for t in 1..=cfg.tau {
            sample_batch(rng, data.len(), &mut scratch.batch, &mut scratch.pool);
            est.step(model, data, &scratch.batch, &scratch.w_t);
            let eta = cfg.step.at(t);
            scratch.x.copy_from_slice(&scratch.w_t);
            vecops::axpy(-eta, est.direction(), &mut scratch.x);
            fedprox_telemetry::counter!("optim.prox_apply", 1u32);
            prox.prox(eta, &scratch.x, &mut scratch.w_next);
            std::mem::swap(&mut scratch.w_t, &mut scratch.w_next); // w_t = w^{(t+1)}
            if chosen_t == t + 1 {
                kept = Some(scratch.w_t.clone());
            }
        }

        let w = match cfg.choice {
            IterateChoice::Last => scratch.w_t.clone(),
            // `chosen_t` ∈ [1, τ+1] by construction, so `kept` is
            // always recorded; the fallback is the last iterate.
            IterateChoice::UniformRandom => kept.unwrap_or_else(|| scratch.w_t.clone()),
        };
        LocalOutcome {
            w,
            chosen_t,
            grad_evals: est.grad_evals(),
            dir_stats: est.direction_stats(),
        }
    }

    /// `‖∇J_n(w)‖` where `J_n = F_n + h` — the quantity the local accuracy
    /// criterion (11) bounds.
    pub fn surrogate_grad_norm<M: LossModel, P: Proximal>(
        &self,
        model: &M,
        data: &Dataset,
        prox: &P,
        w: &[f64],
    ) -> f64 {
        let mut g = vec![0.0; model.dim()];
        model.full_grad(w, data, &mut g);
        prox.grad_accum(w, 1.0, &mut g);
        vecops::norm(&g)
    }
}

/// Fill `batch` with indices drawn uniformly without replacement (falls
/// back to with-replacement when the batch is most of the dataset, which
/// is cheaper than a full shuffle). `pool` is caller-held scratch for the
/// shuffle branch, reused across calls; the RNG draw sequence is
/// identical to an allocating implementation.
fn sample_batch<R: Rng>(rng: &mut R, n: usize, batch: &mut [usize], pool: &mut Vec<usize>) {
    debug_assert!(n >= 1);
    if batch.len() * 4 <= n {
        // Rejection sampling without replacement.
        let mut filled = 0;
        while filled < batch.len() {
            let candidate = rng.gen_range(0..n);
            if !batch[..filled].contains(&candidate) {
                batch[filled] = candidate;
                filled += 1;
            }
        }
    } else {
        pool.clear();
        pool.extend(0..n);
        pool.shuffle(rng);
        batch.copy_from_slice(&pool[..batch.len()]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prox::{QuadraticProx, ZeroProx};
    use fedprox_models::LinearRegression;
    use fedprox_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data(n: usize) -> Dataset {
        let mut f = Matrix::zeros(n, 2);
        let mut y = Vec::new();
        for i in 0..n {
            let x0 = (i as f64 * 0.37).sin();
            let x1 = (i as f64 * 0.73).cos();
            f.row_mut(i).copy_from_slice(&[x0, x1]);
            y.push(2.0 * x0 - x1);
        }
        Dataset::new(f, y, 0)
    }

    fn cfg(kind: EstimatorKind, tau: usize) -> LocalSolverConfig {
        LocalSolverConfig {
            kind,
            step: StepSize::Constant(0.1),
            tau,
            batch_size: 4,
            choice: IterateChoice::Last,
        }
    }

    #[test]
    fn local_solve_reduces_surrogate_objective() {
        let d = toy_data(30);
        let m = LinearRegression::new(2);
        let w0 = vec![3.0, -3.0];
        let prox = QuadraticProx::new(0.1, w0.clone());
        let solver = LocalSolver;
        for kind in [EstimatorKind::Sgd, EstimatorKind::Svrg, EstimatorKind::Sarah] {
            let mut rng = StdRng::seed_from_u64(1);
            let out = solver.solve(&m, &d, &prox, &w0, &cfg(kind, 30), &mut rng);
            let j0 = m.full_loss(&w0, &d) + prox.value(&w0);
            let j1 = m.full_loss(&out.w, &d) + prox.value(&out.w);
            assert!(j1 < j0, "{kind:?}: J went {j0} -> {j1}");
        }
    }

    #[test]
    fn tau_zero_with_random_choice_returns_anchor() {
        // τ = 0 means θ = 1: "no progress for local problem".
        let d = toy_data(10);
        let m = LinearRegression::new(2);
        let w0 = vec![1.0, 1.0];
        let prox = ZeroProx;
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = cfg(EstimatorKind::Svrg, 0);
        c.choice = IterateChoice::UniformRandom;
        let out = LocalSolver.solve(&m, &d, &prox, &w0, &c, &mut rng);
        assert_eq!(out.chosen_t, 0);
        assert_eq!(out.w, w0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = toy_data(20);
        let m = LinearRegression::new(2);
        let w0 = vec![0.5, 0.5];
        let prox = QuadraticProx::new(0.5, w0.clone());
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            LocalSolver.solve(&m, &d, &prox, &w0, &cfg(EstimatorKind::Sarah, 15), &mut rng).w
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn uniform_choice_records_correct_iterate() {
        // With τ=0 and UniformRandom, chosen_t is always 0; with Last it
        // is τ+1 and w equals the post-anchor step.
        let d = toy_data(10);
        let m = LinearRegression::new(2);
        let w0 = vec![2.0, 2.0];
        let prox = ZeroProx;
        let mut rng = StdRng::seed_from_u64(3);
        let out = LocalSolver.solve(&m, &d, &prox, &w0, &cfg(EstimatorKind::FullGd, 0), &mut rng);
        assert_eq!(out.chosen_t, 1); // Last with tau=0 → index 1
        // One full-GD prox step from w0.
        let mut g = vec![0.0; 2];
        m.full_grad(&w0, &d, &mut g);
        let want: Vec<f64> = (0..2).map(|i| w0[i] - 0.1 * g[i]).collect();
        for (a, b) in out.w.iter().zip(&want) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn grad_eval_accounting_full_gd() {
        let d = toy_data(10);
        let m = LinearRegression::new(2);
        let w0 = vec![0.0; 2];
        let mut rng = StdRng::seed_from_u64(4);
        let out =
            LocalSolver.solve(&m, &d, &ZeroProx, &w0, &cfg(EstimatorKind::FullGd, 3), &mut rng);
        // begin: 10, plus 3 steps × 10.
        assert_eq!(out.grad_evals, 40);
    }

    #[test]
    fn surrogate_grad_norm_zero_at_unconstrained_minimum() {
        let d = toy_data(25);
        let m = LinearRegression::new(2);
        // Drive near the minimum with many full-GD steps.
        let mut w = vec![0.0; 2];
        let mut g = vec![0.0; 2];
        for _ in 0..5000 {
            m.full_grad(&w, &d, &mut g);
            vecops::axpy(-0.3, &g, &mut w);
        }
        let norm = LocalSolver.surrogate_grad_norm(&m, &d, &ZeroProx, &w);
        assert!(norm < 1e-8, "norm {norm}");
    }

    #[test]
    fn proximal_term_keeps_iterates_near_anchor() {
        let d = toy_data(30);
        let m = LinearRegression::new(2);
        let w0 = vec![5.0, 5.0]; // far from the optimum
        let solver = LocalSolver;
        let run = |mu: f64| {
            let prox = QuadraticProx::new(mu, w0.clone());
            let mut rng = StdRng::seed_from_u64(5);
            let out =
                solver.solve(&m, &d, &prox, &w0, &cfg(EstimatorKind::Svrg, 50), &mut rng);
            vecops::dist(&out.w, &w0)
        };
        // Larger μ ⇒ the local model stays closer to the anchor
        // (Remark 1(4) of the paper).
        assert!(run(10.0) < run(0.1));
    }

    #[test]
    fn batch_sampling_without_replacement_when_possible() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut batch = vec![0usize; 5];
        let mut pool = Vec::new();
        for _ in 0..20 {
            sample_batch(&mut rng, 100, &mut batch, &mut pool);
            let mut sorted = batch.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "duplicates in {batch:?}");
            assert!(batch.iter().all(|&i| i < 100));
        }
        // Large batch relative to n: still valid indices, still unique.
        let mut big = vec![0usize; 9];
        sample_batch(&mut rng, 10, &mut big, &mut pool);
        let mut sorted = big.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    use fedprox_tensor::vecops;
}
