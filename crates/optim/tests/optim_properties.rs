//! Property-based tests of the optimization substrate.

use fedprox_data::Dataset;
use fedprox_models::{LinearRegression, LossModel};
use fedprox_optim::estimator::{Estimator, EstimatorKind};
use fedprox_optim::solver::{IterateChoice, LocalSolver, LocalSolverConfig};
use fedprox_optim::{Proximal, QuadraticProx, StepSize, ZeroProx};
use fedprox_tensor::{vecops, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n: usize, seed: u64) -> Dataset {
    let mut f = Matrix::zeros(n, 3);
    let mut y = Vec::with_capacity(n);
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) * 2.0 - 1.0
    };
    for i in 0..n {
        let row = [next(), next(), next()];
        f.row_mut(i).copy_from_slice(&row);
        y.push(row[0] - 2.0 * row[1] + 0.5 * row[2]);
    }
    Dataset::new(f, y, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn svrg_direction_unbiased_over_all_singletons(
        seed in any::<u64>(),
        shift in -0.5f64..0.5,
    ) {
        // E_i[v] at any w equals the full gradient when batches are
        // uniform singletons.
        let data = dataset(15, seed);
        let model = LinearRegression::new(3);
        let w0 = vec![0.1, -0.1, 0.2];
        let wt = vec![0.1 + shift, -0.1 - shift, 0.2];
        let mut mean = vec![0.0; 3];
        for i in 0..15 {
            let mut est = Estimator::begin(EstimatorKind::Svrg, &model, &data, &w0);
            est.step(&model, &data, &[i], &wt);
            vecops::axpy(1.0 / 15.0, est.direction(), &mut mean);
        }
        let mut full = vec![0.0; 3];
        model.full_grad(&wt, &data, &mut full);
        prop_assert!(vecops::dist(&mean, &full) < 1e-10);
    }

    #[test]
    fn solver_with_full_gd_and_zero_prox_is_plain_gd(
        seed in any::<u64>(),
        eta in 0.001f64..0.1,
        tau in 0usize..8,
    ) {
        // FullGd + ZeroProx + Last must match hand-rolled gradient descent.
        let data = dataset(10, seed);
        let model = LinearRegression::new(3);
        let w0 = vec![0.5, 0.5, -0.5];
        let cfg = LocalSolverConfig {
            kind: EstimatorKind::FullGd,
            step: StepSize::Constant(eta),
            tau,
            batch_size: 2,
            choice: IterateChoice::Last,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let out = LocalSolver.solve(&model, &data, &ZeroProx, &w0, &cfg, &mut rng);
        let mut w = w0.clone();
        let mut g = vec![0.0; 3];
        for _ in 0..=tau {
            model.full_grad(&w, &data, &mut g);
            vecops::axpy(-eta, &g, &mut w);
        }
        prop_assert!(vecops::dist(&out.w, &w) < 1e-12);
    }

    #[test]
    fn prox_step_never_moves_past_anchor_pull(
        mu in 0.0f64..100.0,
        eta in 0.001f64..1.0,
        x_off in -5.0f64..5.0,
    ) {
        // The prox output lies between the gradient-step point and the
        // anchor on the line segment (convex combination).
        let anchor = vec![1.0, 2.0];
        let x = vec![1.0 + x_off, 2.0 - x_off];
        let p = QuadraticProx::new(mu, anchor.clone());
        let mut out = vec![0.0; 2];
        p.prox(eta, &x, &mut out);
        for i in 0..2 {
            let lo = x[i].min(anchor[i]) - 1e-12;
            let hi = x[i].max(anchor[i]) + 1e-12;
            prop_assert!(out[i] >= lo && out[i] <= hi);
        }
    }

    #[test]
    fn local_solver_deterministic_in_seed(
        seed in any::<u64>(),
        tau in 1usize..10,
    ) {
        let data = dataset(12, 42);
        let model = LinearRegression::new(3);
        let w0 = vec![0.3; 3];
        let prox = QuadraticProx::new(0.2, w0.clone());
        let cfg = LocalSolverConfig {
            kind: EstimatorKind::Sarah,
            step: StepSize::Constant(0.05),
            tau,
            batch_size: 3,
            choice: IterateChoice::UniformRandom,
        };
        let run = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            LocalSolver.solve(&model, &data, &prox, &w0, &cfg, &mut rng)
        };
        let a = run(seed);
        let b = run(seed);
        prop_assert_eq!(a.w, b.w);
        prop_assert_eq!(a.chosen_t, b.chosen_t);
    }

    #[test]
    fn grad_eval_cost_model(
        tau in 1usize..12,
        batch in 1usize..6,
    ) {
        // SGD: B per step (incl. anchor); VR: D + 2B per inner step.
        let n = 20;
        let data = dataset(n, 7);
        let model = LinearRegression::new(3);
        let w0 = vec![0.0; 3];
        let mut rng = StdRng::seed_from_u64(1);
        let mk = |kind| LocalSolverConfig {
            kind,
            step: StepSize::Constant(0.01),
            tau,
            batch_size: batch,
            choice: IterateChoice::Last,
        };
        let sgd = LocalSolver.solve(&model, &data, &ZeroProx, &w0, &mk(EstimatorKind::Sgd), &mut rng);
        prop_assert_eq!(sgd.grad_evals, (tau + 1) * batch);
        let svrg = LocalSolver.solve(&model, &data, &ZeroProx, &w0, &mk(EstimatorKind::Svrg), &mut rng);
        prop_assert_eq!(svrg.grad_evals, n + tau * 2 * batch);
    }
}
