//! Property-based tests for the proximal operators (`prox.rs`).
//!
//! Three contracts are pinned down across randomly drawn points and
//! parameters:
//!
//! 1. **Non-expansiveness** — every prox here is the prox of a convex `h`,
//!    so `‖prox(x) − prox(y)‖ ≤ ‖x − y‖` must hold exactly.
//! 2. **Vanishing-regulariser identity** — with zero strength (μ = 0,
//!    λ = 0) each operator degenerates to the identity map.
//! 3. **Closed forms** — the L1 prox must match the scalar soft-threshold
//!    elementwise, and the quadratic prox must match eq. (10) of the paper
//!    and its iterative (gradient-descent) cross-check.

use fedprox_optim::prox::soft_threshold;
use fedprox_optim::{
    ElasticNetProx, IterativeProx, L1Prox, Proximal, QuadraticProx, SparseQuadraticProx, ZeroProx,
};
use fedprox_tensor::vecops;
use proptest::prelude::*;

const DIM: usize = 6;

fn point() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-10.0f64..10.0, DIM)
}

/// Check `‖prox(x) − prox(y)‖ ≤ ‖x − y‖` for one operator.
fn assert_nonexpansive<P: Proximal>(p: &P, eta: f64, x: &[f64], y: &[f64]) -> Result<(), TestCaseError> {
    let mut px = vec![0.0; x.len()];
    let mut py = vec![0.0; y.len()];
    p.prox(eta, x, &mut px);
    p.prox(eta, y, &mut py);
    let lhs = vecops::dist(&px, &py);
    let rhs = vecops::dist(x, y);
    prop_assert!(
        lhs <= rhs + 1e-12,
        "expansion: ‖prox(x)−prox(y)‖ = {lhs} > ‖x−y‖ = {rhs}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_prox_operators_are_nonexpansive(
        x in point(),
        y in point(),
        anchor in point(),
        eta in 0.01f64..2.0,
        mu in 0.0f64..10.0,
        l1 in 0.0f64..5.0,
        l2 in 0.0f64..5.0,
    ) {
        assert_nonexpansive(&ZeroProx, eta, &x, &y)?;
        assert_nonexpansive(&QuadraticProx::new(mu, anchor.clone()), eta, &x, &y)?;
        assert_nonexpansive(&L1Prox::new(l1), eta, &x, &y)?;
        assert_nonexpansive(&ElasticNetProx::new(l1, l2), eta, &x, &y)?;
        assert_nonexpansive(&SparseQuadraticProx::new(mu, l1, anchor), eta, &x, &y)?;
    }

    #[test]
    fn zero_strength_prox_is_identity(
        x in point(),
        anchor in point(),
        eta in 0.01f64..2.0,
    ) {
        // μ = 0 / λ = 0: the penalty vanishes, so prox_{η·0}(x) = x. The
        // quadratic form divides by 1 + η·0 = 1 and must be *exact*.
        let mut out = vec![0.0; DIM];
        QuadraticProx::new(0.0, anchor.clone()).prox(eta, &x, &mut out);
        prop_assert_eq!(&out, &x);
        L1Prox::new(0.0).prox(eta, &x, &mut out);
        prop_assert_eq!(&out, &x);
        ElasticNetProx::new(0.0, 0.0).prox(eta, &x, &mut out);
        prop_assert_eq!(&out, &x);
        SparseQuadraticProx::new(0.0, 0.0, anchor).prox(eta, &x, &mut out);
        prop_assert_eq!(&out, &x);
    }

    #[test]
    fn l1_prox_matches_scalar_soft_threshold(
        x in point(),
        eta in 0.01f64..2.0,
        strength in 0.0f64..5.0,
    ) {
        // The vector prox is the elementwise scalar soft-threshold with
        // t = η·λ — bitwise, not approximately.
        let p = L1Prox::new(strength);
        let mut out = vec![0.0; DIM];
        p.prox(eta, &x, &mut out);
        let expect: Vec<f64> = x.iter().map(|&xi| soft_threshold(xi, eta * strength)).collect();
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn soft_threshold_shrinks_toward_zero_by_at_most_t(
        xi in -20.0f64..20.0,
        t in 0.0f64..10.0,
    ) {
        let s = soft_threshold(xi, t);
        // Never flips sign, never grows, moves by at most t.
        prop_assert!(s * xi >= 0.0, "sign flip: {xi} -> {s}");
        prop_assert!(s.abs() <= xi.abs() + 1e-15, "magnitude grew: {xi} -> {s}");
        prop_assert!((xi - s).abs() <= t + 1e-15, "moved more than t: {xi} -> {s} (t={t})");
        // Dead zone is exactly [-t, t].
        if xi.abs() <= t {
            prop_assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn quadratic_prox_matches_eq10_and_iterative_cross_check(
        x in point(),
        anchor in point(),
        eta in 0.05f64..0.5,
        mu in 0.1f64..5.0,
    ) {
        let p = QuadraticProx::new(mu, anchor.clone());
        let mut out = vec![0.0; DIM];
        p.prox(eta, &x, &mut out);
        // eq. (10): prox(x) = (x + ημ·anchor)/(1 + ημ).
        for i in 0..DIM {
            let want = (x[i] + eta * mu * anchor[i]) / (1.0 + eta * mu);
            prop_assert!((out[i] - want).abs() < 1e-12);
        }
        // Gradient descent on the defining objective (eq. (9)) converges to
        // the same point — the closed form really is the argmin.
        let lr = 0.5 * eta / (1.0 + eta * mu);
        let iterative = IterativeProx::new(QuadraticProx::new(mu, anchor), 2000, lr);
        let mut num = vec![0.0; DIM];
        iterative.prox(eta, &x, &mut num);
        prop_assert!(
            vecops::dist(&out, &num) < 1e-6,
            "closed form {out:?} vs iterative {num:?}"
        );
    }

    #[test]
    fn elastic_net_prox_is_threshold_then_shrink(
        x in point(),
        eta in 0.01f64..2.0,
        l1 in 0.0f64..5.0,
        l2 in 0.0f64..5.0,
    ) {
        let p = ElasticNetProx::new(l1, l2);
        let mut out = vec![0.0; DIM];
        p.prox(eta, &x, &mut out);
        let shrink = 1.0 / (1.0 + eta * l2);
        for i in 0..DIM {
            let want = soft_threshold(x[i], eta * l1) * shrink;
            prop_assert!((out[i] - want).abs() < 1e-15);
        }
    }

    #[test]
    fn prox_output_minimises_defining_objective(
        x in point(),
        anchor in point(),
        eta in 0.05f64..1.0,
        mu in 0.0f64..5.0,
        l1 in 0.0f64..3.0,
        probe_seed in any::<u64>(),
    ) {
        // prox_{ηh}(x) = argmin_w h(w) + ‖w−x‖²/(2η): the returned point
        // must beat deterministic perturbations of itself.
        let p = SparseQuadraticProx::new(mu, l1, anchor);
        let mut star = vec![0.0; DIM];
        p.prox(eta, &x, &mut star);
        let obj = |w: &[f64]| p.value(w) + vecops::dist_sq(w, &x) / (2.0 * eta);
        let base = obj(&star);
        let mut s = probe_seed | 1;
        for _ in 0..20 {
            let probe: Vec<f64> = star
                .iter()
                .map(|&v| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    v + 0.2 * ((s as f64 / u64::MAX as f64) - 0.5)
                })
                .collect();
            prop_assert!(base <= obj(&probe) + 1e-10);
        }
    }
}
