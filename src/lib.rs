//! # FedProxVR — facade crate
//!
//! Single entry point re-exporting the whole workspace API. See the README
//! for a tour; the typical import is:
//!
//! ```
//! use fedprox::prelude::*;
//! ```
//!
//! Sub-crates (also usable directly):
//!
//! * [`tensor`] — dense linear algebra and CNN kernels,
//! * [`data`] — synthetic + image-like federated datasets and partitioners,
//! * [`models`] — loss models with hand-written gradients,
//! * [`optim`] — SGD/SVRG/SARAH estimators and the proximal inner solver,
//! * [`faults`] — deterministic fault schedules and graceful-degradation
//!   policies (deadlines, quorum, retry/backoff),
//! * [`net`] — simulated federated network runtime (actors, delays, clock),
//! * [`core`] — the FedProxVR algorithm, baselines, theory, and parameter
//!   optimization,
//! * [`sim`] — the event-driven million-device simulation backend with
//!   per-round client sampling.

pub use fedprox_core as core;
pub use fedprox_data as data;
pub use fedprox_faults as faults;
pub use fedprox_models as models;
pub use fedprox_net as net;
pub use fedprox_optim as optim;
pub use fedprox_sim as sim;
pub use fedprox_tensor as tensor;

/// Convenient glob-import surface covering the common experiment workflow.
pub mod prelude {
    pub use fedprox_core::algorithm::{Algorithm, FederatedTrainer};
    pub use fedprox_core::config::{FedConfig, RunnerKind, SamplerSpec, SimRunnerOptions};
    pub use fedprox_core::device::Device;
    pub use fedprox_core::metrics::{History, RoundRecord};
    pub use fedprox_core::theory::{self, Lemma1, TheoryParams};
    pub use fedprox_data::partition::{PartitionSpec, Partitioner};
    pub use fedprox_data::{Dataset, FederatedDataset};
    pub use fedprox_faults::{
        DeviceOutcome, FaultPlan, QuorumPolicy, Resilience, RetryPolicy, RoundParticipation,
    };
    pub use fedprox_models::{LossModel, MODEL_SEED};
    pub use fedprox_optim::estimator::EstimatorKind;
    pub use fedprox_sim::{LazyPopulation, Population, SimEngine};
}
